#![warn(missing_docs)]

//! An offline, dependency-free subset of the [proptest](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment for this repository has no network access to a
//! crates.io registry, so the real `proptest` crate cannot be resolved.
//! This crate is a small, deterministic re-implementation of exactly the
//! surface the workspace's property tests use:
//!
//! - the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - range strategies (`0u64..100`, `1usize..=8`, `0.0f64..1e5`),
//! - [`any`] for primitive types and byte arrays,
//! - tuple strategies, and
//! - [`collection::vec`].
//!
//! Unlike real proptest there is **no shrinking** and no persistence of
//! failing seeds: a failing case panics with the generated inputs left to
//! the assertion message. Case generation is fully deterministic — the RNG
//! stream is seeded from the test's module path and name — so failures
//! reproduce exactly across runs and machines.

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs when no config is given.
pub const DEFAULT_CASES: u32 = 256;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// The deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing uniformly random values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can generate.
pub trait Arbitrary: Sized {
    /// Draws one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the workspace's property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (plain `assert!` here: no
/// shrinking, the panic carries the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $($strat,)+ );
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ( $($pat,)+ ) = $crate::Strategy::sample(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn determinism() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different cases draw different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3u8..=6).sample(&mut rng);
            assert!((3..=6).contains(&w));
            let f = (1.5f64..2.5).sample(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = TestRng::for_case("vec", 0);
        let s = collection::vec((any::<u16>(), 0usize..4), 1..9);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&(_, b)| b < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_works(x in 0u32..100, mut ys in collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(x < 100);
            ys.push(true);
            prop_assert_eq!(ys.last(), Some(&true));
        }
    }
}
