//! The round-robin polling scheduler with packet quotas (paper §6.4).
//!
//! In the modified kernel, interrupt handlers only mark their device
//! "needs service" and wake the polling thread. The thread then asks this
//! scheduler what to do next; it answers with (device, direction, quota)
//! actions in round-robin order over every registered device's receive and
//! transmit sides, "to prevent a single input stream from monopolizing the
//! CPU". Callbacks report back whether the device still has pending work.

use core::fmt;

/// Identifies a registered event source (one network device).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub usize);

/// Which half of a device an action services.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PollDirection {
    /// Handle received packets (paper: the received-packet callback).
    Receive,
    /// Handle transmit completions and refill the transmit ring.
    Transmit,
}

/// A per-callback packet quota (paper §6.6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quota {
    /// Process at most this many packets per callback. The paper found
    /// "a quota of between 10 and 20 packets yields stable and near-optimum
    /// behavior" on its hardware.
    Limited(u32),
    /// No quota — the configuration that livelocks in Figure 6-3.
    Unlimited,
}

impl Quota {
    /// Returns the numeric limit, if any.
    pub fn limit(self) -> Option<u32> {
        match self {
            Quota::Limited(n) => Some(n),
            Quota::Unlimited => None,
        }
    }

    /// Returns `true` when `processed` packets exhaust this quota.
    pub fn exhausted_by(self, processed: u32) -> bool {
        match self {
            Quota::Limited(n) => processed >= n,
            Quota::Unlimited => false,
        }
    }
}

impl fmt::Display for Quota {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quota::Limited(n) => write!(f, "{n}"),
            Quota::Unlimited => f.write_str("infinity"),
        }
    }
}

/// One scheduling decision: run this device's callback in this direction,
/// processing at most `quota` packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollAction {
    /// The device to service.
    pub source: SourceId,
    /// Receive or transmit side.
    pub dir: PollDirection,
    /// How many packets the callback may handle before returning.
    pub quota: Quota,
}

#[derive(Clone, Copy, Debug, Default)]
struct SourceState {
    rx_pending: bool,
    tx_pending: bool,
}

/// The round-robin poll scheduler.
///
/// # Examples
///
/// ```
/// use livelock_core::poller::{PollDirection, Poller, Quota};
///
/// let mut p = Poller::new(Quota::Limited(10), Quota::Limited(10));
/// let eth0 = p.register();
/// let eth1 = p.register();
/// p.request(eth0, PollDirection::Receive);
/// p.request(eth1, PollDirection::Receive);
/// let a = p.next_action().unwrap();
/// assert_eq!(a.source, eth0);
/// // The callback reports "still more work pending".
/// p.complete(a.source, a.dir, 10, true);
/// // Round-robin: eth1 is served before eth0 comes around again.
/// assert_eq!(p.next_action().unwrap().source, eth1);
/// ```
#[derive(Clone, Debug)]
pub struct Poller {
    sources: Vec<SourceState>,
    rx_quota: Quota,
    tx_quota: Quota,
    /// Next slot to examine; slots are (source, direction) pairs laid out as
    /// `source * 2 + {0: rx, 1: tx}`.
    cursor: usize,
    rx_inhibited: bool,
    actions_issued: u64,
    packets_reported: u64,
}

impl Poller {
    /// Creates a scheduler with the given receive and transmit quotas.
    pub fn new(rx_quota: Quota, tx_quota: Quota) -> Self {
        Poller {
            sources: Vec::new(),
            rx_quota,
            tx_quota,
            cursor: 0,
            rx_inhibited: false,
            actions_issued: 0,
            packets_reported: 0,
        }
    }

    /// Registers a device (paper: "at boot time, the modified interface
    /// drivers register themselves with the polling system").
    pub fn register(&mut self) -> SourceId {
        self.sources.push(SourceState::default());
        SourceId(self.sources.len() - 1)
    }

    /// Returns the number of registered devices.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Marks a device as needing service (called from the interrupt stub).
    ///
    /// # Panics
    ///
    /// Panics on an unregistered source.
    pub fn request(&mut self, source: SourceId, dir: PollDirection) {
        let s = &mut self.sources[source.0];
        match dir {
            PollDirection::Receive => s.rx_pending = true,
            PollDirection::Transmit => s.tx_pending = true,
        }
    }

    /// Inhibits (or resumes) receive actions. Transmit actions are not
    /// affected — the paper's feedback and cycle-limit mechanisms inhibit
    /// "input processing but not output processing".
    pub fn set_rx_inhibited(&mut self, inhibited: bool) {
        self.rx_inhibited = inhibited;
    }

    /// Returns `true` while receive actions are inhibited.
    pub fn rx_inhibited(&self) -> bool {
        self.rx_inhibited
    }

    /// Picks the next (device, direction) to service, round-robin, or
    /// `None` when nothing serviceable is pending.
    pub fn next_action(&mut self) -> Option<PollAction> {
        let slots = self.sources.len() * 2;
        if slots == 0 {
            return None;
        }
        for step in 0..slots {
            let slot = (self.cursor + step) % slots;
            let source = SourceId(slot / 2);
            let dir = if slot % 2 == 0 {
                PollDirection::Receive
            } else {
                PollDirection::Transmit
            };
            if !self.slot_serviceable(source, dir) {
                continue;
            }
            self.cursor = (slot + 1) % slots;
            self.actions_issued += 1;
            let quota = match dir {
                PollDirection::Receive => self.rx_quota,
                PollDirection::Transmit => self.tx_quota,
            };
            return Some(PollAction { source, dir, quota });
        }
        None
    }

    fn slot_serviceable(&self, source: SourceId, dir: PollDirection) -> bool {
        let s = &self.sources[source.0];
        match dir {
            PollDirection::Receive => s.rx_pending && !self.rx_inhibited,
            PollDirection::Transmit => s.tx_pending,
        }
    }

    /// Reports a finished callback: how many packets it handled and whether
    /// the device still has work in that direction.
    ///
    /// # Panics
    ///
    /// Panics on an unregistered source.
    pub fn complete(&mut self, source: SourceId, dir: PollDirection, processed: u32, more: bool) {
        self.packets_reported += u64::from(processed);
        let s = &mut self.sources[source.0];
        match dir {
            PollDirection::Receive => s.rx_pending = more,
            PollDirection::Transmit => s.tx_pending = more,
        }
    }

    /// Returns `true` while any serviceable work is pending (decides whether
    /// the polling thread keeps running or re-enables interrupts and
    /// sleeps).
    pub fn any_serviceable(&self) -> bool {
        (0..self.sources.len()).any(|i| {
            self.slot_serviceable(SourceId(i), PollDirection::Receive)
                || self.slot_serviceable(SourceId(i), PollDirection::Transmit)
        })
    }

    /// Returns `true` while any work is pending, serviceable or not
    /// (inhibited receive work still counts: interrupts must stay off).
    pub fn any_pending(&self) -> bool {
        self.sources.iter().any(|s| s.rx_pending || s.tx_pending)
    }

    /// Returns `true` when the device has pending work in `dir`.
    pub fn is_pending(&self, source: SourceId, dir: PollDirection) -> bool {
        let s = &self.sources[source.0];
        match dir {
            PollDirection::Receive => s.rx_pending,
            PollDirection::Transmit => s.tx_pending,
        }
    }

    /// Total scheduling decisions issued (diagnostics).
    pub fn actions_issued(&self) -> u64 {
        self.actions_issued
    }

    /// Total packets reported through [`Poller::complete`] (diagnostics).
    pub fn packets_reported(&self) -> u64 {
        self.packets_reported
    }

    /// Returns the configured quota for a direction.
    pub fn quota(&self, dir: PollDirection) -> Quota {
        match dir {
            PollDirection::Receive => self.rx_quota,
            PollDirection::Transmit => self.tx_quota,
        }
    }

    /// Replaces the quotas (the paper recommends this be tunable).
    pub fn set_quotas(&mut self, rx: Quota, tx: Quota) {
        self.rx_quota = rx;
        self.tx_quota = tx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn poller_with(n: usize) -> (Poller, Vec<SourceId>) {
        let mut p = Poller::new(Quota::Limited(5), Quota::Limited(5));
        let ids = (0..n).map(|_| p.register()).collect();
        (p, ids)
    }

    #[test]
    fn empty_poller_yields_nothing() {
        let mut p = Poller::new(Quota::Unlimited, Quota::Unlimited);
        assert_eq!(p.next_action(), None);
        assert!(!p.any_pending());
        assert_eq!(p.num_sources(), 0);
    }

    #[test]
    fn quota_properties() {
        assert!(Quota::Limited(5).exhausted_by(5));
        assert!(!Quota::Limited(5).exhausted_by(4));
        assert!(!Quota::Unlimited.exhausted_by(u32::MAX));
        assert_eq!(Quota::Limited(7).limit(), Some(7));
        assert_eq!(Quota::Unlimited.limit(), None);
        assert_eq!(Quota::Limited(10).to_string(), "10");
        assert_eq!(Quota::Unlimited.to_string(), "infinity");
    }

    #[test]
    fn rx_before_tx_within_a_source() {
        let (mut p, ids) = poller_with(1);
        p.request(ids[0], PollDirection::Transmit);
        p.request(ids[0], PollDirection::Receive);
        assert_eq!(p.next_action().unwrap().dir, PollDirection::Receive);
        p.complete(ids[0], PollDirection::Receive, 5, false);
        assert_eq!(p.next_action().unwrap().dir, PollDirection::Transmit);
    }

    #[test]
    fn round_robin_across_sources() {
        let (mut p, ids) = poller_with(3);
        for &id in &ids {
            p.request(id, PollDirection::Receive);
        }
        // Every source stays pending; each round serves them in order.
        for round in 0..4 {
            for &id in &ids {
                let a = p.next_action().unwrap();
                assert_eq!(a.source, id, "round {round}");
                assert_eq!(a.dir, PollDirection::Receive);
                p.complete(a.source, a.dir, 5, true);
            }
        }
    }

    #[test]
    fn completion_with_no_more_work_clears_pending() {
        let (mut p, ids) = poller_with(1);
        p.request(ids[0], PollDirection::Receive);
        let a = p.next_action().unwrap();
        p.complete(a.source, a.dir, 3, false);
        assert!(!p.any_pending());
        assert_eq!(p.next_action(), None);
        assert_eq!(p.packets_reported(), 3);
    }

    #[test]
    fn rx_inhibit_skips_receive_but_not_transmit() {
        let (mut p, ids) = poller_with(2);
        p.request(ids[0], PollDirection::Receive);
        p.request(ids[1], PollDirection::Transmit);
        p.set_rx_inhibited(true);
        let a = p.next_action().unwrap();
        assert_eq!(a.dir, PollDirection::Transmit);
        assert_eq!(a.source, ids[1]);
        p.complete(a.source, a.dir, 1, false);
        assert_eq!(p.next_action(), None, "rx still inhibited");
        assert!(p.any_pending(), "inhibited rx work is still pending");
        assert!(!p.any_serviceable());
        p.set_rx_inhibited(false);
        assert_eq!(p.next_action().unwrap().source, ids[0]);
    }

    #[test]
    fn request_is_idempotent() {
        let (mut p, ids) = poller_with(1);
        p.request(ids[0], PollDirection::Receive);
        p.request(ids[0], PollDirection::Receive);
        let a = p.next_action().unwrap();
        p.complete(a.source, a.dir, 5, false);
        assert_eq!(p.next_action(), None, "double request != double service");
    }

    #[test]
    fn quotas_are_tunable() {
        let mut p = Poller::new(Quota::Limited(5), Quota::Unlimited);
        let id = p.register();
        p.request(id, PollDirection::Receive);
        assert_eq!(p.next_action().unwrap().quota, Quota::Limited(5));
        p.set_quotas(Quota::Limited(20), Quota::Limited(20));
        p.request(id, PollDirection::Receive);
        assert_eq!(p.next_action().unwrap().quota, Quota::Limited(20));
        assert_eq!(p.quota(PollDirection::Transmit), Quota::Limited(20));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// Fairness: with every slot always pending, over S*k consecutive
        /// actions every (source, direction) slot is served exactly k times,
        /// and no slot is ever served twice before another pending slot is
        /// served once in between rounds.
        #[test]
        fn fair_service_under_saturation(n_sources in 1usize..8, rounds in 1usize..20) {
            let (mut p, ids) = poller_with(n_sources);
            for &id in &ids {
                p.request(id, PollDirection::Receive);
                p.request(id, PollDirection::Transmit);
            }
            let slots = n_sources * 2;
            let mut served = vec![0u32; slots];
            for _ in 0..slots * rounds {
                let a = p.next_action().unwrap();
                let slot = a.source.0 * 2 + matches!(a.dir, PollDirection::Transmit) as usize;
                served[slot] += 1;
                p.complete(a.source, a.dir, 1, true);
            }
            for (slot, &count) in served.iter().enumerate() {
                prop_assert_eq!(count, rounds as u32, "slot {}", slot);
            }
        }

        /// No starvation: a slot that becomes pending is served within one
        /// full rotation (2 * num_sources actions).
        #[test]
        fn bounded_service_delay(n_sources in 2usize..8, victim in 0usize..8) {
            let victim = victim % n_sources;
            let (mut p, ids) = poller_with(n_sources);
            // Everyone else is persistently busy.
            for (i, &id) in ids.iter().enumerate() {
                if i != victim {
                    p.request(id, PollDirection::Receive);
                    p.request(id, PollDirection::Transmit);
                }
            }
            // Let the poller run a few arbitrary actions first.
            for _ in 0..3 {
                if let Some(a) = p.next_action() {
                    p.complete(a.source, a.dir, 1, true);
                }
            }
            p.request(ids[victim], PollDirection::Receive);
            let budget = n_sources * 2;
            let mut found = false;
            for _ in 0..budget {
                let a = p.next_action().unwrap();
                if a.source == ids[victim] && a.dir == PollDirection::Receive {
                    found = true;
                    break;
                }
                p.complete(a.source, a.dir, 1, true);
            }
            prop_assert!(found, "victim not served within one rotation");
        }
    }
}
