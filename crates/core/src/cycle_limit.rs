//! The CPU-cycle limiter: guaranteed progress for user-level processes
//! (paper §7).
//!
//! The polling and feedback mechanisms keep *packets* moving but are
//! "indifferent to the needs of other activities". The cycle limiter
//! measures, with a fine-grained cycle counter, how much CPU time packet
//! processing consumes in each period (the paper used 10 ms, matching the
//! scheduler quantum). Once usage passes a threshold fraction, input
//! handling is inhibited for the rest of the period; the period-start timer
//! re-enables it, and execution of the idle thread both re-enables input and
//! clears the running total.

/// What the kernel should do after reporting packet-processing usage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimiterDecision {
    /// Budget remains: keep processing input.
    Continue,
    /// The threshold was just crossed: inhibit input handling immediately.
    Inhibit,
}

/// Per-period CPU budget enforcement for packet processing.
///
/// # Examples
///
/// ```
/// use livelock_core::cycle_limit::{CycleLimiter, LimiterDecision};
///
/// // 1_000_000-cycle period (10 ms at 100 MHz), 25% for packet work.
/// let mut lim = CycleLimiter::new(1_000_000, 0.25);
/// assert_eq!(lim.record(200_000), LimiterDecision::Continue);
/// assert_eq!(lim.record(60_000), LimiterDecision::Inhibit);
/// assert!(lim.is_inhibited());
/// // The next period re-opens the budget.
/// assert!(lim.on_period_start());
/// assert!(!lim.is_inhibited());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CycleLimiter {
    period_cycles: u64,
    budget_cycles: u64,
    used: u64,
    inhibited: bool,
    inhibit_edges: u64,
    periods: u64,
}

impl CycleLimiter {
    /// Creates a limiter for a period of `period_cycles` with
    /// `threshold_frac` of the period available to packet processing.
    ///
    /// A threshold of 1.0 (the paper's "100%" curve) never inhibits.
    ///
    /// # Panics
    ///
    /// Panics if `period_cycles` is zero or the fraction is outside
    /// `[0, 1]`.
    pub fn new(period_cycles: u64, threshold_frac: f64) -> Self {
        assert!(period_cycles > 0, "period must be positive");
        assert!(
            (0.0..=1.0).contains(&threshold_frac),
            "threshold must be within [0, 1]"
        );
        CycleLimiter {
            period_cycles,
            budget_cycles: (period_cycles as f64 * threshold_frac) as u64,
            used: 0,
            inhibited: false,
            inhibit_edges: 0,
            periods: 0,
        }
    }

    /// Returns the period length in cycles.
    pub fn period_cycles(&self) -> u64 {
        self.period_cycles
    }

    /// Returns the per-period budget in cycles.
    pub fn budget_cycles(&self) -> u64 {
        self.budget_cycles
    }

    /// Returns the cycles consumed so far this period.
    pub fn used_cycles(&self) -> u64 {
        self.used
    }

    /// Returns `true` while input handling is inhibited.
    pub fn is_inhibited(&self) -> bool {
        self.inhibited
    }

    /// Records `cycles` of packet-processing work (one poll-loop pass).
    ///
    /// Returns [`LimiterDecision::Inhibit`] exactly on the crossing edge;
    /// the caller inhibits input and must not re-enable it until
    /// [`CycleLimiter::on_period_start`] or [`CycleLimiter::on_idle`]
    /// returns `true`.
    pub fn record(&mut self, cycles: u64) -> LimiterDecision {
        self.used = self.used.saturating_add(cycles);
        if !self.inhibited
            && self.budget_cycles < self.period_cycles
            && self.used > self.budget_cycles
        {
            self.inhibited = true;
            self.inhibit_edges += 1;
            LimiterDecision::Inhibit
        } else {
            LimiterDecision::Continue
        }
    }

    /// Starts a new accounting period (the per-period timer): clears the
    /// running total and lifts any inhibition. Returns `true` if input was
    /// inhibited and should now be resumed.
    pub fn on_period_start(&mut self) -> bool {
        self.periods += 1;
        self.used = 0;
        core::mem::take(&mut self.inhibited)
    }

    /// Reports that the idle thread ran: the system is under-loaded, so the
    /// running total is cleared and input is re-enabled (paper §7:
    /// "execution of the system's idle thread also re-enables input
    /// interrupts and clears the running total"). Returns `true` if input
    /// was inhibited and should now be resumed.
    pub fn on_idle(&mut self) -> bool {
        self.used = 0;
        core::mem::take(&mut self.inhibited)
    }

    /// How many times the threshold was crossed (diagnostics).
    pub fn inhibit_edges(&self) -> u64 {
        self.inhibit_edges
    }

    /// How many periods have elapsed (diagnostics).
    pub fn periods(&self) -> u64 {
        self.periods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn stays_open_under_budget() {
        let mut lim = CycleLimiter::new(1_000_000, 0.5);
        assert_eq!(lim.budget_cycles(), 500_000);
        for _ in 0..4 {
            assert_eq!(lim.record(100_000), LimiterDecision::Continue);
        }
        assert!(!lim.is_inhibited());
        assert_eq!(lim.used_cycles(), 400_000);
    }

    #[test]
    fn inhibits_exactly_once_per_crossing() {
        let mut lim = CycleLimiter::new(1_000_000, 0.25);
        assert_eq!(
            lim.record(250_000),
            LimiterDecision::Continue,
            "== budget is ok"
        );
        assert_eq!(lim.record(1), LimiterDecision::Inhibit);
        assert_eq!(
            lim.record(1_000_000),
            LimiterDecision::Continue,
            "edge fired already"
        );
        assert_eq!(lim.inhibit_edges(), 1);
    }

    #[test]
    fn period_start_resets_and_resumes() {
        let mut lim = CycleLimiter::new(100, 0.5);
        lim.record(51);
        assert!(lim.is_inhibited());
        assert!(lim.on_period_start());
        assert!(!lim.is_inhibited());
        assert_eq!(lim.used_cycles(), 0);
        assert!(!lim.on_period_start(), "no resume needed when open");
        assert_eq!(lim.periods(), 2);
    }

    #[test]
    fn idle_resets_and_resumes() {
        let mut lim = CycleLimiter::new(100, 0.5);
        lim.record(60);
        assert!(lim.on_idle());
        assert!(!lim.is_inhibited());
        assert_eq!(lim.used_cycles(), 0);
        assert!(!lim.on_idle());
    }

    #[test]
    fn full_threshold_never_inhibits() {
        let mut lim = CycleLimiter::new(1_000, 1.0);
        for _ in 0..100 {
            assert_eq!(lim.record(10_000), LimiterDecision::Continue);
        }
        assert!(!lim.is_inhibited());
        assert_eq!(lim.inhibit_edges(), 0);
    }

    #[test]
    fn zero_threshold_inhibits_immediately() {
        let mut lim = CycleLimiter::new(1_000, 0.0);
        assert_eq!(lim.record(1), LimiterDecision::Inhibit);
    }

    #[test]
    fn saturating_accumulation() {
        let mut lim = CycleLimiter::new(u64::MAX, 0.0);
        lim.record(u64::MAX);
        assert_eq!(lim.record(u64::MAX), LimiterDecision::Continue);
        assert_eq!(lim.used_cycles(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "threshold must be within")]
    fn rejects_bad_fraction() {
        let _ = CycleLimiter::new(100, 1.5);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The limiter inhibits iff cumulative usage exceeds the budget
        /// (when the threshold is below 100%), and the total overshoot is at
        /// most one chunk beyond the budget at the moment of inhibition.
        #[test]
        fn inhibit_matches_accumulated_usage(
            period in 1_000u64..10_000_000,
            frac_pct in 0u32..=100,
            chunks in proptest::collection::vec(1u64..100_000, 1..100),
        ) {
            let frac = frac_pct as f64 / 100.0;
            let mut lim = CycleLimiter::new(period, frac);
            let budget = lim.budget_cycles();
            let mut total = 0u64;
            let mut inhibited_at: Option<u64> = None;
            for &c in &chunks {
                total += c;
                let d = lim.record(c);
                if d == LimiterDecision::Inhibit {
                    prop_assert!(inhibited_at.is_none(), "double inhibit edge");
                    inhibited_at = Some(total);
                }
            }
            let should_inhibit = budget < period && total > budget;
            prop_assert_eq!(lim.is_inhibited(), should_inhibit);
            if let Some(at) = inhibited_at {
                // Overshoot is bounded by the chunk that crossed the line.
                prop_assert!(at > budget);
                prop_assert!(at - budget <= *chunks.iter().max().unwrap());
            }
        }
    }
}
