//! The interrupt gate: multi-reason inhibit / re-enable bookkeeping.
//!
//! Several independent mechanisms in the modified kernel want receive
//! interrupts (and receive polling) off: the polling thread while it has
//! work pending, queue-state feedback while a downstream queue is congested,
//! and the cycle limiter when packet processing exceeded its CPU share.
//! Interrupts may be re-enabled only when *no* mechanism still objects.
//! [`IntrGate`] centralizes that conjunction so no code path can re-enable
//! input while another subsystem still requires it off — the classic bug in
//! hand-rolled implementations.

/// Why input processing is currently inhibited. Reasons are independent
/// bits; the gate is open only when none are set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InhibitReason {
    /// The polling thread is active; interrupts stay off until it finishes
    /// (paper §6.4: the handler "does not set the device's interrupt-enable
    /// flag ... until the polling thread has processed all of the pending
    /// packets").
    PollingActive,
    /// Queue-state feedback: a downstream queue passed its high-water mark
    /// (paper §6.6.1).
    QueueFeedback,
    /// The CPU-cycle limiter: packet processing used its share of the
    /// current period (paper §7).
    CycleLimit,
    /// Queue-state feedback from a local socket / packet-filter queue —
    /// the paper suggests applying the same technique "to other queues in
    /// the system" (§6.6.1).
    SocketFeedback,
    /// The progress watchdog detected consumer starvation (§5.1's
    /// "user code making no progress" trigger).
    Watchdog,
    /// Explicit administrative disable (e.g. a user turned the interface
    /// off).
    Admin,
}

impl InhibitReason {
    const COUNT: usize = 6;

    /// The reason's position in the [`IntrGate::bits`] bitmask (bit 0 =
    /// `PollingActive` ... bit 5 = `Admin`, in [`InhibitReason::ALL`]
    /// order). Stable: telemetry encodes gate state as this bitmask.
    pub const fn bit_index(self) -> u8 {
        match self {
            InhibitReason::PollingActive => 0,
            InhibitReason::QueueFeedback => 1,
            InhibitReason::CycleLimit => 2,
            InhibitReason::SocketFeedback => 3,
            InhibitReason::Watchdog => 4,
            InhibitReason::Admin => 5,
        }
    }

    fn bit(self) -> u8 {
        1 << self.bit_index()
    }

    /// All reasons, for iteration in tests and diagnostics.
    pub const ALL: [InhibitReason; InhibitReason::COUNT] = [
        InhibitReason::PollingActive,
        InhibitReason::QueueFeedback,
        InhibitReason::CycleLimit,
        InhibitReason::SocketFeedback,
        InhibitReason::Watchdog,
        InhibitReason::Admin,
    ];
}

/// What an inhibit/allow call changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateChange {
    /// The gate just closed (was open before this call).
    Closed,
    /// The gate just opened (all reasons now clear) — the caller should
    /// re-enable device receive interrupts.
    Opened,
    /// No edge: the gate stays in its previous state.
    Unchanged,
}

/// Tracks the set of reasons input is inhibited for one device (or for the
/// whole input path).
///
/// # Examples
///
/// ```
/// use livelock_core::gate::{GateChange, InhibitReason, IntrGate};
///
/// let mut g = IntrGate::new();
/// assert!(g.is_open());
/// assert_eq!(g.inhibit(InhibitReason::PollingActive), GateChange::Closed);
/// assert_eq!(g.inhibit(InhibitReason::QueueFeedback), GateChange::Unchanged);
/// // Clearing one reason is not enough...
/// assert_eq!(g.allow(InhibitReason::PollingActive), GateChange::Unchanged);
/// // ...only clearing the last one opens the gate.
/// assert_eq!(g.allow(InhibitReason::QueueFeedback), GateChange::Opened);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntrGate {
    reasons: u8,
}

impl IntrGate {
    /// Creates an open gate (no inhibit reasons).
    pub const fn new() -> Self {
        IntrGate { reasons: 0 }
    }

    /// Returns `true` when no reason is set: interrupts may be enabled.
    pub const fn is_open(self) -> bool {
        self.reasons == 0
    }

    /// Returns `true` when `reason` is currently asserted.
    pub fn holds(self, reason: InhibitReason) -> bool {
        self.reasons & reason.bit() != 0
    }

    /// Asserts an inhibit reason. Idempotent.
    pub fn inhibit(&mut self, reason: InhibitReason) -> GateChange {
        let was_open = self.is_open();
        self.reasons |= reason.bit();
        if was_open {
            GateChange::Closed
        } else {
            GateChange::Unchanged
        }
    }

    /// Clears an inhibit reason. Idempotent. Returns [`GateChange::Opened`]
    /// exactly when this call cleared the last standing reason.
    pub fn allow(&mut self, reason: InhibitReason) -> GateChange {
        let was_open = self.is_open();
        self.reasons &= !reason.bit();
        if !was_open && self.is_open() {
            GateChange::Opened
        } else {
            GateChange::Unchanged
        }
    }

    /// The asserted reasons as a bitmask ([`InhibitReason::bit_index`]
    /// gives each reason's bit). Zero means the gate is open. This is the
    /// encoding the telemetry sampler records, so a timeline can show
    /// *why* input was inhibited at each instant, not just that it was.
    pub const fn bits(self) -> u8 {
        self.reasons
    }

    /// Returns the currently asserted reasons.
    pub fn active_reasons(self) -> impl Iterator<Item = InhibitReason> {
        InhibitReason::ALL
            .into_iter()
            .filter(move |r| self.reasons & r.bit() != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn starts_open() {
        let g = IntrGate::new();
        assert!(g.is_open());
        assert_eq!(g.active_reasons().count(), 0);
    }

    #[test]
    fn single_reason_cycle() {
        let mut g = IntrGate::new();
        assert_eq!(g.inhibit(InhibitReason::CycleLimit), GateChange::Closed);
        assert!(!g.is_open());
        assert!(g.holds(InhibitReason::CycleLimit));
        assert_eq!(g.allow(InhibitReason::CycleLimit), GateChange::Opened);
        assert!(g.is_open());
    }

    #[test]
    fn inhibit_is_idempotent() {
        let mut g = IntrGate::new();
        assert_eq!(g.inhibit(InhibitReason::Admin), GateChange::Closed);
        assert_eq!(g.inhibit(InhibitReason::Admin), GateChange::Unchanged);
        assert_eq!(g.allow(InhibitReason::Admin), GateChange::Opened);
        assert_eq!(g.allow(InhibitReason::Admin), GateChange::Unchanged);
    }

    #[test]
    fn gate_opens_only_when_all_reasons_clear() {
        let mut g = IntrGate::new();
        for r in InhibitReason::ALL {
            g.inhibit(r);
        }
        let mut opened = 0;
        for r in InhibitReason::ALL {
            if g.allow(r) == GateChange::Opened {
                opened += 1;
            }
        }
        assert_eq!(opened, 1, "exactly one allow() reports the opening edge");
        assert!(g.is_open());
    }

    #[test]
    fn active_reasons_reports_exact_set() {
        let mut g = IntrGate::new();
        g.inhibit(InhibitReason::PollingActive);
        g.inhibit(InhibitReason::CycleLimit);
        let active: Vec<_> = g.active_reasons().collect();
        assert_eq!(
            active,
            vec![InhibitReason::PollingActive, InhibitReason::CycleLimit]
        );
    }

    #[test]
    fn bits_match_indices_and_active_set() {
        let mut g = IntrGate::new();
        assert_eq!(g.bits(), 0);
        g.inhibit(InhibitReason::QueueFeedback);
        g.inhibit(InhibitReason::Watchdog);
        assert_eq!(g.bits(), (1 << 1) | (1 << 4));
        for (i, r) in InhibitReason::ALL.into_iter().enumerate() {
            assert_eq!(r.bit_index() as usize, i, "ALL order matches indices");
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The central safety property: after any sequence of operations,
        /// the gate is open iff the model set of standing reasons is empty,
        /// and `Opened` is reported exactly on the closing-to-open edges.
        #[test]
        fn matches_set_model(ops in proptest::collection::vec((0usize..6, any::<bool>()), 0..200)) {
            let mut g = IntrGate::new();
            let mut model = [false; 6];
            for (idx, assert_op) in ops {
                let r = InhibitReason::ALL[idx];
                let was_open = !model.iter().any(|&b| b);
                let change = if assert_op {
                    model[idx] = true;
                    g.inhibit(r)
                } else {
                    model[idx] = false;
                    g.allow(r)
                };
                let now_open = !model.iter().any(|&b| b);
                prop_assert_eq!(g.is_open(), now_open);
                prop_assert_eq!(g.holds(r), model[idx]);
                let expect = match (was_open, now_open) {
                    (true, false) => GateChange::Closed,
                    (false, true) => GateChange::Opened,
                    _ => GateChange::Unchanged,
                };
                prop_assert_eq!(change, expect);
            }
        }
    }
}
