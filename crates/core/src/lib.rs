#![warn(missing_docs)]

//! The paper's contribution as a reusable library: scheduling mechanisms
//! that eliminate receive livelock in interrupt-driven systems.
//!
//! Mogul & Ramakrishnan (USENIX 1996) avoid livelock by:
//!
//! - **using interrupts only to initiate polling** — the [`gate`] module's
//!   [`gate::IntrGate`] tracks every reason input is inhibited and
//!   decides when device interrupts may be re-enabled;
//! - **round-robin polling with packet quotas** — [`poller`] implements the
//!   fair scheduler the kernel's polling thread runs, alternating between
//!   receive and transmit work across all registered devices;
//! - **queue-state feedback** — [`feedback`] is the hysteresis controller
//!   that inhibits input when a downstream queue (e.g. to `screend`) passes
//!   its high-water mark and resumes at the low-water mark, with the paper's
//!   one-clock-tick timeout as a safety net;
//! - **explicit CPU-cycle limits** — [`cycle_limit`] measures the fraction
//!   of each period spent processing packets and inhibits input past a
//!   threshold, guaranteeing progress for user-level processes (paper §7);
//! - **interrupt rate limiting** — [`rate_limit`] implements §5.1's
//!   "limiting the interrupt arrival rate" as a token bucket (kept
//!   separate because, as the paper stresses, it bounds saturation but
//!   cannot by itself guarantee progress);
//! - **analysis** — [`analysis`] computes the Maximum Loss Free Receive
//!   Rate (MLFRR) and detects livelock in rate-sweep results.
//!
//! The library is simulation-agnostic: it contains no clocks, no I/O, and no
//! device model. The `livelock-kernel` crate drives it from a simulated
//! kernel; [`driver::PollLoop`] is the ready-made harness for driving real
//! devices (netmap/AF_XDP/DPDK-style userspace NICs) with the same
//! mechanisms.

pub mod analysis;
pub mod cycle_limit;
pub mod driver;
pub mod feedback;
pub mod gate;
pub mod poller;
pub mod rate_limit;
pub mod watchdog;

pub use analysis::{mlfrr, LivelockVerdict, SweepPoint};
pub use cycle_limit::{CycleLimiter, LimiterDecision};
pub use driver::{PollDriver, PollLoop, PollOutcome, PollStatus};
pub use feedback::{FeedbackSignal, WatermarkFeedback};
pub use gate::{InhibitReason, IntrGate};
pub use poller::{PollAction, PollDirection, Poller, Quota, SourceId};
pub use rate_limit::IntrRateLimiter;
pub use watchdog::{GateWatchdog, ProgressWatchdog, WatchdogSignal};
