//! Queue-state feedback with hysteresis and a timeout (paper §6.6.1).
//!
//! When a downstream queue (the screend queue, an output queue, a packet
//! filter queue) fills past a high-water mark, input processing is inhibited
//! until the queue drains to a low-water mark; a timeout re-enables input
//! even if the consumer is hung "so that packets for other consumers are not
//! dropped indefinitely". The paper's values: a 32-entry screening queue,
//! inhibit at 75% full, resume at 25% full, timeout of one clock tick
//! (~1 ms).

/// The edge the controller asks the kernel to act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedbackSignal {
    /// Inhibit input processing and receive interrupts.
    Inhibit,
    /// Resume input processing (re-enable receive interrupts if nothing
    /// else objects).
    Resume,
}

/// A hysteresis controller over a bounded queue's depth.
///
/// Use [`WatermarkFeedback::on_depth`] after every enqueue/dequeue and
/// [`WatermarkFeedback::on_tick`] on every clock tick; both return a signal
/// only on state *edges*, so acting on every returned signal is idempotent.
///
/// # Examples
///
/// ```
/// use livelock_core::feedback::{FeedbackSignal, WatermarkFeedback};
///
/// let mut fb = WatermarkFeedback::paper_screend();
/// assert_eq!(fb.on_depth(24), Some(FeedbackSignal::Inhibit)); // 75% of 32
/// assert_eq!(fb.on_depth(25), None, "already inhibited");
/// assert_eq!(fb.on_depth(8), Some(FeedbackSignal::Resume)); // 25% of 32
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WatermarkFeedback {
    hi: usize,
    lo: usize,
    timeout_ticks: u32,
    inhibited: bool,
    ticks_inhibited: u32,
    inhibit_edges: u64,
    timeout_resumes: u64,
}

impl WatermarkFeedback {
    /// Creates a controller for a queue of `capacity` items with high/low
    /// water marks given as fractions of capacity, and a timeout in clock
    /// ticks (0 disables the timeout).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo_frac < hi_frac ≤ 1` and `capacity > 0`.
    pub fn new(capacity: usize, hi_frac: f64, lo_frac: f64, timeout_ticks: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&hi_frac) && (0.0..=1.0).contains(&lo_frac),
            "fractions must be within [0, 1]"
        );
        assert!(lo_frac < hi_frac, "low water must be below high water");
        let hi = (hi_frac * capacity as f64).ceil() as usize;
        let lo = (lo_frac * capacity as f64).floor() as usize;
        WatermarkFeedback {
            hi: hi.max(1),
            lo,
            timeout_ticks,
            inhibited: false,
            ticks_inhibited: 0,
            inhibit_edges: 0,
            timeout_resumes: 0,
        }
    }

    /// The paper's screend configuration: 32-entry queue, inhibit at 75%,
    /// resume at 25%, one-clock-tick timeout.
    pub fn paper_screend() -> Self {
        WatermarkFeedback::new(32, 0.75, 0.25, 1)
    }

    /// Returns the high-water mark in items.
    pub fn high_water(&self) -> usize {
        self.hi
    }

    /// Returns the low-water mark in items.
    pub fn low_water(&self) -> usize {
        self.lo
    }

    /// Returns `true` while input is inhibited.
    pub fn is_inhibited(&self) -> bool {
        self.inhibited
    }

    /// Reports the queue's current depth; returns a signal on edges.
    pub fn on_depth(&mut self, depth: usize) -> Option<FeedbackSignal> {
        if !self.inhibited && depth >= self.hi {
            self.inhibited = true;
            self.ticks_inhibited = 0;
            self.inhibit_edges += 1;
            Some(FeedbackSignal::Inhibit)
        } else if self.inhibited && depth <= self.lo {
            self.inhibited = false;
            Some(FeedbackSignal::Resume)
        } else {
            None
        }
    }

    /// Reports a clock tick; after `timeout_ticks` ticks of continuous
    /// inhibition the controller resumes input regardless of depth (the
    /// hung-consumer safety net).
    pub fn on_tick(&mut self) -> Option<FeedbackSignal> {
        if !self.inhibited || self.timeout_ticks == 0 {
            return None;
        }
        self.ticks_inhibited += 1;
        if self.ticks_inhibited >= self.timeout_ticks {
            self.inhibited = false;
            self.timeout_resumes += 1;
            Some(FeedbackSignal::Resume)
        } else {
            None
        }
    }

    /// How many times the controller inhibited input (diagnostics).
    pub fn inhibit_edges(&self) -> u64 {
        self.inhibit_edges
    }

    /// How many resumes were forced by the timeout rather than by drainage.
    pub fn timeout_resumes(&self) -> u64 {
        self.timeout_resumes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn paper_marks() {
        let fb = WatermarkFeedback::paper_screend();
        assert_eq!(fb.high_water(), 24);
        assert_eq!(fb.low_water(), 8);
        assert!(!fb.is_inhibited());
    }

    #[test]
    fn basic_hysteresis_cycle() {
        let mut fb = WatermarkFeedback::paper_screend();
        assert_eq!(fb.on_depth(23), None);
        assert_eq!(fb.on_depth(24), Some(FeedbackSignal::Inhibit));
        assert!(fb.is_inhibited());
        // Between the marks: no edge in either direction.
        assert_eq!(fb.on_depth(16), None);
        assert_eq!(fb.on_depth(9), None);
        assert_eq!(fb.on_depth(8), Some(FeedbackSignal::Resume));
        assert!(!fb.is_inhibited());
        // Hysteresis: rising back above lo but below hi does nothing.
        assert_eq!(fb.on_depth(16), None);
        assert_eq!(fb.inhibit_edges(), 1);
    }

    #[test]
    fn edges_fire_once() {
        let mut fb = WatermarkFeedback::paper_screend();
        assert_eq!(fb.on_depth(30), Some(FeedbackSignal::Inhibit));
        assert_eq!(fb.on_depth(31), None);
        assert_eq!(fb.on_depth(32), None);
        assert_eq!(fb.on_depth(0), Some(FeedbackSignal::Resume));
        assert_eq!(fb.on_depth(0), None);
    }

    #[test]
    fn timeout_resumes_hung_consumer() {
        let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, 3);
        fb.on_depth(24);
        assert_eq!(fb.on_tick(), None);
        assert_eq!(fb.on_tick(), None);
        assert_eq!(fb.on_tick(), Some(FeedbackSignal::Resume));
        assert!(!fb.is_inhibited());
        assert_eq!(fb.timeout_resumes(), 1);
        // Still congested: the next depth report re-inhibits.
        assert_eq!(fb.on_depth(24), Some(FeedbackSignal::Inhibit));
    }

    #[test]
    fn paper_timeout_is_one_tick() {
        let mut fb = WatermarkFeedback::paper_screend();
        fb.on_depth(24);
        assert_eq!(fb.on_tick(), Some(FeedbackSignal::Resume));
    }

    #[test]
    fn tick_counter_resets_per_inhibition() {
        let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, 2);
        fb.on_depth(24);
        assert_eq!(fb.on_tick(), None);
        assert_eq!(fb.on_depth(8), Some(FeedbackSignal::Resume));
        fb.on_depth(24);
        // A fresh inhibition gets the full timeout again.
        assert_eq!(fb.on_tick(), None);
        assert_eq!(fb.on_tick(), Some(FeedbackSignal::Resume));
    }

    #[test]
    fn zero_timeout_disables_safety_net() {
        let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, 0);
        fb.on_depth(32);
        for _ in 0..1000 {
            assert_eq!(fb.on_tick(), None);
        }
        assert!(fb.is_inhibited());
    }

    #[test]
    fn ticks_while_open_do_nothing() {
        let mut fb = WatermarkFeedback::paper_screend();
        for _ in 0..10 {
            assert_eq!(fb.on_tick(), None);
        }
        assert!(!fb.is_inhibited());
    }

    #[test]
    fn stuck_consumer_reenables_without_any_drain_event() {
        // The wedge scenario fault injection creates: the consumer dies
        // right after the inhibit edge, so no on_depth() ever arrives
        // again. Only the tick-driven timeout can re-enable input — and it
        // must do so every time, indefinitely.
        let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, 2);
        fb.on_depth(24);
        for round in 1..=50u64 {
            assert!(fb.is_inhibited(), "round {round}");
            assert_eq!(fb.on_tick(), None, "round {round}: one tick early");
            assert_eq!(
                fb.on_tick(),
                Some(FeedbackSignal::Resume),
                "round {round}: timeout must fire with no drain in sight"
            );
            assert_eq!(fb.timeout_resumes(), round);
            // Queue still jammed: the next depth report re-inhibits, and
            // the timeout clock must restart from zero.
            assert_eq!(fb.on_depth(30), Some(FeedbackSignal::Inhibit));
        }
    }

    #[test]
    fn low_water_then_timeout_in_the_same_tick_resumes_once() {
        // Race, order A: the drain crosses the low-water mark and the
        // clock tick that would have fired the timeout lands right after.
        // Exactly one Resume; the tick must not double-fire or re-wedge.
        let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, 1);
        fb.on_depth(24);
        assert_eq!(fb.on_depth(8), Some(FeedbackSignal::Resume));
        assert_eq!(fb.on_tick(), None, "timeout races the drain and loses");
        assert!(!fb.is_inhibited());
        assert_eq!(fb.timeout_resumes(), 0, "drain won: not a timeout resume");
    }

    #[test]
    fn timeout_then_low_water_in_the_same_tick_resumes_once() {
        // Race, order B: the tick fires the timeout first, then the
        // in-flight dequeue reports a low depth. The depth report must
        // see an already-open controller and stay silent.
        let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, 1);
        fb.on_depth(24);
        assert_eq!(fb.on_tick(), Some(FeedbackSignal::Resume));
        assert_eq!(fb.on_depth(8), None, "already resumed by the timeout");
        assert!(!fb.is_inhibited());
        assert_eq!(fb.timeout_resumes(), 1);
        // And the controller is not wedged: a later fill inhibits again.
        assert_eq!(fb.on_depth(24), Some(FeedbackSignal::Inhibit));
    }

    #[test]
    #[should_panic(expected = "low water must be below high water")]
    fn rejects_inverted_marks() {
        let _ = WatermarkFeedback::new(32, 0.25, 0.75, 1);
    }

    #[test]
    fn tiny_queue_still_works() {
        let mut fb = WatermarkFeedback::new(1, 1.0, 0.0, 1);
        assert_eq!(fb.on_depth(1), Some(FeedbackSignal::Inhibit));
        assert_eq!(fb.on_depth(0), Some(FeedbackSignal::Resume));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// Signals strictly alternate Inhibit/Resume and the controller's
        /// state always matches the last signal emitted.
        #[test]
        fn signals_alternate(
            depths in proptest::collection::vec(0usize..=32, 1..300),
            ticks in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let mut fb = WatermarkFeedback::paper_screend();
            let mut last: Option<FeedbackSignal> = None;
            let mut di = depths.iter();
            for &tick in &ticks {
                let sig = if tick {
                    fb.on_tick()
                } else if let Some(&d) = di.next() {
                    fb.on_depth(d)
                } else {
                    break;
                };
                if let Some(s) = sig {
                    match (last, s) {
                        (Some(FeedbackSignal::Inhibit), FeedbackSignal::Inhibit) => {
                            prop_assert!(false, "two Inhibits in a row")
                        }
                        (Some(FeedbackSignal::Resume), FeedbackSignal::Resume) => {
                            prop_assert!(false, "two Resumes in a row")
                        }
                        (None, FeedbackSignal::Resume) => {
                            prop_assert!(false, "Resume before any Inhibit")
                        }
                        _ => {}
                    }
                    last = Some(s);
                }
                let expect_inhibited = matches!(last, Some(FeedbackSignal::Inhibit));
                prop_assert_eq!(fb.is_inhibited(), expect_inhibited);
            }
        }

        /// Depth at or below the low-water mark always leaves the gate open.
        #[test]
        fn low_depth_never_inhibited(d in 0usize..=8) {
            let mut fb = WatermarkFeedback::paper_screend();
            fb.on_depth(32);
            fb.on_depth(d);
            prop_assert!(!fb.is_inhibited());
        }
    }
}
