//! Interrupt arrival-rate limiting (paper §5.1).
//!
//! "We can avoid or defer receive livelock by limiting the rate at which
//! interrupts are imposed on the system." This is a token bucket over
//! interrupt deliveries: each allowed interrupt consumes a token; tokens
//! refill at the configured rate; when the bucket is empty the interrupt
//! is deferred until [`IntrRateLimiter::next_allowed`]. Related work
//! (Traw & Smith's "clocked interrupts") polls at fixed intervals instead;
//! the bucket generalizes both.
//!
//! The paper's §5.1 caveat is the point of keeping this separate from the
//! polling machinery: "limiting the interrupt rate prevents system
//! saturation but might not guarantee progress" — the ablation benches and
//! tests demonstrate exactly that.

/// A token bucket governing interrupt delivery, timed in CPU cycles.
///
/// # Examples
///
/// ```
/// use livelock_core::rate_limit::IntrRateLimiter;
///
/// // At most 1 interrupt per 1000 cycles, bursts of up to 2.
/// let mut rl = IntrRateLimiter::new(1_000, 2);
/// assert!(rl.allow(0));
/// assert!(rl.allow(0), "burst capacity");
/// assert!(!rl.allow(500), "bucket empty");
/// assert_eq!(rl.next_allowed(500), 1_000);
/// assert!(rl.allow(1_000), "token refilled");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct IntrRateLimiter {
    /// Cycles per token (the inverse of the maximum sustained rate).
    interval: u64,
    /// Bucket capacity in tokens.
    burst: u32,
    /// Tokens currently available.
    tokens: u32,
    /// Time the bucket state was last advanced, plus sub-token remainder
    /// folded into the next refill.
    last_refill: u64,
    allowed: u64,
    deferred: u64,
}

impl IntrRateLimiter {
    /// Creates a limiter allowing one interrupt per `interval_cycles`
    /// sustained, with bursts of up to `burst` (≥ 1). The bucket starts
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero or `burst` is zero.
    pub fn new(interval_cycles: u64, burst: u32) -> Self {
        assert!(interval_cycles > 0, "interval must be positive");
        assert!(burst > 0, "burst must be at least one");
        IntrRateLimiter {
            interval: interval_cycles,
            burst,
            tokens: burst,
            last_refill: 0,
            allowed: 0,
            deferred: 0,
        }
    }

    /// Builds a limiter for a maximum rate in interrupts/second at a given
    /// CPU frequency.
    pub fn per_second(max_rate: f64, cpu_hz: u64, burst: u32) -> Self {
        assert!(max_rate > 0.0, "rate must be positive");
        let interval = (cpu_hz as f64 / max_rate).round().max(1.0) as u64;
        IntrRateLimiter::new(interval, burst)
    }

    fn refill(&mut self, now: u64) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now - self.last_refill;
        let earned = elapsed / self.interval;
        if earned > 0 {
            self.tokens = (u64::from(self.tokens) + earned).min(u64::from(self.burst)) as u32;
            // Advance in whole-token steps, carrying the remainder.
            self.last_refill += earned * self.interval;
            if self.tokens == self.burst {
                // A full bucket forgets fractional progress, as buckets do.
                self.last_refill = now;
            }
        }
    }

    /// Requests delivery of an interrupt at time `now`. Returns `true` when
    /// allowed (a token is consumed) or `false` when it must be deferred.
    pub fn allow(&mut self, now: u64) -> bool {
        self.refill(now);
        if self.tokens > 0 {
            self.tokens -= 1;
            self.allowed += 1;
            true
        } else {
            self.deferred += 1;
            false
        }
    }

    /// The earliest time a deferred interrupt may be delivered.
    pub fn next_allowed(&self, now: u64) -> u64 {
        if self.tokens > 0 {
            now
        } else {
            self.last_refill + self.interval
        }
    }

    /// Interrupts allowed so far.
    pub fn allowed_count(&self) -> u64 {
        self.allowed
    }

    /// Delivery attempts deferred so far.
    pub fn deferred_count(&self) -> u64 {
        self.deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn burst_then_sustained_rate() {
        let mut rl = IntrRateLimiter::new(100, 3);
        assert!(rl.allow(0));
        assert!(rl.allow(0));
        assert!(rl.allow(0));
        assert!(!rl.allow(0));
        assert!(!rl.allow(99));
        assert!(rl.allow(100));
        assert!(!rl.allow(150));
        assert!(rl.allow(200));
        assert_eq!(rl.allowed_count(), 5);
        assert_eq!(rl.deferred_count(), 3);
    }

    #[test]
    fn long_idle_refills_to_burst_only() {
        let mut rl = IntrRateLimiter::new(100, 2);
        assert!(rl.allow(0));
        assert!(rl.allow(0));
        // A huge gap earns at most `burst` tokens.
        assert!(rl.allow(1_000_000));
        assert!(rl.allow(1_000_000));
        assert!(!rl.allow(1_000_000));
    }

    #[test]
    fn next_allowed_is_consistent() {
        let mut rl = IntrRateLimiter::new(100, 1);
        assert!(rl.allow(50));
        assert!(!rl.allow(60));
        let t = rl.next_allowed(60);
        assert!(t >= 60);
        assert!(rl.allow(t), "promised time must deliver");
    }

    #[test]
    fn per_second_constructor() {
        // 5000 intr/s at 100 MHz = one per 20_000 cycles.
        let rl = IntrRateLimiter::per_second(5_000.0, 100_000_000, 1);
        assert_eq!(rl.interval, 20_000);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = IntrRateLimiter::new(0, 1);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The sustained rate never exceeds the configured one: over any
        /// request trace, allowed ≤ burst + elapsed/interval.
        #[test]
        fn sustained_rate_bound(
            interval in 10u64..10_000,
            burst in 1u32..16,
            deltas in proptest::collection::vec(0u64..5_000, 1..300),
        ) {
            let mut rl = IntrRateLimiter::new(interval, burst);
            let mut now = 0u64;
            let mut allowed = 0u64;
            for d in deltas {
                now += d;
                if rl.allow(now) {
                    allowed += 1;
                }
            }
            let bound = u64::from(burst) + now / interval;
            prop_assert!(allowed <= bound, "{allowed} > {bound}");
        }

        /// `next_allowed` never promises a time that then refuses delivery.
        #[test]
        fn next_allowed_keeps_promises(
            interval in 10u64..1_000,
            burst in 1u32..8,
            deltas in proptest::collection::vec(0u64..2_000, 1..100),
        ) {
            let mut rl = IntrRateLimiter::new(interval, burst);
            let mut now = 0u64;
            for d in deltas {
                now += d;
                if !rl.allow(now) {
                    let t = rl.next_allowed(now);
                    prop_assert!(t >= now);
                    prop_assert!(rl.allow(t));
                    now = t;
                }
            }
        }
    }
}
