//! Analysis of rate-sweep results: MLFRR estimation and livelock detection.
//!
//! The paper frames overload behaviour around the **Maximum Loss Free
//! Receive Rate** (MLFRR): "the throughput of a well-designed system \[keeps]
//! up with the offered load up to ... the MLFRR, and at higher loads
//! throughput should not drop below this rate" (§3). These helpers classify
//! measured `(offered, delivered)` sweeps the way the paper's figures are
//! read: where does delivery stop tracking the offered load, does throughput
//! collapse afterwards, and how stable is the overload plateau?

/// One point of a rate sweep: offered input rate vs delivered output rate,
/// both in packets/second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Offered (input) packet rate.
    pub offered: f64,
    /// Delivered (output) packet rate.
    pub delivered: f64,
}

impl SweepPoint {
    /// Creates a point.
    pub fn new(offered: f64, delivered: f64) -> Self {
        SweepPoint { offered, delivered }
    }
}

/// The verdict of [`classify`] on a sweep's overload behaviour, in the
/// paper's §4.2 taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LivelockVerdict {
    /// Delivered throughput tracks offered load over the whole sweep: the
    /// system never saturated (no overload information).
    NotSaturated,
    /// Throughput reaches a peak and stays near it: the "realizable system"
    /// the paper's modifications produce.
    StablePlateau,
    /// Throughput declines significantly beyond the peak but stays above
    /// the livelock floor: the paper's unmodified kernel without screend.
    Degrading,
    /// Throughput collapses towards zero under overload: receive livelock
    /// (the unmodified kernel with screend by ~6000 pkts/s).
    Livelock,
}

/// Estimates the MLFRR from a sweep: the highest offered rate at which the
/// system still delivered at least `loss_free_frac` (e.g. 0.98) of the
/// offered load. Returns `None` when no point qualifies.
pub fn mlfrr(points: &[SweepPoint], loss_free_frac: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.offered > 0.0 && p.delivered >= loss_free_frac * p.offered)
        .map(|p| p.offered)
        .fold(None, |best, x| Some(best.map_or(x, |b: f64| b.max(x))))
}

/// Returns the peak delivered rate of a sweep.
pub fn peak_delivered(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.delivered).fold(0.0, f64::max)
}

/// Returns the delivered rate at the highest offered load.
pub fn delivered_at_max_load(points: &[SweepPoint]) -> f64 {
    points
        .iter()
        .fold(None::<SweepPoint>, |best, &p| match best {
            Some(b) if b.offered >= p.offered => Some(b),
            _ => Some(p),
        })
        .map_or(0.0, |p| p.delivered)
}

/// Classifies a sweep's overload behaviour.
///
/// - `livelock_floor_frac`: delivered-at-max below this fraction of the
///   peak counts as livelock (the paper's figures collapse to ≲5%).
/// - `plateau_frac`: delivered-at-max at or above this fraction of the peak
///   counts as a stable plateau (e.g. 0.85).
///
/// Anything between degrades. A sweep whose delivery still tracks offered
/// load at its highest point is [`LivelockVerdict::NotSaturated`].
pub fn classify(
    points: &[SweepPoint],
    livelock_floor_frac: f64,
    plateau_frac: f64,
) -> LivelockVerdict {
    let peak = peak_delivered(points);
    if peak <= 0.0 {
        return LivelockVerdict::Livelock;
    }
    let max_point = points
        .iter()
        .fold(None::<SweepPoint>, |best, &p| match best {
            Some(b) if b.offered >= p.offered => Some(b),
            _ => Some(p),
        });
    let Some(max_point) = max_point else {
        return LivelockVerdict::NotSaturated;
    };
    if max_point.delivered >= 0.95 * max_point.offered {
        return LivelockVerdict::NotSaturated;
    }
    let tail_frac = max_point.delivered / peak;
    if tail_frac < livelock_floor_frac {
        LivelockVerdict::Livelock
    } else if tail_frac >= plateau_frac {
        LivelockVerdict::StablePlateau
    } else {
        LivelockVerdict::Degrading
    }
}

/// Overload stability: the ratio of delivered throughput at maximum load to
/// the peak delivered throughput (1.0 = perfectly flat plateau, → 0 =
/// livelock). This is the scalar the ablation benches report.
pub fn overload_stability(points: &[SweepPoint]) -> f64 {
    let peak = peak_delivered(points);
    if peak <= 0.0 {
        return 0.0;
    }
    delivered_at_max_load(points) / peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sweep(pairs: &[(f64, f64)]) -> Vec<SweepPoint> {
        pairs.iter().map(|&(o, d)| SweepPoint::new(o, d)).collect()
    }

    /// An idealized "modified kernel" curve: tracks load to 5000, flat after.
    fn plateau_curve() -> Vec<SweepPoint> {
        sweep(&[
            (1000.0, 1000.0),
            (3000.0, 3000.0),
            (5000.0, 4950.0),
            (8000.0, 4900.0),
            (12000.0, 4800.0),
        ])
    }

    /// An idealized unmodified-with-screend curve: peaks at 2000, dies at 6000.
    fn livelock_curve() -> Vec<SweepPoint> {
        sweep(&[
            (1000.0, 1000.0),
            (2000.0, 2000.0),
            (3000.0, 1500.0),
            (4500.0, 800.0),
            (6000.0, 30.0),
            (12000.0, 0.0),
        ])
    }

    /// Unmodified without screend: peaks at 4700, degrades.
    fn degrading_curve() -> Vec<SweepPoint> {
        sweep(&[
            (2000.0, 2000.0),
            (4700.0, 4650.0),
            (8000.0, 3500.0),
            (12000.0, 2400.0),
        ])
    }

    #[test]
    fn mlfrr_estimates() {
        assert_eq!(mlfrr(&plateau_curve(), 0.98), Some(5000.0));
        assert_eq!(mlfrr(&livelock_curve(), 0.98), Some(2000.0));
        assert_eq!(mlfrr(&degrading_curve(), 0.98), Some(4700.0));
        assert_eq!(mlfrr(&[], 0.98), None);
        assert_eq!(
            mlfrr(&sweep(&[(1000.0, 10.0)]), 0.98),
            None,
            "nothing loss-free"
        );
    }

    #[test]
    fn classification_matches_paper_shapes() {
        assert_eq!(
            classify(&plateau_curve(), 0.05, 0.85),
            LivelockVerdict::StablePlateau
        );
        assert_eq!(
            classify(&livelock_curve(), 0.05, 0.85),
            LivelockVerdict::Livelock
        );
        assert_eq!(
            classify(&degrading_curve(), 0.05, 0.85),
            LivelockVerdict::Degrading
        );
    }

    #[test]
    fn unsaturated_sweep() {
        let s = sweep(&[(100.0, 100.0), (500.0, 498.0)]);
        assert_eq!(classify(&s, 0.05, 0.85), LivelockVerdict::NotSaturated);
    }

    #[test]
    fn all_zero_delivery_is_livelock() {
        let s = sweep(&[(1000.0, 0.0), (2000.0, 0.0)]);
        assert_eq!(classify(&s, 0.05, 0.85), LivelockVerdict::Livelock);
    }

    #[test]
    fn stability_scalar() {
        assert!(overload_stability(&plateau_curve()) > 0.95);
        assert!(overload_stability(&livelock_curve()) < 0.01);
        let d = overload_stability(&degrading_curve());
        assert!(d > 0.3 && d < 0.85, "degrading stability = {d}");
        assert_eq!(overload_stability(&[]), 0.0);
    }

    #[test]
    fn helpers() {
        assert_eq!(peak_delivered(&livelock_curve()), 2000.0);
        assert_eq!(delivered_at_max_load(&livelock_curve()), 0.0);
        assert_eq!(delivered_at_max_load(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn stability_is_bounded(
            pairs in proptest::collection::vec((0.0f64..1e5, 0.0f64..1e5), 1..50)
        ) {
            let s = sweep(&pairs);
            let v = overload_stability(&s);
            prop_assert!((0.0..=f64::INFINITY).contains(&v));
            // Delivered never exceeds peak by construction of the metric.
            if peak_delivered(&s) > 0.0 {
                prop_assert!(v <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn mlfrr_is_an_offered_rate_from_the_sweep(
            pairs in proptest::collection::vec((1.0f64..1e5, 0.0f64..1e5), 1..50)
        ) {
            let s = sweep(&pairs);
            if let Some(m) = mlfrr(&s, 0.98) {
                prop_assert!(s.iter().any(|p| p.offered == m));
            }
        }
    }
}
