//! Analysis of rate-sweep results: MLFRR estimation and livelock detection.
//!
//! The paper frames overload behaviour around the **Maximum Loss Free
//! Receive Rate** (MLFRR): "the throughput of a well-designed system \[keeps]
//! up with the offered load up to ... the MLFRR, and at higher loads
//! throughput should not drop below this rate" (§3). These helpers classify
//! measured `(offered, delivered)` sweeps the way the paper's figures are
//! read: where does delivery stop tracking the offered load, does throughput
//! collapse afterwards, and how stable is the overload plateau?

/// One point of a rate sweep: offered input rate vs delivered output rate,
/// both in packets/second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Offered (input) packet rate.
    pub offered: f64,
    /// Delivered (output) packet rate.
    pub delivered: f64,
}

impl SweepPoint {
    /// Creates a point.
    pub fn new(offered: f64, delivered: f64) -> Self {
        SweepPoint { offered, delivered }
    }
}

/// The verdict of [`classify`] on a sweep's overload behaviour, in the
/// paper's §4.2 taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LivelockVerdict {
    /// Delivered throughput tracks offered load over the whole sweep: the
    /// system never saturated (no overload information).
    NotSaturated,
    /// Throughput reaches a peak and stays near it: the "realizable system"
    /// the paper's modifications produce.
    StablePlateau,
    /// Throughput declines significantly beyond the peak but stays above
    /// the livelock floor: the paper's unmodified kernel without screend.
    Degrading,
    /// Throughput collapses towards zero under overload: receive livelock
    /// (the unmodified kernel with screend by ~6000 pkts/s).
    Livelock,
}

/// Estimates the MLFRR from a sweep: the highest offered rate at which the
/// system still delivered at least `loss_free_frac` (e.g. 0.98) of the
/// offered load. Returns `None` when no point qualifies.
pub fn mlfrr(points: &[SweepPoint], loss_free_frac: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.offered > 0.0 && p.delivered >= loss_free_frac * p.offered)
        .map(|p| p.offered)
        .fold(None, |best, x| Some(best.map_or(x, |b: f64| b.max(x))))
}

/// Returns the peak delivered rate of a sweep.
pub fn peak_delivered(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.delivered).fold(0.0, f64::max)
}

/// Returns the delivered rate at the highest offered load.
pub fn delivered_at_max_load(points: &[SweepPoint]) -> f64 {
    points
        .iter()
        .fold(None::<SweepPoint>, |best, &p| match best {
            Some(b) if b.offered >= p.offered => Some(b),
            _ => Some(p),
        })
        .map_or(0.0, |p| p.delivered)
}

/// Classifies a sweep's overload behaviour.
///
/// - `livelock_floor_frac`: delivered-at-max below this fraction of the
///   peak counts as livelock (the paper's figures collapse to ≲5%).
/// - `plateau_frac`: delivered-at-max at or above this fraction of the peak
///   counts as a stable plateau (e.g. 0.85).
///
/// Anything between degrades. A sweep whose delivery still tracks offered
/// load at its highest point is [`LivelockVerdict::NotSaturated`].
pub fn classify(
    points: &[SweepPoint],
    livelock_floor_frac: f64,
    plateau_frac: f64,
) -> LivelockVerdict {
    let peak = peak_delivered(points);
    if peak <= 0.0 {
        return LivelockVerdict::Livelock;
    }
    let max_point = points
        .iter()
        .fold(None::<SweepPoint>, |best, &p| match best {
            Some(b) if b.offered >= p.offered => Some(b),
            _ => Some(p),
        });
    let Some(max_point) = max_point else {
        return LivelockVerdict::NotSaturated;
    };
    if max_point.delivered >= 0.95 * max_point.offered {
        return LivelockVerdict::NotSaturated;
    }
    let tail_frac = max_point.delivered / peak;
    if tail_frac < livelock_floor_frac {
        LivelockVerdict::Livelock
    } else if tail_frac >= plateau_frac {
        LivelockVerdict::StablePlateau
    } else {
        LivelockVerdict::Degrading
    }
}

/// Searches for the MLFRR by multisection over an offered-rate bracket.
///
/// Each round splits the current `(lo, hi)` bracket into `k + 1` equal
/// intervals and asks `probe` to measure all `k` interior rates **in one
/// batch** — the caller may run them concurrently (e.g. with
/// `livelock_kernel::par_map`), which is why this takes a batch closure
/// instead of a single-rate one. The bracket then narrows to the highest
/// loss-free probe and the lowest lossy probe, so a round shrinks it by a
/// factor of `k + 1` instead of plain bisection's 2. With `k == 1` this
/// *is* plain bisection.
///
/// `probe` must return one [`SweepPoint`] per requested rate, in order.
/// The search assumes `lo` is loss-free (validate the bracket first) and
/// returns the highest rate observed loss-free after `rounds` rounds.
///
/// # Panics
///
/// Panics if `probe` returns a different number of points than rates
/// requested.
pub fn mlfrr_multisection<F>(
    bracket: (f64, f64),
    k: usize,
    rounds: usize,
    loss_free_frac: f64,
    mut probe: F,
) -> f64
where
    F: FnMut(&[f64]) -> Vec<SweepPoint>,
{
    let (mut lo, mut hi) = bracket;
    let k = k.max(1);
    for _ in 0..rounds {
        if hi <= lo {
            break;
        }
        let step = (hi - lo) / (k as f64 + 1.0);
        let mids: Vec<f64> = (1..=k).map(|i| lo + step * i as f64).collect();
        let pts = probe(&mids);
        assert_eq!(
            pts.len(),
            mids.len(),
            "probe must return one point per rate"
        );
        for (&rate, p) in mids.iter().zip(&pts) {
            if p.delivered >= loss_free_frac * p.offered {
                lo = lo.max(rate);
            } else {
                hi = hi.min(rate);
            }
        }
        if hi < lo {
            // A non-monotone response inverted the bracket; treat the
            // highest loss-free rate seen as converged.
            hi = lo;
        }
    }
    lo
}

/// The number of multisection rounds that match plain bisection's
/// precision: `k`-section shrinks the bracket by `k + 1` per round, so
/// `rounds(k)` rounds shrink at least as much as `bisect_rounds` halvings.
pub fn multisection_rounds(k: usize, bisect_rounds: u32) -> usize {
    let k = k.max(1);
    let shrink = (k as f64 + 1.0).ln();
    (f64::from(bisect_rounds) * std::f64::consts::LN_2 / shrink).ceil() as usize
}

/// Overload stability: the ratio of delivered throughput at maximum load to
/// the peak delivered throughput (1.0 = perfectly flat plateau, → 0 =
/// livelock). This is the scalar the ablation benches report.
pub fn overload_stability(points: &[SweepPoint]) -> f64 {
    let peak = peak_delivered(points);
    if peak <= 0.0 {
        return 0.0;
    }
    delivered_at_max_load(points) / peak
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn sweep(pairs: &[(f64, f64)]) -> Vec<SweepPoint> {
        pairs.iter().map(|&(o, d)| SweepPoint::new(o, d)).collect()
    }

    /// An idealized "modified kernel" curve: tracks load to 5000, flat after.
    fn plateau_curve() -> Vec<SweepPoint> {
        sweep(&[
            (1000.0, 1000.0),
            (3000.0, 3000.0),
            (5000.0, 4950.0),
            (8000.0, 4900.0),
            (12000.0, 4800.0),
        ])
    }

    /// An idealized unmodified-with-screend curve: peaks at 2000, dies at 6000.
    fn livelock_curve() -> Vec<SweepPoint> {
        sweep(&[
            (1000.0, 1000.0),
            (2000.0, 2000.0),
            (3000.0, 1500.0),
            (4500.0, 800.0),
            (6000.0, 30.0),
            (12000.0, 0.0),
        ])
    }

    /// Unmodified without screend: peaks at 4700, degrades.
    fn degrading_curve() -> Vec<SweepPoint> {
        sweep(&[
            (2000.0, 2000.0),
            (4700.0, 4650.0),
            (8000.0, 3500.0),
            (12000.0, 2400.0),
        ])
    }

    #[test]
    fn mlfrr_estimates() {
        assert_eq!(mlfrr(&plateau_curve(), 0.98), Some(5000.0));
        assert_eq!(mlfrr(&livelock_curve(), 0.98), Some(2000.0));
        assert_eq!(mlfrr(&degrading_curve(), 0.98), Some(4700.0));
        assert_eq!(mlfrr(&[], 0.98), None);
        assert_eq!(
            mlfrr(&sweep(&[(1000.0, 10.0)]), 0.98),
            None,
            "nothing loss-free"
        );
    }

    #[test]
    fn classification_matches_paper_shapes() {
        assert_eq!(
            classify(&plateau_curve(), 0.05, 0.85),
            LivelockVerdict::StablePlateau
        );
        assert_eq!(
            classify(&livelock_curve(), 0.05, 0.85),
            LivelockVerdict::Livelock
        );
        assert_eq!(
            classify(&degrading_curve(), 0.05, 0.85),
            LivelockVerdict::Degrading
        );
    }

    #[test]
    fn unsaturated_sweep() {
        let s = sweep(&[(100.0, 100.0), (500.0, 498.0)]);
        assert_eq!(classify(&s, 0.05, 0.85), LivelockVerdict::NotSaturated);
    }

    #[test]
    fn all_zero_delivery_is_livelock() {
        let s = sweep(&[(1000.0, 0.0), (2000.0, 0.0)]);
        assert_eq!(classify(&s, 0.05, 0.85), LivelockVerdict::Livelock);
    }

    #[test]
    fn stability_scalar() {
        assert!(overload_stability(&plateau_curve()) > 0.95);
        assert!(overload_stability(&livelock_curve()) < 0.01);
        let d = overload_stability(&degrading_curve());
        assert!(d > 0.3 && d < 0.85, "degrading stability = {d}");
        assert_eq!(overload_stability(&[]), 0.0);
    }

    /// A synthetic system that is loss-free up to `knee` and lossy above.
    fn knee_probe(knee: f64) -> impl FnMut(&[f64]) -> Vec<SweepPoint> {
        move |rates: &[f64]| {
            rates
                .iter()
                .map(|&r| {
                    let d = if r <= knee { r } else { 0.5 * r };
                    SweepPoint::new(r, d)
                })
                .collect()
        }
    }

    #[test]
    fn multisection_converges_on_the_knee() {
        let knee = 5_230.0;
        for k in [1, 2, 4, 8] {
            let rounds = multisection_rounds(k, 12);
            let m = mlfrr_multisection((100.0, 14_000.0), k, rounds, 0.98, knee_probe(knee));
            let err = (m - knee).abs();
            assert!(err < 10.0, "k={k}: MLFRR {m} vs knee {knee} (err {err})");
            assert!(m <= knee, "k={k}: never overshoots the loss-free region");
        }
    }

    #[test]
    fn multisection_with_k1_is_bisection() {
        // k = 1 probes the single midpoint each round: classic bisection.
        let mut probes = Vec::new();
        let mut inner = knee_probe(6_000.0);
        let m = mlfrr_multisection((0.0, 8_000.0), 1, 3, 0.98, |rates| {
            assert_eq!(rates.len(), 1);
            probes.push(rates[0]);
            inner(rates)
        });
        assert_eq!(probes, vec![4_000.0, 6_000.0, 7_000.0]);
        assert_eq!(m, 6_000.0);
    }

    #[test]
    fn multisection_zero_rounds_returns_lo() {
        let m = mlfrr_multisection((250.0, 9_000.0), 4, 0, 0.98, |_| unreachable!());
        assert_eq!(m, 250.0);
    }

    #[test]
    fn multisection_round_counts_match_bisection_precision() {
        assert_eq!(multisection_rounds(1, 12), 12);
        assert_eq!(multisection_rounds(3, 12), 6);
        assert!(multisection_rounds(7, 12) <= 4);
        // A round of k-section must shrink at least as much as the
        // bisection it replaces.
        for k in 1..=16usize {
            let r = multisection_rounds(k, 12) as f64;
            assert!((k as f64 + 1.0).powf(r) >= 2f64.powi(12) - 1e-6);
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(peak_delivered(&livelock_curve()), 2000.0);
        assert_eq!(delivered_at_max_load(&livelock_curve()), 0.0);
        assert_eq!(delivered_at_max_load(&[]), 0.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn stability_is_bounded(
            pairs in proptest::collection::vec((0.0f64..1e5, 0.0f64..1e5), 1..50)
        ) {
            let s = sweep(&pairs);
            let v = overload_stability(&s);
            prop_assert!((0.0..=f64::INFINITY).contains(&v));
            // Delivered never exceeds peak by construction of the metric.
            if peak_delivered(&s) > 0.0 {
                prop_assert!(v <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn mlfrr_is_an_offered_rate_from_the_sweep(
            pairs in proptest::collection::vec((1.0f64..1e5, 0.0f64..1e5), 1..50)
        ) {
            let s = sweep(&pairs);
            if let Some(m) = mlfrr(&s, 0.98) {
                prop_assert!(s.iter().any(|p| p.offered == m));
            }
        }
    }
}
