//! The standalone integration surface: drive real devices with the
//! paper's mechanisms, no simulator required.
//!
//! [`PollDriver`] is what a device (a netmap/AF_XDP userspace NIC, a DPDK
//! port, an `epoll`-readiness socket) must expose; [`PollLoop`] is the
//! ready-made combination of the round-robin [`Poller`](crate::poller),
//! the [`IntrGate`](crate::gate), queue-state
//! [`feedback`](crate::feedback) and the [`cycle
//! limiter`](crate::cycle_limit), wired together with the paper's
//! protocol:
//!
//! 1. the interrupt (or readiness callback) calls [`PollLoop::interrupt`],
//!    which masks the device and marks it pending;
//! 2. a dedicated thread calls [`PollLoop::poll_once`] in a loop, which
//!    round-robins quota-bounded `rx_poll`/`tx_poll` calls into drivers;
//! 3. when a device reports no more work, its interrupt is re-enabled
//!    immediately (per device and direction, as §6.4 prescribes);
//! 4. [`PollLoop::downstream_depth`] applies §6.6.1 watermark feedback,
//!    [`PollLoop::tick`] drives the timeout and the §7 budget period, and
//!    [`PollLoop::idle`] is the idle-thread hook.
//!
//! This is the shape Linux later standardized as NAPI; the module exists
//! so the library is adoptable outside the reproduction.

use crate::cycle_limit::{CycleLimiter, LimiterDecision};
use crate::feedback::{FeedbackSignal, WatermarkFeedback};
use crate::gate::{GateChange, InhibitReason, IntrGate};
use crate::poller::{PollDirection, Poller, Quota, SourceId};
use crate::watchdog::{ProgressWatchdog, WatchdogSignal};

/// What one `rx_poll`/`tx_poll` call accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollOutcome {
    /// Packets handled (bounded by the budget passed in).
    pub processed: u32,
    /// The device still has pending work in this direction.
    pub more: bool,
}

/// A device that can be driven by the polling loop.
pub trait PollDriver {
    /// Processes up to `budget` received packets to completion.
    fn rx_poll(&mut self, budget: u32) -> PollOutcome;

    /// Reclaims up to `budget` transmit completions / refills the ring.
    fn tx_poll(&mut self, budget: u32) -> PollOutcome;

    /// Masks or unmasks the device's receive interrupt (or readiness
    /// registration).
    fn set_rx_intr(&mut self, enabled: bool);

    /// Masks or unmasks the device's transmit interrupt.
    fn set_tx_intr(&mut self, enabled: bool);
}

/// What [`PollLoop::poll_once`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollStatus {
    /// Ran one callback.
    Worked {
        /// The device serviced.
        source: SourceId,
        /// The direction serviced.
        dir: PollDirection,
        /// Packets the callback reported.
        processed: u32,
    },
    /// Nothing serviceable: interrupts re-enabled where appropriate; the
    /// polling thread should sleep until the next [`PollLoop::interrupt`].
    Sleep,
}

/// The assembled livelock-proof polling loop.
///
/// # Examples
///
/// See `examples/userspace_poller.rs` for a complete standalone driver.
pub struct PollLoop<D: PollDriver> {
    poller: Poller,
    gate: IntrGate,
    limiter: Option<CycleLimiter>,
    feedback: Option<WatermarkFeedback>,
    watchdog: Option<ProgressWatchdog>,
    drivers: Vec<D>,
}

impl<D: PollDriver> PollLoop<D> {
    /// Creates a loop with the given per-callback quotas.
    pub fn new(rx_quota: Quota, tx_quota: Quota) -> Self {
        PollLoop {
            poller: Poller::new(rx_quota, tx_quota),
            gate: IntrGate::new(),
            limiter: None,
            feedback: None,
            watchdog: None,
            drivers: Vec::new(),
        }
    }

    /// Adds a §7 cycle limiter: at most `threshold_frac` of each
    /// `period_cycles` spent inside poll callbacks.
    pub fn with_cycle_limit(mut self, period_cycles: u64, threshold_frac: f64) -> Self {
        self.limiter = Some(CycleLimiter::new(period_cycles, threshold_frac));
        self
    }

    /// Adds §6.6.1 watermark feedback for a downstream queue of
    /// `capacity` items.
    pub fn with_feedback(mut self, capacity: usize, hi: f64, lo: f64, timeout_ticks: u32) -> Self {
        self.feedback = Some(WatermarkFeedback::new(capacity, hi, lo, timeout_ticks));
        self
    }

    /// Adds the §5.1 progress watchdog: if a whole period passes with
    /// receive work happening but no [`PollLoop::report_progress`] calls,
    /// input is inhibited for one period.
    pub fn with_progress_watchdog(mut self) -> Self {
        self.watchdog = Some(ProgressWatchdog::new());
        self
    }

    /// The consumer reports progress (delivered packets, completed
    /// requests) for the watchdog.
    pub fn report_progress(&mut self, units: u64) {
        if let Some(wd) = &mut self.watchdog {
            wd.progress(units);
        }
    }

    /// Registers a driver ("at boot time, the modified interface drivers
    /// register themselves with the polling system").
    pub fn register(&mut self, driver: D) -> SourceId {
        self.drivers.push(driver);
        self.poller.register()
    }

    /// Access to a registered driver.
    pub fn driver(&self, sid: SourceId) -> &D {
        &self.drivers[sid.0]
    }

    /// Mutable access to a registered driver.
    pub fn driver_mut(&mut self, sid: SourceId) -> &mut D {
        &mut self.drivers[sid.0]
    }

    /// Returns `true` while input is inhibited (feedback or cycle limit).
    pub fn input_inhibited(&self) -> bool {
        !self.gate.is_open()
    }

    /// A snapshot of the interrupt gate, for telemetry: the bitmask of
    /// standing inhibit reasons ([`IntrGate::bits`]) says *why* input is
    /// off, which a monitoring loop can sample into a time series.
    pub fn gate(&self) -> IntrGate {
        self.gate
    }

    /// The interrupt-context entry point: mask the device, mark it
    /// pending. The caller then wakes the polling thread.
    pub fn interrupt(&mut self, sid: SourceId, dir: PollDirection) {
        match dir {
            PollDirection::Receive => self.drivers[sid.0].set_rx_intr(false),
            PollDirection::Transmit => self.drivers[sid.0].set_tx_intr(false),
        }
        self.poller.request(sid, dir);
    }

    /// Runs one scheduling decision: picks the next (device, direction) in
    /// round-robin order and invokes its poll callback with the quota.
    /// `clock` is the fine-grained cycle counter (paper §7); it is read
    /// before and after the callback to charge the CPU budget.
    pub fn poll_once(&mut self, clock: &mut impl FnMut() -> u64) -> PollStatus {
        let Some(action) = self.poller.next_action() else {
            self.sync_intrs();
            return PollStatus::Sleep;
        };
        let budget = action.quota.limit().unwrap_or(u32::MAX);
        let started = clock();
        let outcome = match action.dir {
            PollDirection::Receive => self.drivers[action.source.0].rx_poll(budget),
            PollDirection::Transmit => self.drivers[action.source.0].tx_poll(budget),
        };
        if action.dir == PollDirection::Receive {
            if let Some(wd) = &mut self.watchdog {
                wd.input_work(u64::from(outcome.processed));
            }
        }
        self.poller
            .complete(action.source, action.dir, outcome.processed, outcome.more);
        if !outcome.more {
            self.enable_dir(action.source, action.dir);
        }
        let used = clock().saturating_sub(started);
        if let Some(lim) = &mut self.limiter {
            if lim.record(used) == LimiterDecision::Inhibit {
                self.inhibit(InhibitReason::CycleLimit);
            }
        }
        PollStatus::Worked {
            source: action.source,
            dir: action.dir,
            processed: outcome.processed,
        }
    }

    /// Reports the downstream queue's depth after an enqueue or dequeue.
    pub fn downstream_depth(&mut self, depth: usize) {
        let Some(fb) = &mut self.feedback else {
            return;
        };
        match fb.on_depth(depth) {
            Some(FeedbackSignal::Inhibit) => self.inhibit(InhibitReason::QueueFeedback),
            Some(FeedbackSignal::Resume) => self.resume(InhibitReason::QueueFeedback),
            None => {}
        }
    }

    /// Clock-tick hook: drives the feedback timeout and the budget period.
    /// `ticks_per_period` matches the limiter's period (e.g. 10 one-ms
    /// ticks for a 10 ms period); `tick_count` is the running tick number.
    pub fn tick(&mut self, tick_count: u64, ticks_per_period: u64) {
        if let Some(fb) = &mut self.feedback {
            if fb.on_tick() == Some(FeedbackSignal::Resume) {
                self.resume(InhibitReason::QueueFeedback);
            }
        }
        if ticks_per_period > 0 && tick_count % ticks_per_period == 0 {
            if let Some(lim) = &mut self.limiter {
                if lim.on_period_start() {
                    self.resume(InhibitReason::CycleLimit);
                }
            }
            if let Some(wd) = &mut self.watchdog {
                match wd.on_period() {
                    Some(WatchdogSignal::Inhibit) => self.inhibit(InhibitReason::Watchdog),
                    Some(WatchdogSignal::Resume) => self.resume(InhibitReason::Watchdog),
                    None => {}
                }
            }
        }
    }

    /// Idle-thread hook: clears the budget and re-enables everything that
    /// may be re-enabled.
    pub fn idle(&mut self) {
        if let Some(lim) = &mut self.limiter {
            if lim.on_idle() {
                self.resume(InhibitReason::CycleLimit);
            }
        }
        self.sync_intrs();
    }

    /// Returns `true` while any work is pending (the wake condition).
    pub fn any_serviceable(&self) -> bool {
        self.poller.any_serviceable()
    }

    fn inhibit(&mut self, reason: InhibitReason) {
        if self.gate.inhibit(reason) == GateChange::Closed {
            self.poller.set_rx_inhibited(true);
            for d in &mut self.drivers {
                d.set_rx_intr(false);
            }
        }
    }

    fn resume(&mut self, reason: InhibitReason) {
        if self.gate.allow(reason) == GateChange::Opened {
            self.poller.set_rx_inhibited(false);
            self.sync_intrs();
        }
    }

    fn enable_dir(&mut self, sid: SourceId, dir: PollDirection) {
        match dir {
            PollDirection::Receive => {
                if self.gate.is_open() {
                    self.drivers[sid.0].set_rx_intr(true);
                }
            }
            PollDirection::Transmit => self.drivers[sid.0].set_tx_intr(true),
        }
    }

    fn sync_intrs(&mut self) {
        for i in 0..self.drivers.len() {
            let sid = SourceId(i);
            let want_rx =
                self.gate.is_open() && !self.poller.is_pending(sid, PollDirection::Receive);
            self.drivers[i].set_rx_intr(want_rx);
            let want_tx = !self.poller.is_pending(sid, PollDirection::Transmit);
            self.drivers[i].set_tx_intr(want_tx);
        }
    }
}

#[cfg(test)]
mod tests_support {
    use super::*;

    /// A scripted in-memory device shared by the driver test modules.
    #[derive(Debug, Default)]
    pub struct MockDriver {
        pub rx_backlog: u32,
        pub tx_backlog: u32,
        pub rx_intr: bool,
        pub tx_intr: bool,
        pub rx_polled: u32,
    }

    impl PollDriver for MockDriver {
        fn rx_poll(&mut self, budget: u32) -> PollOutcome {
            let n = self.rx_backlog.min(budget);
            self.rx_backlog -= n;
            self.rx_polled += n;
            PollOutcome {
                processed: n,
                more: self.rx_backlog > 0,
            }
        }

        fn tx_poll(&mut self, budget: u32) -> PollOutcome {
            let n = self.tx_backlog.min(budget);
            self.tx_backlog -= n;
            PollOutcome {
                processed: n,
                more: self.tx_backlog > 0,
            }
        }

        fn set_rx_intr(&mut self, enabled: bool) {
            self.rx_intr = enabled;
        }

        fn set_tx_intr(&mut self, enabled: bool) {
            self.tx_intr = enabled;
        }
    }

    pub fn fake_clock() -> impl FnMut() -> u64 {
        let mut t = 0u64;
        move || {
            t += 100;
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{fake_clock, MockDriver};
    use super::*;

    #[test]
    fn interrupt_masks_and_poll_drains() {
        let mut pl = PollLoop::new(Quota::Limited(10), Quota::Limited(10));
        let sid = pl.register(MockDriver {
            rx_backlog: 25,
            rx_intr: true,
            tx_intr: true,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        assert!(!pl.driver(sid).rx_intr, "masked by the stub");

        let mut clock = fake_clock();
        let mut total = 0;
        while let PollStatus::Worked { processed, .. } = pl.poll_once(&mut clock) {
            total += processed;
        }
        assert_eq!(total, 25);
        assert!(pl.driver(sid).rx_intr, "re-enabled once drained");
        assert_eq!(pl.driver(sid).rx_polled, 25);
    }

    #[test]
    fn quota_bounds_each_callback() {
        let mut pl = PollLoop::new(Quota::Limited(4), Quota::Limited(4));
        let sid = pl.register(MockDriver {
            rx_backlog: 10,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        let mut clock = fake_clock();
        match pl.poll_once(&mut clock) {
            PollStatus::Worked { processed, .. } => assert_eq!(processed, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!pl.driver(sid).rx_intr, "still pending: stays masked");
    }

    #[test]
    fn round_robin_across_devices() {
        let mut pl = PollLoop::new(Quota::Limited(2), Quota::Limited(2));
        let a = pl.register(MockDriver {
            rx_backlog: 6,
            ..MockDriver::default()
        });
        let b = pl.register(MockDriver {
            rx_backlog: 6,
            ..MockDriver::default()
        });
        pl.interrupt(a, PollDirection::Receive);
        pl.interrupt(b, PollDirection::Receive);
        let mut clock = fake_clock();
        let mut order = Vec::new();
        while let PollStatus::Worked { source, .. } = pl.poll_once(&mut clock) {
            order.push(source);
        }
        assert_eq!(order, vec![a, b, a, b, a, b]);
    }

    #[test]
    fn feedback_inhibits_rx_but_not_tx() {
        let mut pl =
            PollLoop::new(Quota::Limited(4), Quota::Limited(4)).with_feedback(32, 0.75, 0.25, 1);
        let sid = pl.register(MockDriver {
            rx_backlog: 100,
            tx_backlog: 3,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        pl.interrupt(sid, PollDirection::Transmit);
        pl.downstream_depth(24); // High-water mark: inhibit.
        assert!(pl.input_inhibited());

        let mut clock = fake_clock();
        // Transmit work still proceeds.
        match pl.poll_once(&mut clock) {
            PollStatus::Worked { dir, .. } => assert_eq!(dir, PollDirection::Transmit),
            other => panic!("unexpected {other:?}"),
        }
        // Then nothing: rx is inhibited.
        assert_eq!(pl.poll_once(&mut clock), PollStatus::Sleep);
        assert!(!pl.driver(sid).rx_intr, "rx interrupts stay masked");

        // Drain the downstream queue to the low-water mark: rx resumes.
        pl.downstream_depth(8);
        assert!(!pl.input_inhibited());
        match pl.poll_once(&mut clock) {
            PollStatus::Worked { dir, .. } => assert_eq!(dir, PollDirection::Receive),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gate_snapshot_reports_reasons() {
        let mut pl =
            PollLoop::new(Quota::Limited(4), Quota::Limited(4)).with_feedback(32, 0.75, 0.25, 1);
        let _sid = pl.register(MockDriver::default());
        assert_eq!(pl.gate().bits(), 0);
        pl.downstream_depth(24);
        assert!(pl.gate().holds(InhibitReason::QueueFeedback));
        assert_eq!(
            pl.gate().bits(),
            1 << InhibitReason::QueueFeedback.bit_index()
        );
        pl.downstream_depth(4);
        assert_eq!(pl.gate().bits(), 0);
    }

    #[test]
    fn feedback_timeout_resumes_on_tick() {
        let mut pl =
            PollLoop::new(Quota::Limited(4), Quota::Limited(4)).with_feedback(32, 0.75, 0.25, 1);
        let sid = pl.register(MockDriver {
            rx_backlog: 10,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        pl.downstream_depth(30);
        assert!(pl.input_inhibited());
        pl.tick(1, 10);
        assert!(!pl.input_inhibited(), "one-tick timeout");
    }

    #[test]
    fn cycle_limit_inhibits_and_period_resumes() {
        // Budget: 25% of a 10_000-cycle period = 2_500 cycles; each fake
        // callback costs 100.
        let mut pl =
            PollLoop::new(Quota::Limited(1), Quota::Limited(1)).with_cycle_limit(10_000, 0.25);
        let sid = pl.register(MockDriver {
            rx_backlog: 1_000,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        let mut clock = fake_clock();
        let mut worked = 0;
        for _ in 0..100 {
            match pl.poll_once(&mut clock) {
                PollStatus::Worked { .. } => worked += 1,
                PollStatus::Sleep => break,
            }
        }
        assert!(pl.input_inhibited(), "budget exhausted");
        assert!(worked <= 26, "stopped near the budget, worked {worked}");
        // The next period restores input.
        pl.tick(10, 10);
        assert!(!pl.input_inhibited());
        assert!(matches!(
            pl.poll_once(&mut clock),
            PollStatus::Worked { .. }
        ));
    }

    #[test]
    fn idle_clears_budget_and_reenables() {
        let mut pl =
            PollLoop::new(Quota::Limited(1), Quota::Limited(1)).with_cycle_limit(1_000, 0.1);
        let sid = pl.register(MockDriver {
            rx_backlog: 50,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        let mut clock = fake_clock();
        while matches!(pl.poll_once(&mut clock), PollStatus::Worked { .. }) {}
        assert!(pl.input_inhibited());
        pl.idle();
        assert!(!pl.input_inhibited());
        assert!(pl.any_serviceable(), "backlog still there");
    }
}

#[cfg(test)]
mod watchdog_tests {
    use super::tests_support::{fake_clock, MockDriver};
    use super::*;

    #[test]
    fn watchdog_pauses_input_when_consumer_starves() {
        let mut pl = PollLoop::new(Quota::Limited(5), Quota::Limited(5)).with_progress_watchdog();
        let sid = pl.register(MockDriver {
            rx_backlog: 1_000,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        let mut clock = fake_clock();
        // A period of polling with zero consumer progress.
        for _ in 0..5 {
            let _ = pl.poll_once(&mut clock);
        }
        pl.tick(10, 10);
        assert!(pl.input_inhibited(), "starvation detected");
        assert_eq!(pl.poll_once(&mut clock), PollStatus::Sleep);
        // The consumer gets its period; the next boundary resumes input.
        pl.tick(20, 10);
        assert!(!pl.input_inhibited());
        assert!(matches!(
            pl.poll_once(&mut clock),
            PollStatus::Worked { .. }
        ));
    }

    #[test]
    fn watchdog_stays_quiet_when_progress_flows() {
        let mut pl = PollLoop::new(Quota::Limited(5), Quota::Limited(5)).with_progress_watchdog();
        let sid = pl.register(MockDriver {
            rx_backlog: 1_000,
            ..MockDriver::default()
        });
        pl.interrupt(sid, PollDirection::Receive);
        let mut clock = fake_clock();
        for round in 1..=50u64 {
            let _ = pl.poll_once(&mut clock);
            pl.report_progress(2);
            if round % 10 == 0 {
                pl.tick(round, 10);
            }
        }
        assert!(!pl.input_inhibited());
    }
}
