//! The progress watchdog: §5.1's third livelock trigger.
//!
//! "The system may infer impending livelock because it is discarding
//! packets due to queue overflow, or **because high-layer protocol
//! processing or user code are making no progress**, or by measuring the
//! fraction of CPU cycles used for packet processing."
//!
//! The watermark feedback covers the first trigger and the cycle limiter
//! the third; this module is the second: a consumer reports progress
//! (packets delivered to the application, RPCs completed), and if a whole
//! observation period passes with input work happening but zero consumer
//! progress, input is inhibited for the next period to let the consumer
//! run. Unlike the cycle limiter it needs no clock register — only a
//! periodic tick and two counters — which is why the paper lists it as an
//! option for machines "without a fine-grained clock".

/// Periodic verdicts from the watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogSignal {
    /// The consumer starved while input ran: inhibit input.
    Inhibit,
    /// The inhibition period is over: resume input.
    Resume,
}

/// Detects consumer starvation by comparing progress across periods.
///
/// # Examples
///
/// ```
/// use livelock_core::watchdog::{ProgressWatchdog, WatchdogSignal};
///
/// let mut wd = ProgressWatchdog::new();
/// wd.input_work(100);          // The kernel handled packets...
/// assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit)); // ...consumer got nothing.
/// assert_eq!(wd.on_period(), Some(WatchdogSignal::Resume));  // One period of relief.
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ProgressWatchdog {
    input_in_period: u64,
    progress_in_period: u64,
    inhibited: bool,
    inhibit_edges: u64,
}

impl ProgressWatchdog {
    /// Creates a watchdog in the open state.
    pub fn new() -> Self {
        ProgressWatchdog::default()
    }

    /// Records input-side work (packets taken from devices this period).
    pub fn input_work(&mut self, packets: u64) {
        self.input_in_period = self.input_in_period.saturating_add(packets);
    }

    /// Records consumer progress (packets delivered / requests completed).
    pub fn progress(&mut self, units: u64) {
        self.progress_in_period = self.progress_in_period.saturating_add(units);
    }

    /// Period boundary: renders a verdict and resets the period counters.
    ///
    /// Starvation = input happened, progress did not. While inhibited, the
    /// next period boundary always resumes (the consumer had a whole
    /// period with input off; if it still made no progress the system is
    /// not input-bound and inhibiting more would be wrong).
    pub fn on_period(&mut self) -> Option<WatchdogSignal> {
        let starved = self.input_in_period > 0 && self.progress_in_period == 0;
        self.input_in_period = 0;
        self.progress_in_period = 0;
        if self.inhibited {
            self.inhibited = false;
            Some(WatchdogSignal::Resume)
        } else if starved {
            self.inhibited = true;
            self.inhibit_edges += 1;
            Some(WatchdogSignal::Inhibit)
        } else {
            None
        }
    }

    /// Returns `true` while the watchdog holds input off.
    pub fn is_inhibited(&self) -> bool {
        self.inhibited
    }

    /// How many starvation events were detected.
    pub fn inhibit_edges(&self) -> u64 {
        self.inhibit_edges
    }
}

/// Last-resort un-wedger for the interrupt gate itself.
///
/// Every [`gate::InhibitReason`](crate::gate::InhibitReason) has an owner
/// that is supposed to clear it: the feedback controller, the cycle
/// limiter, the polling thread. Fault injection (and real life) can kill
/// an owner *after* it asserted its reason — a crashed consumer whose
/// feedback never sees another dequeue, a poller wedged by a lost
/// interrupt — leaving the gate closed forever. This watchdog watches the
/// gate's reason bitmask across clock ticks; when the same nonzero mask
/// persists unchanged for a full bound, it reports the stuck reasons so
/// the kernel can force-clear them. A healthy system never trips it: any
/// live owner changes the mask (or opens the gate) well inside the bound.
///
/// Reasons whose bit is outside `clearable` (typically `PollingActive`,
/// which the polling thread clears synchronously) are never reported.
#[derive(Clone, Copy, Debug)]
pub struct GateWatchdog {
    bound_ticks: u32,
    clearable: u8,
    last_bits: u8,
    ticks_same: u32,
    unwedges: u64,
}

impl GateWatchdog {
    /// Creates a watchdog that trips after `bound_ticks` consecutive ticks
    /// of an unchanged nonzero reason mask. Only bits in `clearable` are
    /// ever reported stuck.
    ///
    /// # Panics
    ///
    /// Panics if `bound_ticks` is zero.
    pub fn new(bound_ticks: u32, clearable: u8) -> Self {
        assert!(bound_ticks > 0, "bound must be at least one tick");
        GateWatchdog {
            bound_ticks,
            clearable,
            last_bits: 0,
            ticks_same: 0,
            unwedges: 0,
        }
    }

    /// Clock tick: observes the gate's current reason bitmask. Returns the
    /// stuck clearable reasons when the same nonzero mask has now persisted
    /// for the full bound; the caller must force-clear them.
    pub fn on_tick(&mut self, bits: u8) -> Option<u8> {
        if bits == 0 || bits != self.last_bits {
            self.last_bits = bits;
            self.ticks_same = 0;
            return None;
        }
        self.ticks_same += 1;
        if self.ticks_same >= self.bound_ticks {
            self.ticks_same = 0;
            let stuck = bits & self.clearable;
            if stuck != 0 {
                self.unwedges += 1;
                return Some(stuck);
            }
        }
        None
    }

    /// How many times the watchdog had to force-clear stuck reasons.
    pub fn unwedges(&self) -> u64 {
        self.unwedges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn quiet_periods_stay_open() {
        let mut wd = ProgressWatchdog::new();
        for _ in 0..10 {
            assert_eq!(wd.on_period(), None);
        }
        assert!(!wd.is_inhibited());
    }

    #[test]
    fn healthy_flow_stays_open() {
        let mut wd = ProgressWatchdog::new();
        for _ in 0..10 {
            wd.input_work(50);
            wd.progress(50);
            assert_eq!(wd.on_period(), None);
        }
        assert_eq!(wd.inhibit_edges(), 0);
    }

    #[test]
    fn starvation_inhibits_then_resumes() {
        let mut wd = ProgressWatchdog::new();
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit));
        assert!(wd.is_inhibited());
        // Even continued starvation only costs one inhibited period at a
        // time — resume, then re-evaluate.
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Resume));
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit));
        assert_eq!(wd.inhibit_edges(), 2);
    }

    #[test]
    fn progress_without_input_is_fine() {
        let mut wd = ProgressWatchdog::new();
        wd.progress(10);
        assert_eq!(wd.on_period(), None);
    }

    #[test]
    fn recovery_clears_the_cycle() {
        let mut wd = ProgressWatchdog::new();
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit));
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Resume));
        // Consumer caught up: stays open.
        wd.input_work(100);
        wd.progress(40);
        assert_eq!(wd.on_period(), None);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// Signals alternate (never two Inhibits or two Resumes in a row)
        /// and the state matches the last signal.
        #[test]
        fn signals_alternate(
            periods in proptest::collection::vec((0u64..100, 0u64..100), 1..200)
        ) {
            let mut wd = ProgressWatchdog::new();
            let mut last: Option<WatchdogSignal> = None;
            for (input, progress) in periods {
                wd.input_work(input);
                wd.progress(progress);
                if let Some(sig) = wd.on_period() {
                    match (last, sig) {
                        (Some(WatchdogSignal::Inhibit), WatchdogSignal::Inhibit) => {
                            prop_assert!(false, "double inhibit");
                        }
                        (Some(WatchdogSignal::Resume), WatchdogSignal::Resume) => {
                            // Legal only if an Inhibit happened in between,
                            // which alternation already rules out.
                            prop_assert!(false, "double resume");
                        }
                        (None, WatchdogSignal::Resume) => {
                            prop_assert!(false, "resume before inhibit");
                        }
                        _ => {}
                    }
                    last = Some(sig);
                }
                prop_assert_eq!(
                    wd.is_inhibited(),
                    matches!(last, Some(WatchdogSignal::Inhibit))
                );
            }
        }

        /// The watchdog never inhibits for more than one consecutive
        /// period: over any trace, inhibited periods never run
        /// back-to-back.
        #[test]
        fn inhibition_is_bounded(inputs in proptest::collection::vec(0u64..100, 1..100)) {
            let mut wd = ProgressWatchdog::new();
            let mut prev_inhibited = false;
            for input in inputs {
                wd.input_work(input);
                let _ = wd.on_period();
                let now = wd.is_inhibited();
                prop_assert!(!(prev_inhibited && now), "two inhibited periods in a row");
                prev_inhibited = now;
            }
        }
    }
}

#[cfg(test)]
mod gate_watchdog_tests {
    use super::*;
    use crate::gate::{InhibitReason, IntrGate};
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    /// Everything but `PollingActive` (bit 0), as the kernel configures it.
    const CLEARABLE: u8 = !(1u8 << 0);

    #[test]
    fn open_gate_never_trips() {
        let mut wd = GateWatchdog::new(3, CLEARABLE);
        for _ in 0..100 {
            assert_eq!(wd.on_tick(0), None);
        }
        assert_eq!(wd.unwedges(), 0);
    }

    #[test]
    fn stuck_mask_trips_after_the_bound() {
        let mut wd = GateWatchdog::new(3, CLEARABLE);
        let bits = 1 << InhibitReason::QueueFeedback.bit_index();
        assert_eq!(wd.on_tick(bits), None, "tick 0 establishes the baseline");
        assert_eq!(wd.on_tick(bits), None);
        assert_eq!(wd.on_tick(bits), None);
        assert_eq!(wd.on_tick(bits), Some(bits), "third unchanged tick trips");
        assert_eq!(wd.unwedges(), 1);
    }

    #[test]
    fn changing_mask_resets_the_clock() {
        let mut wd = GateWatchdog::new(2, CLEARABLE);
        let a = 1 << InhibitReason::QueueFeedback.bit_index();
        let b = a | (1 << InhibitReason::CycleLimit.bit_index());
        assert_eq!(wd.on_tick(a), None);
        assert_eq!(wd.on_tick(a), None);
        assert_eq!(wd.on_tick(b), None, "mask changed: owner is alive");
        assert_eq!(wd.on_tick(b), None);
        assert_eq!(wd.on_tick(b), Some(b));
    }

    #[test]
    fn non_clearable_reasons_are_never_reported() {
        let mut wd = GateWatchdog::new(1, CLEARABLE);
        let polling = 1 << InhibitReason::PollingActive.bit_index();
        assert_eq!(wd.on_tick(polling), None);
        for _ in 0..10 {
            assert_eq!(wd.on_tick(polling), None, "polling bit is not ours");
        }
        let mixed = polling | (1 << InhibitReason::Admin.bit_index());
        assert_eq!(wd.on_tick(mixed), None);
        assert_eq!(
            wd.on_tick(mixed),
            Some(1 << InhibitReason::Admin.bit_index()),
            "only the clearable part is reported"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be at least one tick")]
    fn zero_bound_is_rejected() {
        let _ = GateWatchdog::new(0, CLEARABLE);
    }

    /// Applies a stuck mask to a gate the way the kernel does: force-clear
    /// every reported reason.
    #[cfg(feature = "proptest")]
    fn force_clear(g: &mut IntrGate, stuck: u8) {
        for r in InhibitReason::ALL {
            if stuck & (1 << r.bit_index()) != 0 {
                g.allow(r);
            }
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The tentpole recovery guarantee: from ANY reachable inhibit set
        /// whose owners then die (no further inhibit/allow calls), a gate
        /// supervised by the watchdog re-opens within `bound + 1` ticks.
        #[test]
        fn any_reachable_inhibit_set_unwedges_within_the_bound(
            ops in proptest::collection::vec((1usize..6, any::<bool>()), 0..100),
            bound in 1u32..8,
        ) {
            let mut g = IntrGate::new();
            for (idx, assert_op) in ops {
                let r = InhibitReason::ALL[idx];
                if assert_op { g.inhibit(r); } else { g.allow(r); }
            }
            let mut wd = GateWatchdog::new(bound, CLEARABLE);
            let mut ticks = 0u32;
            while !g.is_open() {
                ticks += 1;
                prop_assert!(
                    ticks <= bound + 1,
                    "gate still closed after {} ticks (bound {})", ticks, bound
                );
                if let Some(stuck) = wd.on_tick(g.bits()) {
                    force_clear(&mut g, stuck);
                }
            }
        }

        /// Under arbitrary interleavings of owner activity and clock
        /// ticks, any window of `bound + 1` consecutive quiet ticks ends
        /// with the gate open — the watchdog needs no cooperation from
        /// the (possibly dead) owners.
        #[test]
        fn quiet_windows_always_end_open(
            script in proptest::collection::vec((0usize..8, any::<bool>()), 0..200),
            bound in 1u32..6,
        ) {
            // Steps with idx >= 5 are clock ticks (~3 in 8); the rest are
            // owner inhibit/allow calls on reasons 1..=5.
            let mut g = IntrGate::new();
            let mut wd = GateWatchdog::new(bound, CLEARABLE);
            let mut quiet = 0u32;
            for (idx, assert_op) in script {
                if idx >= 5 {
                    quiet += 1;
                    if let Some(stuck) = wd.on_tick(g.bits()) {
                        force_clear(&mut g, stuck);
                    }
                    if quiet > bound {
                        prop_assert!(
                            g.is_open(),
                            "{} quiet ticks but gate bits {:#04x}", quiet, g.bits()
                        );
                    }
                } else {
                    quiet = 0;
                    let r = InhibitReason::ALL[idx + 1];
                    if assert_op { g.inhibit(r); } else { g.allow(r); }
                }
            }
        }

        /// The feedback controller's own bound, composed the same way:
        /// however the depth wanders, once depth reports stop (stuck
        /// consumer) the controller is never inhibited for more than
        /// `timeout` consecutive ticks.
        #[test]
        fn feedback_inhibition_outlives_no_timeout(
            depths in proptest::collection::vec(0usize..=32, 0..100),
            timeout in 1u32..5,
        ) {
            use crate::feedback::WatermarkFeedback;
            let mut fb = WatermarkFeedback::new(32, 0.75, 0.25, timeout);
            for d in depths {
                fb.on_depth(d);
            }
            let mut ticks = 0u32;
            while fb.is_inhibited() {
                ticks += 1;
                prop_assert!(ticks <= timeout, "inhibited past the timeout");
                fb.on_tick();
            }
        }
    }
}
