//! The progress watchdog: §5.1's third livelock trigger.
//!
//! "The system may infer impending livelock because it is discarding
//! packets due to queue overflow, or **because high-layer protocol
//! processing or user code are making no progress**, or by measuring the
//! fraction of CPU cycles used for packet processing."
//!
//! The watermark feedback covers the first trigger and the cycle limiter
//! the third; this module is the second: a consumer reports progress
//! (packets delivered to the application, RPCs completed), and if a whole
//! observation period passes with input work happening but zero consumer
//! progress, input is inhibited for the next period to let the consumer
//! run. Unlike the cycle limiter it needs no clock register — only a
//! periodic tick and two counters — which is why the paper lists it as an
//! option for machines "without a fine-grained clock".

/// Periodic verdicts from the watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogSignal {
    /// The consumer starved while input ran: inhibit input.
    Inhibit,
    /// The inhibition period is over: resume input.
    Resume,
}

/// Detects consumer starvation by comparing progress across periods.
///
/// # Examples
///
/// ```
/// use livelock_core::watchdog::{ProgressWatchdog, WatchdogSignal};
///
/// let mut wd = ProgressWatchdog::new();
/// wd.input_work(100);          // The kernel handled packets...
/// assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit)); // ...consumer got nothing.
/// assert_eq!(wd.on_period(), Some(WatchdogSignal::Resume));  // One period of relief.
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ProgressWatchdog {
    input_in_period: u64,
    progress_in_period: u64,
    inhibited: bool,
    inhibit_edges: u64,
}

impl ProgressWatchdog {
    /// Creates a watchdog in the open state.
    pub fn new() -> Self {
        ProgressWatchdog::default()
    }

    /// Records input-side work (packets taken from devices this period).
    pub fn input_work(&mut self, packets: u64) {
        self.input_in_period = self.input_in_period.saturating_add(packets);
    }

    /// Records consumer progress (packets delivered / requests completed).
    pub fn progress(&mut self, units: u64) {
        self.progress_in_period = self.progress_in_period.saturating_add(units);
    }

    /// Period boundary: renders a verdict and resets the period counters.
    ///
    /// Starvation = input happened, progress did not. While inhibited, the
    /// next period boundary always resumes (the consumer had a whole
    /// period with input off; if it still made no progress the system is
    /// not input-bound and inhibiting more would be wrong).
    pub fn on_period(&mut self) -> Option<WatchdogSignal> {
        let starved = self.input_in_period > 0 && self.progress_in_period == 0;
        self.input_in_period = 0;
        self.progress_in_period = 0;
        if self.inhibited {
            self.inhibited = false;
            Some(WatchdogSignal::Resume)
        } else if starved {
            self.inhibited = true;
            self.inhibit_edges += 1;
            Some(WatchdogSignal::Inhibit)
        } else {
            None
        }
    }

    /// Returns `true` while the watchdog holds input off.
    pub fn is_inhibited(&self) -> bool {
        self.inhibited
    }

    /// How many starvation events were detected.
    pub fn inhibit_edges(&self) -> u64 {
        self.inhibit_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn quiet_periods_stay_open() {
        let mut wd = ProgressWatchdog::new();
        for _ in 0..10 {
            assert_eq!(wd.on_period(), None);
        }
        assert!(!wd.is_inhibited());
    }

    #[test]
    fn healthy_flow_stays_open() {
        let mut wd = ProgressWatchdog::new();
        for _ in 0..10 {
            wd.input_work(50);
            wd.progress(50);
            assert_eq!(wd.on_period(), None);
        }
        assert_eq!(wd.inhibit_edges(), 0);
    }

    #[test]
    fn starvation_inhibits_then_resumes() {
        let mut wd = ProgressWatchdog::new();
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit));
        assert!(wd.is_inhibited());
        // Even continued starvation only costs one inhibited period at a
        // time — resume, then re-evaluate.
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Resume));
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit));
        assert_eq!(wd.inhibit_edges(), 2);
    }

    #[test]
    fn progress_without_input_is_fine() {
        let mut wd = ProgressWatchdog::new();
        wd.progress(10);
        assert_eq!(wd.on_period(), None);
    }

    #[test]
    fn recovery_clears_the_cycle() {
        let mut wd = ProgressWatchdog::new();
        wd.input_work(100);
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Inhibit));
        assert_eq!(wd.on_period(), Some(WatchdogSignal::Resume));
        // Consumer caught up: stays open.
        wd.input_work(100);
        wd.progress(40);
        assert_eq!(wd.on_period(), None);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// Signals alternate (never two Inhibits or two Resumes in a row)
        /// and the state matches the last signal.
        #[test]
        fn signals_alternate(
            periods in proptest::collection::vec((0u64..100, 0u64..100), 1..200)
        ) {
            let mut wd = ProgressWatchdog::new();
            let mut last: Option<WatchdogSignal> = None;
            for (input, progress) in periods {
                wd.input_work(input);
                wd.progress(progress);
                if let Some(sig) = wd.on_period() {
                    match (last, sig) {
                        (Some(WatchdogSignal::Inhibit), WatchdogSignal::Inhibit) => {
                            prop_assert!(false, "double inhibit");
                        }
                        (Some(WatchdogSignal::Resume), WatchdogSignal::Resume) => {
                            // Legal only if an Inhibit happened in between,
                            // which alternation already rules out.
                            prop_assert!(false, "double resume");
                        }
                        (None, WatchdogSignal::Resume) => {
                            prop_assert!(false, "resume before inhibit");
                        }
                        _ => {}
                    }
                    last = Some(sig);
                }
                prop_assert_eq!(
                    wd.is_inhibited(),
                    matches!(last, Some(WatchdogSignal::Inhibit))
                );
            }
        }

        /// The watchdog never inhibits for more than one consecutive
        /// period: over any trace, inhibited periods never run
        /// back-to-back.
        #[test]
        fn inhibition_is_bounded(inputs in proptest::collection::vec(0u64..100, 1..100)) {
            let mut wd = ProgressWatchdog::new();
            let mut prev_inhibited = false;
            for input in inputs {
                wd.input_work(input);
                let _ = wd.on_period();
                let now = wd.is_inhibited();
                prop_assert!(!(prev_inhibited && now), "two inhibited periods in a row");
                prev_inhibited = now;
            }
        }
    }
}
