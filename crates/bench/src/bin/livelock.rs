//! `livelock` — the command-line face of the reproduction.
//!
//! ```text
//! livelock configs                      list kernel configurations
//! livelock trial  --config polled --rate 8000 [--packets N] [--seed S] [--latency]
//!                 [--ncpus N] [--steal] [--timeline out.csv] [--chrome-trace out.json]
//!                 [--events out.jsonl] [--flamegraph out.folded]
//! livelock sweep  --config unmodified,polled [--rates 1000,2000,...] [--jobs N] [--latency]
//!                 [--ncpus N] [--steal]
//! livelock mlfrr  --config polled [--loss-free 0.98] [--jobs N]
//! livelock chaos  [--seed S] [--rate PPS] [--packets N] [--intensity F] [--priority]
//! livelock observe [--rate PPS] [--packets N] [--seed S]
//! ```
//!
//! `trial` runs one paper-style measurement and prints the full breakdown,
//! including the conserved CPU-cycle ledger's per-class shares
//! (`--latency` adds per-stage latency quantiles and a drop-reason table;
//! `--timeline out.csv` enables the clock-tick telemetry sampler and
//! writes its time-series as CSV; `--chrome-trace out.json` records the
//! machine's scheduling trace and writes Chrome-trace / Perfetto JSON for
//! `chrome://tracing` or <https://ui.perfetto.dev>; `--events out.jsonl`
//! enables the observability layer and streams the online livelock
//! detector's typed events as JSONL; `--flamegraph out.folded` writes the
//! machine's per-(cpu, class, stage) cycle fold as collapsed-stack text
//! for `inferno-flamegraph` / `flamegraph.pl`);
//! `sweep` prints the (input rate, output rate) series a figure would
//! plot (`--latency` adds a p99-latency column per config); `mlfrr`
//! searches for the Maximum Loss Free Receive Rate by
//! multisection (with `--jobs N`, each round probes N rates concurrently).
//! `--jobs` defaults to the host's available parallelism; results are
//! identical for every job count.
//!
//! `chaos` runs a deterministic seeded fault storm (lost and spurious
//! interrupts, packet corruption, overrun bursts, link flaps, screend
//! stalls and crashes) against the polled-with-feedback kernel and the
//! unmodified kernel, then asserts the graceful-degradation invariants.
//! Exit status: 0 when every invariant holds, 2 on bad arguments,
//! 3 when the polled kernel stopped delivering (fault-induced
//! livelock), 4 when its interrupt gate ended the run inhibited,
//! 5 when the screend queue failed to drain after a crash/restart,
//! 6 when the conservation ledger left packets unaccounted,
//! 7 when a scheduled fault never fired, 8 when the unmodified kernel
//! failed to livelock under the same storm (the contrast half of the
//! demonstration; expects the default overload `--rate`).
//!
//! `chaos --priority` runs the same storm with the P-1 flow classifier
//! and the observability layer on both kernels (classes are *observed*
//! on the unmodified kernel but only *enforced* — priority rings, shed
//! gate — on the polled one) and additionally asserts the
//! priority-isolation contrast. Exit status 9 when the classified
//! polled kernel produced a priority-inversion event (Control blew its
//! p99 SLO while Bulk was still served), 10 when the unmodified kernel
//! produced none under the identical storm.
//!
//! `observe` runs the online livelock detector against both kernels at
//! one overload rate (an eight-flow flood through screend, observability
//! enabled) and asserts the detection claims. Exit status: 0 when every
//! claim holds, 2 on bad arguments, 3 when the unmodified kernel
//! produced no livelock-onset event (expects the default overload
//! `--rate`, past the screend MLFRR), 4 when the polled kernel with
//! feedback produced one, 5 when the per-flow starvation watch is broken
//! (the livelocked kernel must starve at least half the tracked flows
//! and strictly more than the polled kernel), 6 when a per-flow ledger
//! failed to conserve (arrived ≠ delivered + dropped after the drain,
//! or arrivals leaked to overflow/unattributed).

use livelock_core::analysis::{
    classify, mlfrr_multisection, multisection_rounds, overload_stability, SweepPoint,
};
use lint::registry::codes;
use livelock_core::poller::Quota;
use livelock_kernel::config::{FeedbackConfig, KernelConfig, LocalDeliveryConfig};
use livelock_kernel::experiment::{
    paper_rates, run_chaos_trial, run_trial, run_trial_traced, TrialResult, TrialSpec,
};
use livelock_machine::fault::FaultPlan;
use livelock_kernel::experiment::sweep;
use livelock_kernel::par::{default_jobs, par_map, Parallelism};
use livelock_kernel::stats::{DropReason, Stage};
use livelock_kernel::telemetry::{ObsEventKind, ObserveConfig, TelemetryConfig};
use livelock_machine::CpuClass;

fn configs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("unmodified", "4.2BSD interrupt-driven path (Figure 6-1)"),
        ("screend", "unmodified + user-mode screend filter"),
        (
            "no-polling",
            "modified kernel acting unmodified (Figure 6-3)",
        ),
        ("polled", "modified kernel, polling, quota 10"),
        ("polled-q5", "polling, quota 5"),
        ("polled-q100", "polling, quota 100"),
        (
            "no-quota",
            "polling without a quota (livelocks, Figure 6-3)",
        ),
        (
            "feedback",
            "polling + screend + queue-state feedback (Figure 6-4)",
        ),
        ("no-feedback", "polling + screend, feedback off (livelocks)"),
        (
            "rate-limited",
            "unmodified + 2000/s interrupt rate limit (§5.1)",
        ),
        (
            "cycle-25",
            "polling + 25% CPU cycle limit + user process (§7)",
        ),
        ("cycle-50", "polling + 50% CPU cycle limit + user process"),
        (
            "end-system",
            "UDP/RPC server, modified kernel + socket feedback",
        ),
    ]
}

fn config_by_name(name: &str) -> Option<KernelConfig> {
    let b = KernelConfig::builder();
    Some(match name {
        "unmodified" => b.build(),
        "screend" => b.screend(Default::default()).build(),
        "no-polling" => b.no_polling().build(),
        "polled" => b.polled(Quota::Limited(10)).build(),
        "polled-q5" => b.polled(Quota::Limited(5)).build(),
        "polled-q100" => b.polled(Quota::Limited(100)).build(),
        "no-quota" => b.polled(Quota::Unlimited).build(),
        "feedback" => b
            .polled(Quota::Limited(10))
            .screend(Default::default())
            .feedback(Default::default())
            .build(),
        "no-feedback" => b
            .polled(Quota::Limited(10))
            .screend(Default::default())
            .build(),
        "rate-limited" => b.intr_rate_limit(2_000.0, 4).build(),
        "cycle-25" => b.polled(Quota::Limited(5)).cycle_limit(0.25).user_process(true).build(),
        "cycle-50" => b.polled(Quota::Limited(5)).cycle_limit(0.50).user_process(true).build(),
        "end-system" => b
            .polled(Quota::Limited(10))
            .local_delivery(LocalDeliveryConfig {
                feedback: Some(FeedbackConfig::default()),
                ..LocalDeliveryConfig::default()
            })
            .ip_forwarding(false)
            .build(),
        _ => return None,
    })
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    /// Flags that take no value.
    const BOOL_FLAGS: &'static [&'static str] = &["latency", "steal", "priority"];

    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            if Self::BOOL_FLAGS.contains(&name) {
                flags.push((name.to_string(), String::new()));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }
}

fn cmd_configs() {
    println!("{:<14} description", "name");
    for (name, desc) in configs() {
        println!("{name:<14} {desc}");
    }
}

/// Ring capacity for `--chrome-trace`: enough records for a full
/// 10,000-packet trial (each packet is a handful of scheduling events).
const TRACE_CAPACITY: usize = 1 << 20;

/// Applies `--ncpus N` / `--steal` to a parsed config: the SMP topology
/// (per-CPU executors fed by a multiqueue RSS NIC, see DESIGN.md §12).
fn apply_topology(cfg: &mut KernelConfig, args: &Args) -> Result<(), String> {
    let ncpus = args.get_usize("ncpus", 1)?;
    if ncpus == 0 || ncpus > 8 {
        return Err(format!("--ncpus: want 1..=8, got {ncpus}"));
    }
    cfg.topology.ncpus = ncpus;
    cfg.topology.steal = args.has("steal");
    Ok(())
}

fn cmd_trial(args: &Args) -> Result<(), String> {
    let name = args.get("config").unwrap_or("polled");
    let mut cfg = config_by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?;
    apply_topology(&mut cfg, args)?;
    let timeline_path = args.get("timeline");
    let trace_path = args.get("chrome-trace");
    let events_path = args.get("events");
    let flamegraph_path = args.get("flamegraph");
    if timeline_path.is_some() {
        cfg.telemetry = Some(TelemetryConfig::default());
    }
    if events_path.is_some() || flamegraph_path.is_some() {
        cfg.observe = Some(ObserveConfig::default());
    }
    let freq = cfg.cost.freq;
    let spec = TrialSpec {
        rate_pps: args.get_f64("rate", 8_000.0)?,
        n_packets: args.get_usize("packets", 10_000)?,
        seed: args.get_u64("seed", 1)?,
        ..TrialSpec::new(cfg)
    };
    let (r, chrome_json) = match trace_path {
        Some(_) => {
            let (r, json) = run_trial_traced(&spec, TRACE_CAPACITY);
            (r, Some(json))
        }
        None => (run_trial(&spec), None),
    };
    if let Some(path) = timeline_path {
        let tl = r
            .timeline
            .as_ref()
            .ok_or("telemetry produced no timeline despite being enabled")?;
        std::fs::write(path, tl.to_csv(freq))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {} telemetry samples to {path}", tl.len());
    }
    if let (Some(path), Some(json)) = (trace_path, &chrome_json) {
        std::fs::write(path, json).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = events_path {
        let mut out = String::new();
        for ev in &r.events {
            out.push_str(&ev.to_json(freq));
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote {} observability events to {path}", r.events.len());
    }
    if let Some(path) = flamegraph_path {
        let fold = r
            .fold
            .as_ref()
            .ok_or("observability produced no cycle fold despite being enabled")?;
        std::fs::write(path, fold.folded(livelock_kernel::tag_label))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote collapsed-stack cycle fold to {path}");
    }
    println!("config          {name}");
    println!("offered         {:>10.0} pkts/s", r.offered_pps);
    println!("delivered       {:>10.0} pkts/s", r.delivered_pps);
    println!("transmitted     {:>10}", r.transmitted);
    println!("rx-ring drops   {:>10}  (free)", r.rx_ring_drops);
    println!("ipintrq drops   {:>10}", r.ipintrq_drops);
    println!("screend-q drops {:>10}", r.screend_q_drops);
    println!("ifqueue drops   {:>10}", r.ifq_drops);
    println!("socket-q drops  {:>10}", r.socket_q_drops);
    println!(
        "app delivered   {:>10}  ({:.0} op/s)",
        r.app_delivered, r.app_delivered_pps
    );
    println!("latency mean    {:>10}", r.latency_mean);
    println!("latency p99     {:>10}", r.latency_p99);
    let agg = r.aggregate();
    println!("interrupts      {:>10}", agg.interrupts_taken);
    println!("user CPU        {:>9.1}%", agg.user_cpu_frac * 100.0);
    println!("CPU by class (window, conserved ledger)");
    for c in CpuClass::ALL {
        let share = agg.cpu_share[c.index()];
        if share >= 0.0005 {
            println!("  {:<13} {:>9.1}%", c.label(), share * 100.0);
        }
    }
    if r.per_cpu().len() > 1 {
        println!("per-CPU (busy%, interrupts, steals out/in)");
        for cpu in r.per_cpu() {
            println!(
                "  cpu{:<2} busy {:>5.1}%  intrs {:>8}  steals {:>6}/{:<6}",
                cpu.cpu.0,
                (1.0 - cpu.cpu_share[CpuClass::Idle.index()]) * 100.0,
                cpu.interrupts_taken,
                cpu.steals_published,
                cpu.steals_taken,
            );
        }
    }
    if args.has("latency") {
        print_latency_breakdown(&r);
    }
    Ok(())
}

/// The `--latency` report: per-stage sojourn quantiles for delivered
/// packets, then every drop attributed to its reason.
fn print_latency_breakdown(r: &TrialResult) {
    println!();
    println!(
        "latency (us)  {:>10} {:>10} {:>10} {:>10} {:>10}  {:>8}",
        "p50", "p90", "p99", "p99.9", "max", "count"
    );
    let row = |name: &str, h: &livelock_sim::HdrHistogram| {
        if h.is_empty() {
            return;
        }
        println!(
            "  {name:<11} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}  {:>8}",
            h.quantile(0.50).as_micros_f64(),
            h.quantile(0.90).as_micros_f64(),
            h.quantile(0.99).as_micros_f64(),
            h.quantile(0.999).as_micros_f64(),
            h.max().as_micros_f64(),
            h.count(),
        );
    };
    row("total", &r.latency.total);
    for s in Stage::ALL {
        row(s.label(), r.latency.stage(s));
    }
    println!();
    println!("drops by reason");
    if r.drops.total() == 0 {
        println!("  (none)");
    }
    for reason in DropReason::ALL {
        let n = r.drops.get(reason);
        if n > 0 {
            println!("  {:<18} {n:>10}", reason.label());
        }
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let names: Vec<&str> = args
        .get("config")
        .unwrap_or("unmodified,polled")
        .split(',')
        .collect();
    let rates: Vec<f64> = match args.get("rates") {
        None => paper_rates(),
        Some(s) => s
            .split(',')
            .map(|r| r.parse().map_err(|_| format!("bad rate {r:?}")))
            .collect::<Result<_, _>>()?,
    };
    let n_packets = args.get_usize("packets", 3_000)?;
    let jobs = args.get_usize("jobs", default_jobs())?;
    let latency = args.has("latency");

    let mut results = Vec::new();
    for name in &names {
        let mut cfg = config_by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?;
        apply_topology(&mut cfg, args)?;
        let base = TrialSpec {
            n_packets,
            ..TrialSpec::new(cfg)
        };
        eprintln!("sweeping {name}...");
        results.push(sweep(name, &base, &rates, Parallelism::Jobs(jobs)));
    }

    print!("{:>10}", "input_pps");
    for s in &results {
        print!("{:>14}", s.label);
    }
    if latency {
        for s in &results {
            print!("{:>18}", format!("{}_p99us", s.label));
        }
    }
    println!();
    for (i, rate) in rates.iter().enumerate() {
        print!("{rate:>10.0}");
        for s in &results {
            print!("{:>14.0}", s.trials[i].delivered_pps);
        }
        if latency {
            for s in &results {
                print!("{:>18.1}", s.trials[i].latency_p99.as_micros_f64());
            }
        }
        println!();
    }
    println!();
    for s in &results {
        let pts = s.points();
        println!(
            "{:<14} stability {:.2}, verdict {:?}",
            s.label,
            overload_stability(&pts),
            classify(&pts, 0.10, 0.80)
        );
    }
    Ok(())
}

fn cmd_mlfrr(args: &Args) -> Result<(), String> {
    let name = args.get("config").unwrap_or("polled");
    let cfg = config_by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?;
    let loss_free = args.get_f64("loss-free", 0.98)?;
    let n_packets = args.get_usize("packets", 3_000)?;
    let jobs = args.get_usize("jobs", default_jobs())?;

    // Multisection on the offered rate for the highest loss-free point:
    // each round probes `jobs` bracketing rates concurrently, shrinking
    // the bracket (jobs + 1)x per round where bisection manages 2x.
    let probe = |rates: &[f64]| -> Vec<SweepPoint> {
        let pts = par_map(rates, jobs, |&rate| {
            let r = run_trial(&TrialSpec {
                rate_pps: rate,
                n_packets,
                ..TrialSpec::new(cfg.clone())
            });
            SweepPoint::new(r.offered_pps, r.delivered_pps)
        });
        for (rate, p) in rates.iter().zip(&pts) {
            eprintln!(
                "  {rate:>8.0} pkts/s -> delivered {:>8.0} ({:.1}%)",
                p.delivered,
                100.0 * p.delivered / p.offered
            );
        }
        pts
    };
    let lo = 100.0f64;
    let hi = 14_000.0f64;
    // Ensure the bracket is valid.
    let p = &probe(&[lo])[0];
    if p.delivered < loss_free * p.offered {
        return Err(format!("lossy even at {lo} pkts/s; nothing to search"));
    }
    // Match classic 12-round bisection precision (~3.4 pkts/s here).
    let rounds = multisection_rounds(jobs, 12);
    let m = mlfrr_multisection((lo, hi), jobs, rounds, loss_free, probe);
    println!(
        "MLFRR({name}, loss-free ≥ {:.0}%) ≈ {:.0} pkts/s",
        loss_free * 100.0,
        m
    );
    Ok(())
}

/// The seeded fault-storm run: both kernels face the identical storm,
/// the polled kernel's graceful-degradation invariants are asserted,
/// and the first violated invariant picks the (documented) exit code.
fn cmd_chaos(args: &Args) -> Result<i32, String> {
    let seed = args.get_u64("seed", 0xC4A05)?;
    let priority = args.has("priority");
    // The default rate sits deep in the unmodified kernel's livelock
    // region, so the run demonstrates the contrast the paper is about:
    // the polled kernel rides out the same storm the unmodified kernel
    // cannot even survive fault-free. The --priority default sits lower:
    // cross-class inversion needs the unmodified kernel still serving a
    // Bulk trickle while Control starves — at deep collapse it serves
    // nothing at all, which is livelock, not inversion.
    let rate = args.get_f64("rate", if priority { 5_000.0 } else { 12_000.0 })?;
    let n_packets = args.get_usize("packets", 6_000)?;
    let intensity = args.get_f64("intensity", 2.0)?;
    if !(rate > 0.0) {
        return Err(format!("--rate: must be positive, got {rate}"));
    }
    if !(intensity >= 0.0) {
        return Err(format!("--intensity: must be >= 0, got {intensity}"));
    }

    // Both kernels route through screend and face the identical storm:
    // the middle 80% of the trial, clear of warm-up and tail.
    let mut polled_cfg = config_by_name("feedback").ok_or("missing feedback config")?;
    let mut unmod_cfg = config_by_name("screend").ok_or("missing screend config")?;
    if priority {
        // The P-1 classifier plus the observability layer on both
        // kernels: the unmodified kernel observes classes without
        // enforcing them, which is exactly the inversion the polled
        // kernel's priority rings and shed gate must prevent. The SLO is
        // storm-aware: a screend crash parks even a perfectly-isolated
        // Control packet for up to ~8 ms of restart, so the fault-free
        // P-1 SLO would flag fault downtime as inversion on any kernel.
        // (The unmodified kernel's verdict does not depend on this: it
        // fires the starved-outright clause, which has no SLO in it.)
        let mut classes = livelock_bench::p1_classify_config();
        classes.slo_p99_us = 25_000.0;
        polled_cfg.classes = Some(classes.clone());
        unmod_cfg.classes = Some(classes);
        polled_cfg.observe = Some(ObserveConfig::default());
        unmod_cfg.observe = Some(ObserveConfig::default());
    }
    let freq = polled_cfg.cost.freq;
    let total_ms = (n_packets as f64 / rate * 1_000.0) as u64;
    let plan = FaultPlan::storm(
        seed,
        intensity,
        freq.cycles_from_millis(total_ms / 10),
        freq.cycles_from_millis(total_ms * 9 / 10),
    );
    let n_faults = plan.len() as u64;
    eprintln!(
        "chaos: seed {seed:#x}, intensity {intensity}, {n_faults} faults over \
         {n_packets} packets at {rate:.0} pkts/s"
    );

    let run = |cfg: KernelConfig| {
        let mut spec = TrialSpec {
            rate_pps: rate,
            n_packets,
            flows: priority.then(livelock_bench::p1_flows),
            ..TrialSpec::new(cfg)
        };
        if !plan.is_empty() {
            spec.config.faults = Some(plan.clone());
        }
        run_chaos_trial(&spec)
    };
    let polled = run(polled_cfg);
    let unmod = run(unmod_cfg);

    let f = &polled.result.fault;
    println!("{:<26} {:>12} {:>12}", "", "polled", "unmodified");
    let row = |name: &str, a: String, b: String| println!("{name:<26} {a:>12} {b:>12}");
    row(
        "delivered pkts/s",
        format!("{:.0}", polled.result.delivered_pps),
        format!("{:.0}", unmod.result.delivered_pps),
    );
    row(
        "transmitted",
        polled.result.transmitted.to_string(),
        unmod.result.transmitted.to_string(),
    );
    row(
        "faults injected",
        f.injected.to_string(),
        unmod.result.fault.injected.to_string(),
    );
    println!();
    println!("polled-kernel fault/recovery counters");
    for (name, n) in [
        ("lost interrupts", f.lost_intrs),
        ("spurious interrupts", f.spurious_intrs),
        ("mutated frames", f.mutated_frames),
        ("storm frames", f.storm_frames),
        ("clock jitters", f.clock_jitters),
        ("link flaps", f.link_flaps),
        ("link-down losses", f.link_down_losses),
        ("screend stalls", f.screend_stalls),
        ("screend crashes", f.screend_crashes),
        ("crash-flushed packets", f.crash_flushed),
        ("stall recoveries", f.stall_recoveries),
        ("interrupt reposts", f.intr_reposts),
        ("watchdog unwedges", f.watchdog_unwedges),
        ("feedback timeout resumes", polled.timeout_resumes),
    ] {
        println!("  {name:<24} {n:>10}");
    }
    println!();

    // The graceful-degradation invariants, most fundamental first.
    let mut violations: Vec<(i32, String)> = Vec::new();
    if n_faults > 0 && polled.result.delivered_pps <= 0.0 {
        violations.push((codes::CHAOS_NO_DELIVERY, "polled kernel delivered nothing (fault-induced livelock)".into()));
    }
    if !polled.gate_open_at_end {
        violations.push((
            codes::CHAOS_GATE_INHIBITED,
            format!(
                "polled interrupt gate ended the run inhibited (bits {:#04x})",
                polled.gate_bits
            ),
        ));
    }
    if polled.screend_q_len != 0 {
        violations.push((
            codes::CHAOS_SCREEND_BACKLOG,
            format!(
                "screend queue holds {} packets after the drain window",
                polled.screend_q_len
            ),
        ));
    }
    if polled.in_flight != 0 {
        violations.push((
            codes::CHAOS_LEDGER_LEAK,
            format!(
                "conservation ledger leaves {} packets unaccounted",
                polled.in_flight
            ),
        ));
    }
    if f.injected != n_faults {
        violations.push((
            codes::CHAOS_FAULTS_MISSING,
            format!("only {} of {n_faults} scheduled faults fired", f.injected),
        ));
    }
    // The contrast half of the demonstration: under the identical storm
    // the unmodified kernel must be (close to) livelocked. This holds at
    // the default rate, which sits past its collapse point; a
    // user-supplied low --rate can legitimately trip it.
    if unmod.result.delivered_pps >= 0.05 * polled.result.delivered_pps.max(1.0) {
        violations.push((
            codes::CHAOS_NOT_LIVELOCKED,
            format!(
                "unmodified kernel is not livelocked under the storm \
                 ({:.0} vs polled {:.0} pkts/s) — is --rate below its collapse point?",
                unmod.result.delivered_pps, polled.result.delivered_pps
            ),
        ));
    }
    // The priority-isolation contrast (`--priority`): under the
    // identical storm the classified polled kernel must keep Control
    // clear of cross-class inversion while the unmodified kernel —
    // observing the same classes without enforcing them — must show it.
    if priority {
        let inversions = |r: &TrialResult| {
            r.events
                .iter()
                .filter(|ev| matches!(ev.kind, ObsEventKind::PriorityInversion { .. }))
                .count()
        };
        println!("per-class books (delivered pkts/s, shed)");
        for (name, r) in [("polled", &polled.result), ("unmodified", &unmod.result)] {
            print!("  {name:<11}");
            for c in r.per_class() {
                print!(
                    "  {} {:>5.0}/s shed {:<6}",
                    c.class.label(),
                    c.delivered_pps,
                    c.shed
                );
            }
            println!();
        }
        let (p_inv, u_inv) = (inversions(&polled.result), inversions(&unmod.result));
        println!("priority-inversion events: polled {p_inv}, unmodified {u_inv}");
        println!();
        if p_inv > 0 {
            violations.push((
                codes::CHAOS_PRIORITY_INVERSION,
                format!(
                    "classified polled kernel produced {p_inv} priority-inversion \
                     event(s) — Control blew its SLO while Bulk was served"
                ),
            ));
        }
        if u_inv == 0 {
            violations.push((
                codes::CHAOS_NO_INVERSION_CONTRAST,
                format!(
                    "unmodified kernel produced no priority-inversion event at \
                     {rate:.0} pkts/s — is --rate below its collapse point?"
                ),
            ));
        }
    }
    if violations.is_empty() {
        println!(
            "all graceful-degradation invariants hold: delivery sustained, \
             gate open, screend queue drained, ledger conserved, \
             unmodified kernel livelocked under the same storm{}",
            if priority {
                ", Control isolated from inversion on the classified kernel only"
            } else {
                ""
            }
        );
        return Ok(0);
    }
    eprintln!("CHAOS INVARIANT VIOLATIONS:");
    for (_, msg) in &violations {
        eprintln!("  {msg}");
    }
    Ok(violations[0].0)
}

/// The online-detection run: both kernels face the identical eight-flow
/// overload through screend with the observability layer on, the typed
/// event streams and per-flow ledgers are printed, and the detection
/// claims are asserted — first violated claim picks the exit code.
fn cmd_observe(args: &Args) -> Result<i32, String> {
    // The default rate sits past the screend path's MLFRR, where the
    // unmodified kernel livelocks and the polled kernel holds its
    // plateau — the separation the detector exists to time-stamp.
    let rate = args.get_f64("rate", 12_000.0)?;
    let n_packets = args.get_usize("packets", 6_000)?;
    let seed = args.get_u64("seed", 1)?;
    if !(rate > 0.0) {
        return Err(format!("--rate: must be positive, got {rate}"));
    }

    let flows = livelock_bench::o1_flows();
    let run = |name: &str| -> Result<TrialResult, String> {
        let mut cfg = config_by_name(name).ok_or_else(|| format!("missing {name} config"))?;
        cfg.observe = Some(ObserveConfig::default());
        // The drained chaos-trial harness, fault-free: after its drain
        // window every accepted packet has either been delivered or
        // attributed to a drop, so the per-flow ledgers close exactly.
        Ok(run_chaos_trial(&TrialSpec {
            rate_pps: rate,
            n_packets,
            seed,
            flows: Some(flows.clone()),
            ..TrialSpec::new(cfg)
        })
        .result)
    };
    let unmod = run("screend")?;
    let polled = run("feedback")?;
    let freq = config_by_name("screend").ok_or("missing screend config")?.cost.freq;

    let onset = |r: &TrialResult| {
        r.events
            .iter()
            .find(|ev| matches!(ev.kind, ObsEventKind::LivelockOnset { .. }))
            .map(|ev| ev.at)
    };
    let starved = |r: &TrialResult| {
        r.events
            .iter()
            .filter(|ev| matches!(ev.kind, ObsEventKind::FlowStarved { .. }))
            .count()
    };

    for (name, r) in [("unmodified+screend", &unmod), ("polled+feedback", &polled)] {
        println!("{name}: delivered {:.0} pkts/s, {} events", r.delivered_pps, r.events.len());
        for ev in &r.events {
            println!("  {}", ev.to_json(freq));
        }
        println!(
            "  {:<6} {:>8} {:>10} {:>8} {:>12}",
            "flow", "arrived", "delivered", "dropped", "p99_us"
        );
        for s in r.per_flow() {
            println!(
                "  {:<6} {:>8} {:>10} {:>8} {:>12.1}",
                s.key.src_port,
                s.arrived,
                s.delivered,
                s.drops.total(),
                if s.latency.is_empty() {
                    0.0
                } else {
                    s.latency.quantile(0.99).as_micros_f64()
                },
            );
        }
        println!();
    }

    // The detection claims, most fundamental first.
    let mut violations: Vec<(i32, String)> = Vec::new();
    match onset(&unmod) {
        Some(at) => println!(
            "unmodified livelock onset at cycle {} ({:.1} us into the trial)",
            at.raw(),
            freq.nanos_from_cycles(at).as_micros_f64()
        ),
        None => violations.push((
            codes::OBSERVE_NO_ONSET,
            format!(
                "unmodified kernel produced no livelock-onset event at {rate:.0} pkts/s \
                 — is --rate below the screend MLFRR?"
            ),
        )),
    }
    if let Some(at) = onset(&polled) {
        violations.push((
            codes::OBSERVE_FALSE_ONSET,
            format!(
                "polled kernel with feedback reports livelock onset at cycle {}",
                at.raw()
            ),
        ));
    }
    let (u_starved, p_starved) = (starved(&unmod), starved(&polled));
    if u_starved < flows.len() / 2 || p_starved >= u_starved.max(1) {
        violations.push((
            codes::OBSERVE_STARVATION,
            format!(
                "starvation watch: unmodified starved {u_starved} of {} tracked flows, \
                 polled starved {p_starved} — expected broad starvation under livelock \
                 and strictly less under polling",
                flows.len()
            ),
        ));
    }
    for (name, r) in [("unmodified", &unmod), ("polled", &polled)] {
        let Some(reg) = &r.flows else {
            violations.push((codes::OBSERVE_FLOW_LEDGER, format!("{name} trial carried no flow registry")));
            continue;
        };
        if reg.overflow_arrivals() != 0 || reg.unattributed_arrivals() != 0 {
            violations.push((
                codes::OBSERVE_FLOW_LEDGER,
                format!(
                    "{name} registry leaked arrivals: {} overflow, {} unattributed \
                     (eight flows must fit 128 slots and every flood frame parses)",
                    reg.overflow_arrivals(),
                    reg.unattributed_arrivals()
                ),
            ));
        }
        for s in r.per_flow() {
            if s.arrived != s.delivered + s.drops.total() {
                violations.push((
                    codes::OBSERVE_FLOW_LEDGER,
                    format!(
                        "{name} flow {} ledger does not close: {} arrived != {} delivered \
                         + {} dropped",
                        s.key.src_port,
                        s.arrived,
                        s.delivered,
                        s.drops.total()
                    ),
                ));
            }
        }
    }
    if violations.is_empty() {
        println!(
            "all online-detection claims hold: onset timed on the unmodified kernel, \
             none on the polled kernel, starvation contained, per-flow ledgers closed"
        );
        return Ok(0);
    }
    eprintln!("OBSERVE CLAIM VIOLATIONS:");
    for (_, msg) in &violations {
        eprintln!("  {msg}");
    }
    Ok(violations[0].0)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: livelock <configs|trial|sweep|mlfrr|chaos|observe> [--flag value]...");
            std::process::exit(codes::LIVELOCK_USAGE);
        }
    };
    let result = match (cmd, Args::parse(rest)) {
        ("configs", _) => {
            cmd_configs();
            Ok(())
        }
        (_, Err(e)) => Err(e),
        ("trial", Ok(args)) => cmd_trial(&args),
        ("sweep", Ok(args)) => cmd_sweep(&args),
        ("mlfrr", Ok(args)) => cmd_mlfrr(&args),
        ("chaos", Ok(args)) => match cmd_chaos(&args) {
            Ok(0) => Ok(()),
            Ok(code) => std::process::exit(code),
            Err(e) => Err(e),
        },
        ("observe", Ok(args)) => match cmd_observe(&args) {
            Ok(0) => Ok(()),
            Ok(code) => std::process::exit(code),
            Err(e) => Err(e),
        },
        (other, Ok(_)) => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(codes::LIVELOCK_USAGE);
    }
}
