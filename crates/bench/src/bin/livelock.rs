//! `livelock` — the command-line face of the reproduction.
//!
//! ```text
//! livelock configs                      list kernel configurations
//! livelock trial  --config polled --rate 8000 [--packets N] [--seed S]
//! livelock sweep  --config unmodified,polled [--rates 1000,2000,...] [--jobs N]
//! livelock mlfrr  --config polled [--loss-free 0.98] [--jobs N]
//! ```
//!
//! `trial` runs one paper-style measurement and prints the full breakdown;
//! `sweep` prints the (input rate, output rate) series a figure would
//! plot; `mlfrr` searches for the Maximum Loss Free Receive Rate by
//! multisection (with `--jobs N`, each round probes N rates concurrently).
//! `--jobs` defaults to the host's available parallelism; results are
//! identical for every job count.

use livelock_core::analysis::{
    classify, mlfrr_multisection, multisection_rounds, overload_stability, SweepPoint,
};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{paper_rates, run_trial, sweep_jobs, TrialSpec};
use livelock_kernel::par::{default_jobs, par_map};

fn configs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("unmodified", "4.2BSD interrupt-driven path (Figure 6-1)"),
        ("screend", "unmodified + user-mode screend filter"),
        (
            "no-polling",
            "modified kernel acting unmodified (Figure 6-3)",
        ),
        ("polled", "modified kernel, polling, quota 10"),
        ("polled-q5", "polling, quota 5"),
        ("polled-q100", "polling, quota 100"),
        (
            "no-quota",
            "polling without a quota (livelocks, Figure 6-3)",
        ),
        (
            "feedback",
            "polling + screend + queue-state feedback (Figure 6-4)",
        ),
        ("no-feedback", "polling + screend, feedback off (livelocks)"),
        (
            "rate-limited",
            "unmodified + 2000/s interrupt rate limit (§5.1)",
        ),
        (
            "cycle-25",
            "polling + 25% CPU cycle limit + user process (§7)",
        ),
        ("cycle-50", "polling + 50% CPU cycle limit + user process"),
        (
            "end-system",
            "UDP/RPC server, modified kernel + socket feedback",
        ),
    ]
}

fn config_by_name(name: &str) -> Option<KernelConfig> {
    Some(match name {
        "unmodified" => KernelConfig::unmodified(),
        "screend" => KernelConfig::unmodified_with_screend(),
        "no-polling" => KernelConfig::no_polling(),
        "polled" => KernelConfig::polled(Quota::Limited(10)),
        "polled-q5" => KernelConfig::polled(Quota::Limited(5)),
        "polled-q100" => KernelConfig::polled(Quota::Limited(100)),
        "no-quota" => KernelConfig::polled(Quota::Unlimited),
        "feedback" => KernelConfig::polled_screend_feedback(Quota::Limited(10)),
        "no-feedback" => KernelConfig::polled_screend_no_feedback(Quota::Limited(10)),
        "rate-limited" => KernelConfig::unmodified_rate_limited(2_000.0),
        "cycle-25" => KernelConfig::polled_cycle_limit(0.25),
        "cycle-50" => KernelConfig::polled_cycle_limit(0.50),
        "end-system" => KernelConfig::end_system_polled(Quota::Limited(10)),
        _ => return None,
    })
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }
}

fn cmd_configs() {
    println!("{:<14} description", "name");
    for (name, desc) in configs() {
        println!("{name:<14} {desc}");
    }
}

fn cmd_trial(args: &Args) -> Result<(), String> {
    let name = args.get("config").unwrap_or("polled");
    let cfg = config_by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?;
    let spec = TrialSpec {
        rate_pps: args.get_f64("rate", 8_000.0)?,
        n_packets: args.get_usize("packets", 10_000)?,
        seed: args.get_u64("seed", 1)?,
        ..TrialSpec::new(cfg)
    };
    let r = run_trial(&spec);
    println!("config          {name}");
    println!("offered         {:>10.0} pkts/s", r.offered_pps);
    println!("delivered       {:>10.0} pkts/s", r.delivered_pps);
    println!("transmitted     {:>10}", r.transmitted);
    println!("rx-ring drops   {:>10}  (free)", r.rx_ring_drops);
    println!("ipintrq drops   {:>10}", r.ipintrq_drops);
    println!("screend-q drops {:>10}", r.screend_q_drops);
    println!("ifqueue drops   {:>10}", r.ifq_drops);
    println!("socket-q drops  {:>10}", r.socket_q_drops);
    println!(
        "app delivered   {:>10}  ({:.0} op/s)",
        r.app_delivered, r.app_delivered_pps
    );
    println!("latency mean    {:>10}", r.latency_mean);
    println!("latency p99     {:>10}", r.latency_p99);
    println!("interrupts      {:>10}", r.interrupts_taken);
    println!("user CPU        {:>9.1}%", r.user_cpu_frac * 100.0);
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let names: Vec<&str> = args
        .get("config")
        .unwrap_or("unmodified,polled")
        .split(',')
        .collect();
    let rates: Vec<f64> = match args.get("rates") {
        None => paper_rates(),
        Some(s) => s
            .split(',')
            .map(|r| r.parse().map_err(|_| format!("bad rate {r:?}")))
            .collect::<Result<_, _>>()?,
    };
    let n_packets = args.get_usize("packets", 3_000)?;
    let jobs = args.get_usize("jobs", default_jobs())?;

    let mut results = Vec::new();
    for name in &names {
        let cfg = config_by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?;
        let base = TrialSpec {
            n_packets,
            ..TrialSpec::new(cfg)
        };
        eprintln!("sweeping {name}...");
        results.push(sweep_jobs(name, &base, &rates, jobs));
    }

    print!("{:>10}", "input_pps");
    for s in &results {
        print!("{:>14}", s.label);
    }
    println!();
    for (i, rate) in rates.iter().enumerate() {
        print!("{rate:>10.0}");
        for s in &results {
            print!("{:>14.0}", s.trials[i].delivered_pps);
        }
        println!();
    }
    println!();
    for s in &results {
        let pts = s.points();
        println!(
            "{:<14} stability {:.2}, verdict {:?}",
            s.label,
            overload_stability(&pts),
            classify(&pts, 0.10, 0.80)
        );
    }
    Ok(())
}

fn cmd_mlfrr(args: &Args) -> Result<(), String> {
    let name = args.get("config").unwrap_or("polled");
    let cfg = config_by_name(name).ok_or_else(|| format!("unknown config {name:?}"))?;
    let loss_free = args.get_f64("loss-free", 0.98)?;
    let n_packets = args.get_usize("packets", 3_000)?;
    let jobs = args.get_usize("jobs", default_jobs())?;

    // Multisection on the offered rate for the highest loss-free point:
    // each round probes `jobs` bracketing rates concurrently, shrinking
    // the bracket (jobs + 1)x per round where bisection manages 2x.
    let probe = |rates: &[f64]| -> Vec<SweepPoint> {
        let pts = par_map(rates, jobs, |&rate| {
            let r = run_trial(&TrialSpec {
                rate_pps: rate,
                n_packets,
                ..TrialSpec::new(cfg.clone())
            });
            SweepPoint::new(r.offered_pps, r.delivered_pps)
        });
        for (rate, p) in rates.iter().zip(&pts) {
            eprintln!(
                "  {rate:>8.0} pkts/s -> delivered {:>8.0} ({:.1}%)",
                p.delivered,
                100.0 * p.delivered / p.offered
            );
        }
        pts
    };
    let lo = 100.0f64;
    let hi = 14_000.0f64;
    // Ensure the bracket is valid.
    let p = &probe(&[lo])[0];
    if p.delivered < loss_free * p.offered {
        return Err(format!("lossy even at {lo} pkts/s; nothing to search"));
    }
    // Match classic 12-round bisection precision (~3.4 pkts/s here).
    let rounds = multisection_rounds(jobs, 12);
    let m = mlfrr_multisection((lo, hi), jobs, rounds, loss_free, probe);
    println!(
        "MLFRR({name}, loss-free ≥ {:.0}%) ≈ {:.0} pkts/s",
        loss_free * 100.0,
        m
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: livelock <configs|trial|sweep|mlfrr> [--flag value]...");
            std::process::exit(2);
        }
    };
    let result = match (cmd, Args::parse(rest)) {
        ("configs", _) => {
            cmd_configs();
            Ok(())
        }
        (_, Err(e)) => Err(e),
        ("trial", Ok(args)) => cmd_trial(&args),
        ("sweep", Ok(args)) => cmd_sweep(&args),
        ("mlfrr", Ok(args)) => cmd_mlfrr(&args),
        (other, Ok(_)) => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
