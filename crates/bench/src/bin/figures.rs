//! Regenerates every figure of the paper's evaluation and writes the data
//! series as text tables (stdout) and CSV files (`results/`).
//!
//! ```text
//! cargo run --release -p livelock-bench --bin figures [--quick] [--fig 6-4]
//! ```
//!
//! `--quick` uses 2,000-packet trials instead of the paper's 10,000 (about
//! 5x faster, slightly noisier). `--fig <id>` renders a single figure.

use std::fs;
use std::path::Path;

use livelock_bench::{all_figures, render_figure, shape_violations, PAPER_TRIAL_PACKETS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let n_packets = if quick { 2_000 } else { PAPER_TRIAL_PACKETS };

    let out_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    let mut all_violations = Vec::new();
    for fig in all_figures() {
        if let Some(id) = &only {
            if fig.id != id {
                continue;
            }
        }
        eprintln!(
            "rendering figure {} ({} packets/trial)...",
            fig.id, n_packets
        );
        let rendered = render_figure(&fig, n_packets);
        print!("{}", rendered.to_table());
        print!("{}", rendered.shape_summary());
        println!();
        let path = out_dir.join(format!("fig{}.csv", fig.id.replace('-', "_")));
        if let Err(e) = fs::write(&path, rendered.to_csv()) {
            eprintln!("cannot write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
        all_violations.extend(shape_violations(&rendered));
    }

    if all_violations.is_empty() {
        eprintln!("all rendered figures match the paper's qualitative shapes");
    } else {
        eprintln!("SHAPE VIOLATIONS:");
        for v in &all_violations {
            eprintln!("  {v}");
        }
        std::process::exit(2);
    }
}
