//! Regenerates every figure of the paper's evaluation and writes the data
//! series as text tables (stdout) and CSV files (`results/`).
//!
//! ```text
//! cargo run --release -p livelock-bench --bin figures [--quick] [--fig 6-4] [--jobs N]
//! ```
//!
//! `--quick` uses 2,000-packet trials instead of the paper's 10,000 (about
//! 5x faster, slightly noisier). `--fig <id>` renders a single figure.
//! `--jobs N` fans trials across N worker threads (default: the host's
//! available parallelism); every trial is independently seeded, so the
//! output is byte-identical for every job count.
//!
//! Exit status: 0 on success, 1 when any CSV could not be written (or the
//! arguments are bad), 2 when a rendered figure violates the paper's
//! qualitative throughput shape, 3 when the latency figure violates the
//! paper's latency argument (polled overload p99 must sit well below the
//! unmodified kernel's), 4 when figure C-1 violates the paper's CPU
//! accounting (unmodified rx-intr share must reach ≥ 90% with delivery
//! collapsed at wire-saturating load, while the cycle-limited polled
//! kernel preserves user+idle share), 5 when figure R-1 violates the
//! graceful-degradation claim (the polled kernel must keep delivering
//! at every fault intensity and end the sweep no worse than the
//! unmodified kernel), 6 when figure S-1 violates the SMP-scaling claim
//! (polled MLFRR must scale ≥ 1.7× at 2 CPUs and ≥ 2.5× at 4, while the
//! shared-queue path stays ≤ 1.2× / ≤ 1.3×, with every per-CPU ledger
//! conserved), 7 when figure O-1 violates the online-detection claim
//! (the unmodified kernel must report a livelock-onset cycle above the
//! MLFRR and starve tracked flows at deep overload, while the polled
//! kernel with feedback reports neither at any swept rate), 8 when
//! figure P-1 violates the priority-isolation claim (the classified
//! polled kernel must keep Control's windowed p99 within its SLO and
//! its delivery near the offered share at loads where the single-class
//! unmodified kernel has collapsed, shed Bulk before Realtime and
//! Control never, and conserve every per-class ledger).

use std::fs;
use std::path::Path;

use lint::registry::codes;

use livelock_bench::{
    all_figures, cpu_share_violations, fault_shape_violations, latency_shape_violations,
    observe_shape_violations, priority_shape_violations, render_fig_o1, render_fig_p1,
    render_fig_r1, render_figure, shape_violations, smp_shape_violations, PAPER_TRIAL_PACKETS,
};
use livelock_kernel::par::{default_jobs, Parallelism};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only: Option<String> = flag_value(&args, "--fig");
    let jobs = match flag_value(&args, "--jobs") {
        None => default_jobs(),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs: bad thread count {v:?}");
                std::process::exit(codes::FIGURES_IO);
            }
        },
    };
    let n_packets = if quick { 2_000 } else { PAPER_TRIAL_PACKETS };

    let out_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(codes::FIGURES_IO);
    }

    // Write failures are collected, not fatal: a read-only results/ dir
    // should not abort the remaining figures' rendering and shape checks.
    let mut write_errors = Vec::new();
    let mut all_violations = Vec::new();
    let mut latency_violations = Vec::new();
    let mut cpu_violations = Vec::new();
    let mut fault_violations = Vec::new();
    let mut smp_violations = Vec::new();
    let mut observe_violations = Vec::new();
    let mut priority_violations = Vec::new();
    let write_csv = |rendered: &livelock_bench::RenderedFigure,
                         write_errors: &mut Vec<String>| {
        let path = out_dir.join(format!("fig{}.csv", rendered.id.replace('-', "_")));
        match fs::write(&path, rendered.to_csv()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => write_errors.push(format!("{}: {e}", path.display())),
        }
    };
    for fig in all_figures() {
        if let Some(id) = &only {
            if fig.id != id {
                continue;
            }
        }
        eprintln!(
            "rendering figure {} ({} packets/trial, {jobs} jobs)...",
            fig.id, n_packets
        );
        let rendered = render_figure(&fig, n_packets, Parallelism::Jobs(jobs));
        print!("{}", rendered.to_table());
        print!("{}", rendered.shape_summary());
        println!();
        write_csv(&rendered, &mut write_errors);
        all_violations.extend(shape_violations(&rendered));
        latency_violations.extend(latency_shape_violations(&rendered));
        cpu_violations.extend(cpu_share_violations(&rendered));
        smp_violations.extend(smp_shape_violations(&rendered));
    }

    // Figure R-1 sweeps fault intensity at a fixed rate, so it renders
    // outside the rate-sweep inventory above.
    if only.is_none() || only.as_deref() == Some("R-1") {
        eprintln!("rendering figure R-1 ({n_packets} packets/trial, {jobs} jobs)...");
        let rendered = render_fig_r1(n_packets, Parallelism::Jobs(jobs));
        print!("{}", rendered.to_table());
        println!();
        write_csv(&rendered, &mut write_errors);
        fault_violations.extend(fault_shape_violations(&rendered));
    }

    // Figure O-1 plots the online detector's outputs (onset time and
    // starved-flow count), so it too renders outside the inventory.
    if only.is_none() || only.as_deref() == Some("O-1") {
        eprintln!("rendering figure O-1 ({n_packets} packets/trial, {jobs} jobs)...");
        let rendered = render_fig_o1(n_packets, Parallelism::Jobs(jobs));
        print!("{}", rendered.to_table());
        println!();
        write_csv(&rendered, &mut write_errors);
        observe_violations.extend(observe_shape_violations(&rendered));
    }

    // Figure P-1 plots per-class delivery and latency under the flow
    // classifier, so it too renders outside the inventory.
    if only.is_none() || only.as_deref() == Some("P-1") {
        eprintln!("rendering figure P-1 ({n_packets} packets/trial, {jobs} jobs)...");
        let rendered = render_fig_p1(n_packets, Parallelism::Jobs(jobs));
        print!("{}", rendered.to_table());
        println!();
        write_csv(&rendered, &mut write_errors);
        priority_violations.extend(priority_shape_violations(&rendered));
    }

    if !write_errors.is_empty() {
        eprintln!("CSV WRITE FAILURES:");
        for w in &write_errors {
            eprintln!("  {w}");
        }
    }
    if all_violations.is_empty()
        && latency_violations.is_empty()
        && cpu_violations.is_empty()
        && fault_violations.is_empty()
        && smp_violations.is_empty()
        && observe_violations.is_empty()
        && priority_violations.is_empty()
    {
        eprintln!("all rendered figures match the paper's qualitative shapes");
    }
    if !all_violations.is_empty() {
        eprintln!("SHAPE VIOLATIONS:");
        for v in &all_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_SHAPE);
    }
    if !latency_violations.is_empty() {
        eprintln!("LATENCY SHAPE VIOLATIONS:");
        for v in &latency_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_LATENCY);
    }
    if !cpu_violations.is_empty() {
        eprintln!("CPU-SHARE VIOLATIONS:");
        for v in &cpu_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_CPU);
    }
    if !fault_violations.is_empty() {
        eprintln!("FAULT-DEGRADATION VIOLATIONS:");
        for v in &fault_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_FAULT);
    }
    if !smp_violations.is_empty() {
        eprintln!("SMP-SCALING VIOLATIONS:");
        for v in &smp_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_SMP);
    }
    if !observe_violations.is_empty() {
        eprintln!("ONLINE-DETECTION VIOLATIONS:");
        for v in &observe_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_OBSERVE);
    }
    if !priority_violations.is_empty() {
        eprintln!("PRIORITY-ISOLATION VIOLATIONS:");
        for v in &priority_violations {
            eprintln!("  {v}");
        }
        std::process::exit(codes::FIGURES_PRIORITY);
    }
    if !write_errors.is_empty() {
        std::process::exit(codes::FIGURES_IO);
    }
}
