//! `perf` — self-timing harness for the parallel figure pipeline.
//!
//! ```text
//! cargo run --release -p livelock-bench --bin perf [--packets N] [--jobs-list 1,2,4]
//! ```
//!
//! Renders every figure at each job count in `--jobs-list` (default:
//! `1,<available parallelism>`), reporting wall-clock per figure and in
//! total, the speedup over the first (baseline) job count, and whether the
//! CSV output is byte-identical across all job counts — the determinism
//! guarantee the parallel executor makes. Plain `std::time::Instant`
//! timing; no external harness.
//!
//! Exit status: 0 on success, 1 when any job count's CSV output differs
//! from the baseline's (or the arguments are bad).

use std::time::Instant;

use livelock_bench::{all_figures, render_figure};
use livelock_kernel::par::{default_jobs, Parallelism};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_packets = match flag_value(&args, "--packets") {
        None => 2_000,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--packets: bad count {v:?}");
                std::process::exit(1);
            }
        },
    };
    let jobs_list: Vec<usize> = match flag_value(&args, "--jobs-list") {
        None => {
            let n = default_jobs();
            if n > 1 {
                vec![1, n]
            } else {
                vec![1]
            }
        }
        Some(v) => match v.split(',').map(|s| s.parse::<usize>()).collect() {
            Ok(list) => list,
            Err(_) => {
                eprintln!("--jobs-list: bad list {v:?} (want e.g. 1,2,4)");
                std::process::exit(1);
            }
        },
    };

    let figs = all_figures();
    eprintln!(
        "timing {} figures at {n_packets} packets/trial, jobs {jobs_list:?}",
        figs.len()
    );

    let mut baseline: Option<(f64, Vec<String>)> = None;
    let mut mismatches = 0usize;
    for &jobs in &jobs_list {
        let t0 = Instant::now();
        let mut csvs = Vec::with_capacity(figs.len());
        for fig in &figs {
            let ft0 = Instant::now();
            let rendered = render_figure(fig, n_packets, Parallelism::Jobs(jobs));
            eprintln!(
                "  jobs={jobs} fig {:>4}: {:>7.2}s",
                fig.id,
                ft0.elapsed().as_secs_f64()
            );
            csvs.push(rendered.to_csv());
        }
        let total = t0.elapsed().as_secs_f64();
        match &baseline {
            None => {
                println!("jobs={jobs}: {total:.2}s total (baseline)");
                baseline = Some((total, csvs));
            }
            Some((base_total, base_csvs)) => {
                let identical = csvs == *base_csvs;
                println!(
                    "jobs={jobs}: {total:.2}s total, {:.2}x speedup, CSV {}",
                    base_total / total,
                    if identical {
                        "byte-identical to baseline"
                    } else {
                        "DIFFERS FROM BASELINE"
                    }
                );
                if !identical {
                    mismatches += 1;
                }
            }
        }
    }
    if mismatches > 0 {
        eprintln!("error: {mismatches} job count(s) produced different CSV output");
        std::process::exit(1);
    }
}
