//! `perf` — self-timing harness for the parallel figure pipeline.
//!
//! ```text
//! cargo run --release -p livelock-bench --bin perf [--packets N] [--jobs-list 1,2,4]
//! cargo run --release -p livelock-bench --bin perf -- --telemetry [--packets N]
//! ```
//!
//! The default mode renders every figure at each job count in
//! `--jobs-list` (default: `1,<available parallelism>`), reporting
//! wall-clock per figure and in total, the speedup over the first
//! (baseline) job count, and whether the CSV output is byte-identical
//! across all job counts — the determinism guarantee the parallel
//! executor makes. Plain `std::time::Instant` timing; no external
//! harness.
//!
//! `--telemetry` instead measures the telemetry sampler's own overhead:
//! it runs the same overload trial with the sampler off and on,
//! asserting that enabling it perturbs *nothing* the trial measures
//! (every result field identical — the sampler is pure observation in
//! virtual time) and that its wall-clock cost stays under ~2%. Timing
//! alternates off/on runs in pairs and takes the median of the per-pair
//! ratios, which cancels the slow clock-speed drift a shared box shows
//! and is robust to individual scheduling hiccups.
//!
//! Exit status: 0 on success, 1 when any job count's CSV output differs
//! from the baseline's, when the telemetry check fails, or when the
//! arguments are bad.

use std::time::Instant;

use livelock_bench::{all_figures, render_figure};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_kernel::par::{default_jobs, Parallelism};
use livelock_kernel::telemetry::TelemetryConfig;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Wall-clock budget the telemetry sampler may add to a trial.
const TELEMETRY_OVERHEAD_BUDGET: f64 = 0.02;

/// The `--telemetry` mode: sampler-off vs sampler-on overload trials.
/// Returns the process exit code.
fn telemetry_overhead(n_packets: usize) -> i32 {
    let off = TrialSpec {
        rate_pps: 12_000.0,
        n_packets,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    };
    let on = TrialSpec {
        config: KernelConfig::builder()
            .polled(Quota::Limited(10))
            .telemetry(TelemetryConfig::default())
            .build(),
        ..off.clone()
    };
    let r_off = run_trial(&off);
    let mut r_on = run_trial(&on);

    // Zero perturbation: the sampler observes, it must not act. Every
    // measured field is identical; only the timeline itself differs.
    if r_off.timeline.is_some() {
        eprintln!("error: sampler-off trial recorded a timeline");
        return 1;
    }
    let samples = r_on.timeline.as_ref().map_or(0, |t| t.len());
    if samples == 0 {
        eprintln!("error: sampler-on trial recorded no samples");
        return 1;
    }
    r_on.timeline = None;
    if r_on != r_off {
        eprintln!("error: enabling the telemetry sampler changed trial results");
        return 1;
    }

    // Paired timing: each pair runs off then on back-to-back, so slow
    // wall-clock drift hits both sides of a pair equally; the median of
    // the per-pair ratios within a round shrugs off individual
    // scheduling hiccups. The budget check then takes the *minimum* of
    // several round medians: that estimates the sampler's intrinsic
    // cost from below — exactly what a budget check needs — and a
    // shared box's upward noise must corrupt every round at once to
    // produce a false failure.
    let time_once = |spec: &TrialSpec| {
        let t0 = Instant::now();
        std::hint::black_box(run_trial(spec));
        t0.elapsed().as_secs_f64()
    };
    const ROUNDS: usize = 3;
    const PAIRS: usize = 15;
    let mut medians = [0.0f64; ROUNDS];
    let (mut sum_off, mut sum_on) = (0.0f64, 0.0f64);
    for m in &mut medians {
        let mut ratios = [0.0f64; PAIRS];
        for r in &mut ratios {
            let t_off = time_once(&off);
            let t_on = time_once(&on);
            sum_off += t_off;
            sum_on += t_on;
            *r = t_on / t_off;
        }
        ratios.sort_by(f64::total_cmp);
        *m = ratios[PAIRS / 2] - 1.0;
    }
    let overhead = medians.iter().copied().fold(f64::INFINITY, f64::min);
    let runs = (ROUNDS * PAIRS) as f64;
    println!("telemetry overhead ({n_packets} packets/trial, 12000 pkts/s, {samples} samples)");
    println!("  sampler off  {:>8.1} ms (mean of {:.0})", sum_off / runs * 1e3, runs);
    println!("  sampler on   {:>8.1} ms (mean of {:.0})", sum_on / runs * 1e3, runs);
    for (i, m) in medians.iter().enumerate() {
        println!(
            "  round {i}      {:>8.2} %  (median of {PAIRS} paired ratios)",
            m * 100.0
        );
    }
    println!(
        "  overhead     {:>8.2} %  (min of {ROUNDS} round medians, budget {:.0} %)",
        overhead * 100.0,
        TELEMETRY_OVERHEAD_BUDGET * 100.0
    );
    println!("  results unperturbed: every measured field identical");
    if overhead > TELEMETRY_OVERHEAD_BUDGET {
        eprintln!("error: telemetry sampler overhead exceeds the budget");
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_packets = match flag_value(&args, "--packets") {
        None => 2_000,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--packets: bad count {v:?}");
                std::process::exit(1);
            }
        },
    };
    if args.iter().any(|a| a == "--telemetry") {
        std::process::exit(telemetry_overhead(n_packets.max(10_000)));
    }
    let jobs_list: Vec<usize> = match flag_value(&args, "--jobs-list") {
        None => {
            let n = default_jobs();
            if n > 1 {
                vec![1, n]
            } else {
                vec![1]
            }
        }
        Some(v) => match v.split(',').map(|s| s.parse::<usize>()).collect() {
            Ok(list) => list,
            Err(_) => {
                eprintln!("--jobs-list: bad list {v:?} (want e.g. 1,2,4)");
                std::process::exit(1);
            }
        },
    };

    let figs = all_figures();
    eprintln!(
        "timing {} figures at {n_packets} packets/trial, jobs {jobs_list:?}",
        figs.len()
    );

    let mut baseline: Option<(f64, Vec<String>)> = None;
    let mut mismatches = 0usize;
    for &jobs in &jobs_list {
        let t0 = Instant::now();
        let mut csvs = Vec::with_capacity(figs.len());
        for fig in &figs {
            let ft0 = Instant::now();
            let rendered = render_figure(fig, n_packets, Parallelism::Jobs(jobs));
            eprintln!(
                "  jobs={jobs} fig {:>4}: {:>7.2}s",
                fig.id,
                ft0.elapsed().as_secs_f64()
            );
            csvs.push(rendered.to_csv());
        }
        let total = t0.elapsed().as_secs_f64();
        match &baseline {
            None => {
                println!("jobs={jobs}: {total:.2}s total (baseline)");
                baseline = Some((total, csvs));
            }
            Some((base_total, base_csvs)) => {
                let identical = csvs == *base_csvs;
                println!(
                    "jobs={jobs}: {total:.2}s total, {:.2}x speedup, CSV {}",
                    base_total / total,
                    if identical {
                        "byte-identical to baseline"
                    } else {
                        "DIFFERS FROM BASELINE"
                    }
                );
                if !identical {
                    mismatches += 1;
                }
            }
        }
    }
    if mismatches > 0 {
        eprintln!("error: {mismatches} job count(s) produced different CSV output");
        std::process::exit(1);
    }
}
