//! `perf` — self-timing harness for the parallel figure pipeline.
//!
//! ```text
//! cargo run --release -p livelock-bench --bin perf [--packets N] [--jobs-list 1,2,4]
//! cargo run --release -p livelock-bench --bin perf -- --json [--packets N]
//! cargo run --release -p livelock-bench --bin perf -- --telemetry [--packets N]
//! cargo run --release -p livelock-bench --bin perf -- --observe [--packets N]
//! ```
//!
//! The default mode renders every figure at each job count in
//! `--jobs-list` (default: `1,<available parallelism>`), reporting
//! wall-clock per figure and in total, the speedup over the first
//! (baseline) job count, and whether the CSV output is byte-identical
//! across all job counts — the determinism guarantee the parallel
//! executor makes. Plain `std::time::Instant` timing; no external
//! harness.
//!
//! `--json` emits the perf-trajectory artifact instead: the canonical
//! figure set rendered once per engine backend (heap, then calendar),
//! with per-figure wall-clock and events/sec, as a single JSON document
//! on stdout (schema `livelock-perf-trajectory/v1`, stable field order —
//! see EXPERIMENTS.md). `BENCH_PR7.json` at the repo root is a committed
//! run of this mode; `scripts/ci.sh` regenerates a small smoke run and
//! soft-gates against it.
//!
//! `--telemetry` instead measures the telemetry sampler's own overhead:
//! it runs the same overload trial with the sampler off and on,
//! asserting that enabling it perturbs *nothing* the trial measures
//! (every result field identical — the sampler is pure observation in
//! virtual time) and that its wall-clock cost stays under ~2%. Timing
//! alternates off/on runs in pairs and takes the median of the per-pair
//! ratios, which cancels the slow clock-speed drift a shared box shows
//! and is robust to individual scheduling hiccups.
//!
//! `--observe` is the same paired-overhead check for the per-flow
//! observability layer (flow registry + livelock detector + cycle
//! fold): enabling it must perturb nothing the trial measures, and its
//! wall-clock cost — which includes a per-packet 5-tuple parse and
//! registry update — gets a larger budget than the tick-driven sampler.
//!
//! Exit status: 0 on success, 1 when any job count's CSV output differs
//! from the baseline's, when the telemetry or observe check fails, or
//! when the arguments are bad.

use std::time::Instant;

use livelock_bench::{all_figures, render_figure, render_figure_with_scheduler};
use lint::registry::codes;
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_kernel::par::{default_jobs, Parallelism};
use livelock_kernel::telemetry::{ObserveConfig, TelemetryConfig};
use livelock_machine::SchedulerKind;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parsed command line for the `perf` binary.
#[derive(Clone, Debug, PartialEq)]
struct PerfArgs {
    /// Packets per trial.
    n_packets: usize,
    /// Emit the JSON perf-trajectory artifact instead of the timing table.
    json: bool,
    /// Run the telemetry-overhead check instead.
    telemetry: bool,
    /// Run the observability-overhead check instead.
    observe: bool,
    /// Job counts to time (`None`: 1 plus available parallelism).
    jobs_list: Option<Vec<usize>>,
}

/// Parses `perf`'s arguments. Kept free of process concerns (exit,
/// stderr) so the rejection paths are unit-testable.
fn parse_args(args: &[String]) -> Result<PerfArgs, String> {
    let n_packets = match flag_value(args, "--packets") {
        None => 2_000,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--packets: bad count {v:?} (want an integer >= 1)")),
        },
    };
    let jobs_list = match flag_value(args, "--jobs-list") {
        None => None,
        Some(v) => {
            let parsed: Result<Vec<usize>, _> = v.split(',').map(|s| s.parse::<usize>()).collect();
            match parsed {
                Ok(list) if list.is_empty() => {
                    return Err(format!("--jobs-list: empty list {v:?} (want e.g. 1,2,4)"))
                }
                // `0usize` parses fine but zero worker threads cannot
                // render anything; reject non-positive counts explicitly
                // rather than hanging or panicking downstream.
                Ok(list) if list.contains(&0) => {
                    return Err(format!(
                        "--jobs-list: job counts must be >= 1, got {v:?}"
                    ))
                }
                Ok(list) => Some(list),
                Err(_) => return Err(format!("--jobs-list: bad list {v:?} (want e.g. 1,2,4)")),
            }
        }
    };
    Ok(PerfArgs {
        n_packets,
        json: args.iter().any(|a| a == "--json"),
        telemetry: args.iter().any(|a| a == "--telemetry"),
        observe: args.iter().any(|a| a == "--observe"),
        jobs_list,
    })
}

/// Wall-clock budget the telemetry sampler may add to a trial.
const TELEMETRY_OVERHEAD_BUDGET: f64 = 0.02;

/// Wall-clock budget the observability layer may add to a trial. Larger
/// than the sampler's: observation here is per packet (5-tuple parse,
/// registry probe, fold update), not per clock tick. Measured ~5-7 %
/// on a quiet machine; the budget leaves room for scheduler noise.
const OBSERVE_OVERHEAD_BUDGET: f64 = 0.10;

/// Rounds of paired timing per overhead check.
const ROUNDS: usize = 3;
/// Back-to-back off/on pairs per round.
const PAIRS: usize = 15;

/// Paired timing: each pair runs off then on back-to-back, so slow
/// wall-clock drift hits both sides of a pair equally; the median of
/// the per-pair ratios within a round shrugs off individual scheduling
/// hiccups. The reported overhead takes the *minimum* of the round
/// medians: that estimates the intrinsic cost from below — exactly what
/// a budget check needs — and a shared box's upward noise must corrupt
/// every round at once to produce a false failure. Returns
/// `(overhead, round_medians, sum_off, sum_on)`.
fn paired_overhead(off: &TrialSpec, on: &TrialSpec) -> (f64, [f64; ROUNDS], f64, f64) {
    let time_once = |spec: &TrialSpec| {
        let t0 = Instant::now();
        std::hint::black_box(run_trial(spec));
        t0.elapsed().as_secs_f64()
    };
    let mut medians = [0.0f64; ROUNDS];
    let (mut sum_off, mut sum_on) = (0.0f64, 0.0f64);
    for m in &mut medians {
        let mut ratios = [0.0f64; PAIRS];
        for r in &mut ratios {
            let t_off = time_once(off);
            let t_on = time_once(on);
            sum_off += t_off;
            sum_on += t_on;
            *r = t_on / t_off;
        }
        ratios.sort_by(f64::total_cmp);
        *m = ratios[PAIRS / 2] - 1.0;
    }
    let overhead = medians.iter().copied().fold(f64::INFINITY, f64::min);
    (overhead, medians, sum_off, sum_on)
}

/// The `--telemetry` mode: sampler-off vs sampler-on overload trials.
/// Returns the process exit code.
fn telemetry_overhead(n_packets: usize) -> i32 {
    let off = TrialSpec {
        rate_pps: 12_000.0,
        n_packets,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    };
    let on = TrialSpec {
        config: KernelConfig::builder()
            .polled(Quota::Limited(10))
            .telemetry(TelemetryConfig::default())
            .build(),
        ..off.clone()
    };
    let r_off = run_trial(&off);
    let mut r_on = run_trial(&on);

    // Zero perturbation: the sampler observes, it must not act. Every
    // measured field is identical; only the timeline itself differs.
    if r_off.timeline.is_some() {
        eprintln!("error: sampler-off trial recorded a timeline");
        return codes::PERF_FAILURE;
    }
    let samples = r_on.timeline.as_ref().map_or(0, |t| t.len());
    if samples == 0 {
        eprintln!("error: sampler-on trial recorded no samples");
        return codes::PERF_FAILURE;
    }
    r_on.timeline = None;
    if r_on != r_off {
        eprintln!("error: enabling the telemetry sampler changed trial results");
        return codes::PERF_FAILURE;
    }

    let (overhead, medians, sum_off, sum_on) = paired_overhead(&off, &on);
    let runs = (ROUNDS * PAIRS) as f64;
    println!("telemetry overhead ({n_packets} packets/trial, 12000 pkts/s, {samples} samples)");
    println!("  sampler off  {:>8.1} ms (mean of {:.0})", sum_off / runs * 1e3, runs);
    println!("  sampler on   {:>8.1} ms (mean of {:.0})", sum_on / runs * 1e3, runs);
    for (i, m) in medians.iter().enumerate() {
        println!(
            "  round {i}      {:>8.2} %  (median of {PAIRS} paired ratios)",
            m * 100.0
        );
    }
    println!(
        "  overhead     {:>8.2} %  (min of {ROUNDS} round medians, budget {:.0} %)",
        overhead * 100.0,
        TELEMETRY_OVERHEAD_BUDGET * 100.0
    );
    println!("  results unperturbed: every measured field identical");
    if overhead > TELEMETRY_OVERHEAD_BUDGET {
        eprintln!("error: telemetry sampler overhead exceeds the budget");
        return codes::PERF_FAILURE;
    }
    0
}

/// The `--observe` mode: observability-off vs observability-on overload
/// trials — same paired protocol as `--telemetry`, with the per-packet
/// budget. Returns the process exit code.
fn observe_overhead(n_packets: usize) -> i32 {
    let off = TrialSpec {
        rate_pps: 12_000.0,
        n_packets,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    };
    let on = TrialSpec {
        config: KernelConfig::builder()
            .polled(Quota::Limited(10))
            .observe(ObserveConfig::default())
            .build(),
        ..off.clone()
    };
    let r_off = run_trial(&off);
    let mut r_on = run_trial(&on);

    // Zero perturbation: the registry, detector and fold observe; they
    // must not act. Every measured field is identical; only the
    // observability outputs themselves differ.
    if r_off.flows.is_some() || !r_off.events.is_empty() || r_off.fold.is_some() {
        eprintln!("error: observe-off trial carried observability state");
        return codes::PERF_FAILURE;
    }
    let tracked = r_on.flows.as_ref().map_or(0, |f| f.len());
    if tracked == 0 {
        eprintln!("error: observe-on trial attributed no flow");
        return codes::PERF_FAILURE;
    }
    if r_on.fold.as_ref().is_none_or(|f| f.is_empty()) {
        eprintln!("error: observe-on trial recorded no cycle fold");
        return codes::PERF_FAILURE;
    }
    r_on.flows = None;
    r_on.events = Vec::new();
    r_on.fold = None;
    if r_on != r_off {
        eprintln!("error: enabling the observability layer changed trial results");
        return codes::PERF_FAILURE;
    }

    let (overhead, medians, sum_off, sum_on) = paired_overhead(&off, &on);
    let runs = (ROUNDS * PAIRS) as f64;
    println!("observability overhead ({n_packets} packets/trial, 12000 pkts/s, {tracked} flows)");
    println!("  observe off  {:>8.1} ms (mean of {:.0})", sum_off / runs * 1e3, runs);
    println!("  observe on   {:>8.1} ms (mean of {:.0})", sum_on / runs * 1e3, runs);
    for (i, m) in medians.iter().enumerate() {
        println!(
            "  round {i}      {:>8.2} %  (median of {PAIRS} paired ratios)",
            m * 100.0
        );
    }
    println!(
        "  overhead     {:>8.2} %  (min of {ROUNDS} round medians, budget {:.0} %)",
        overhead * 100.0,
        OBSERVE_OVERHEAD_BUDGET * 100.0
    );
    println!("  results unperturbed: every measured field identical");
    if overhead > OBSERVE_OVERHEAD_BUDGET {
        eprintln!("error: observability-layer overhead exceeds the budget");
        return codes::PERF_FAILURE;
    }
    0
}

/// Packets/trial of the committed seed baseline measurement below.
const SEED_BASELINE_PACKETS: usize = 10_000;

/// Wall-clock of the full figure set on the seed heap engine (commit
/// c8ac1ae), `--packets 10000` jobs=1: minimum of 10 runs interleaved
/// with the current binary on the same box. The committed
/// `BENCH_PR6.json` records the current engine against this number.
const SEED_BASELINE_WALL_S: f64 = 3.993;

/// The `--json` mode: render the canonical figure set once per engine
/// backend and emit the perf-trajectory document. Field order is stable
/// and documented in EXPERIMENTS.md; `scripts/ci.sh` parses it.
fn perf_trajectory_json(n_packets: usize, jobs: usize) -> String {
    let figs = all_figures();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"livelock-perf-trajectory/v1\",\n");
    out.push_str(&format!("  \"packets_per_trial\": {n_packets},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"engines\": [\n");
    let mut engine_totals = Vec::new();
    for (ei, (name, kind)) in [
        ("heap", SchedulerKind::Heap),
        ("calendar", SchedulerKind::Calendar),
    ]
    .into_iter()
    .enumerate()
    {
        out.push_str("    {\n");
        out.push_str(&format!("      \"engine\": \"{name}\",\n"));
        out.push_str("      \"figures\": [\n");
        let (mut total_wall, mut total_events) = (0.0f64, 0u64);
        for (fi, fig) in figs.iter().enumerate() {
            let t0 = Instant::now();
            let rendered = render_figure_with_scheduler(
                fig,
                n_packets,
                Parallelism::Jobs(jobs),
                Some(kind),
            );
            let wall = t0.elapsed().as_secs_f64();
            let events: u64 = rendered
                .curves
                .iter()
                .flat_map(|c| &c.trials)
                .map(|t| t.aggregate().events_dispatched)
                .sum();
            total_wall += wall;
            total_events += events;
            out.push_str(&format!(
                "        {{\"id\": \"{}\", \"wall_s\": {:.6}, \"events_dispatched\": {}, \"events_per_sec\": {:.1}}}{}\n",
                fig.id,
                wall,
                events,
                events as f64 / wall,
                if fi + 1 < figs.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!("      \"total_wall_s\": {total_wall:.6},\n"));
        out.push_str(&format!("      \"total_events\": {total_events},\n"));
        out.push_str(&format!(
            "      \"events_per_sec\": {:.1}\n",
            total_events as f64 / total_wall
        ));
        out.push_str(if ei == 0 { "    },\n" } else { "    }\n" });
        engine_totals.push(total_wall);
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"calendar_speedup_vs_heap\": {:.3},\n",
        engine_totals[0] / engine_totals[1]
    ));
    out.push_str(&format!(
        "  \"seed_baseline_wall_s\": {SEED_BASELINE_WALL_S},\n"
    ));
    out.push_str(&format!(
        "  \"seed_baseline_packets_per_trial\": {SEED_BASELINE_PACKETS},\n"
    ));
    out.push_str(
        "  \"seed_baseline_note\": \"seed heap engine (commit c8ac1ae), full figure set, \
         jobs=1; minimum of 10 interleaved same-box runs\",\n",
    );
    // The seed number only compares at the same trial length; emit null
    // otherwise so downstream tooling cannot misread a smoke run as a
    // regression (or an improvement).
    if n_packets == SEED_BASELINE_PACKETS && jobs == 1 {
        out.push_str(&format!(
            "  \"speedup_vs_seed\": {:.3}\n",
            SEED_BASELINE_WALL_S / engine_totals[1]
        ));
    } else {
        out.push_str("  \"speedup_vs_seed\": null\n");
    }
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(codes::PERF_FAILURE);
        }
    };
    let n_packets = parsed.n_packets;
    if parsed.telemetry {
        std::process::exit(telemetry_overhead(n_packets.max(10_000)));
    }
    if parsed.observe {
        std::process::exit(observe_overhead(n_packets.max(10_000)));
    }
    if parsed.json {
        let jobs = parsed.jobs_list.as_ref().map_or(1, |l| l[0]);
        print!("{}", perf_trajectory_json(n_packets, jobs));
        return;
    }
    let jobs_list: Vec<usize> = match parsed.jobs_list {
        None => {
            let n = default_jobs();
            if n > 1 {
                vec![1, n]
            } else {
                vec![1]
            }
        }
        Some(list) => list,
    };

    let figs = all_figures();
    eprintln!(
        "timing {} figures at {n_packets} packets/trial, jobs {jobs_list:?}",
        figs.len()
    );

    let mut baseline: Option<(f64, Vec<String>)> = None;
    let mut mismatches = 0usize;
    for &jobs in &jobs_list {
        let t0 = Instant::now();
        let mut csvs = Vec::with_capacity(figs.len());
        for fig in &figs {
            let ft0 = Instant::now();
            let rendered = render_figure(fig, n_packets, Parallelism::Jobs(jobs));
            eprintln!(
                "  jobs={jobs} fig {:>4}: {:>7.2}s",
                fig.id,
                ft0.elapsed().as_secs_f64()
            );
            csvs.push(rendered.to_csv());
        }
        let total = t0.elapsed().as_secs_f64();
        match &baseline {
            None => {
                println!("jobs={jobs}: {total:.2}s total (baseline)");
                baseline = Some((total, csvs));
            }
            Some((base_total, base_csvs)) => {
                let identical = csvs == *base_csvs;
                println!(
                    "jobs={jobs}: {total:.2}s total, {:.2}x speedup, CSV {}",
                    base_total / total,
                    if identical {
                        "byte-identical to baseline"
                    } else {
                        "DIFFERS FROM BASELINE"
                    }
                );
                if !identical {
                    mismatches += 1;
                }
            }
        }
    }
    if mismatches > 0 {
        eprintln!("error: {mismatches} job count(s) produced different CSV output");
        std::process::exit(codes::PERF_FAILURE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let p = parse_args(&argv(&[])).unwrap();
        assert_eq!(p.n_packets, 2_000);
        assert!(!p.json);
        assert!(!p.telemetry);
        assert_eq!(p.jobs_list, None);
    }

    #[test]
    fn flags_parse() {
        let p = parse_args(&argv(&["--packets", "500", "--json", "--jobs-list", "1,2,4"])).unwrap();
        assert_eq!(p.n_packets, 500);
        assert!(p.json);
        assert_eq!(p.jobs_list, Some(vec![1, 2, 4]));
        assert!(parse_args(&argv(&["--telemetry"])).unwrap().telemetry);
        assert!(parse_args(&argv(&["--observe"])).unwrap().observe);
    }

    #[test]
    fn zero_job_count_is_rejected_with_a_clear_error() {
        for list in ["0", "1,0", "0,2", "1,0,4"] {
            let err = parse_args(&argv(&["--jobs-list", list])).unwrap_err();
            assert!(
                err.contains("job counts must be >= 1"),
                "list {list:?} gave: {err}"
            );
        }
    }

    #[test]
    fn malformed_jobs_lists_are_rejected() {
        for list in ["", "a", "1,,2", "1,two", "-1"] {
            let err = parse_args(&argv(&["--jobs-list", list])).unwrap_err();
            assert!(err.contains("--jobs-list"), "list {list:?} gave: {err}");
        }
    }

    #[test]
    fn bad_packet_counts_are_rejected() {
        for v in ["0", "-5", "many"] {
            let err = parse_args(&argv(&["--packets", v])).unwrap_err();
            assert!(err.contains("--packets"), "{v:?} gave: {err}");
        }
    }
}
