//! Figure definitions and rendering for the receive-livelock reproduction.
//!
//! Each figure in the paper's evaluation is described once here — its
//! curves (label + kernel configuration) and its sweep axis — and consumed
//! twice: by the `figures` binary, which regenerates and prints every data
//! series, and by the Criterion benches (`benches/fig*.rs`), which measure
//! the simulator's own performance on each figure's workload.

use livelock_core::analysis::{classify, mlfrr, overload_stability, LivelockVerdict};
use livelock_core::poller::Quota;
use livelock_kernel::config::{ClassifyConfig, KernelConfig};
use livelock_kernel::experiment::{run_trial, sweep, SweepResult, TrialSpec};
use livelock_kernel::telemetry::{ObsEventKind, ObserveConfig};
use livelock_kernel::par::{par_map, Parallelism};
use livelock_machine::fault::FaultPlan;
use livelock_machine::{CpuClass, SchedulerKind};
use livelock_net::classify::{MatchRule, TrafficClass};

/// What a figure's value column (y-axis) plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Delivered packet rate in pkts/s (the throughput figures).
    DeliveredPps,
    /// User-mode CPU share in percent (Figure 7-1).
    UserCpuPercent,
    /// 99th-percentile forwarding latency in microseconds (the latency
    /// figure the paper's §4.3 discussion implies).
    LatencyP99Micros,
    /// Receive-interrupt CPU share in percent, from the conserved cycle
    /// ledger (figure C-1).
    RxIntrCpuPercent,
    /// Combined user-process + idle CPU share in percent — the CPU the
    /// system has left for actual work (figure C-1).
    UserIdleCpuPercent,
    /// One CPU's busy share (100 minus its idle share) in percent, from
    /// that CPU's conserved cycle ledger (figure S-1's per-CPU curves).
    /// The payload is the [`CpuId`](livelock_machine::CpuId) index; a
    /// trial with fewer CPUs plots 0.
    PerCpuBusyPercent(u8),
    /// Simulated milliseconds from trial start to the online detector's
    /// first `LivelockOnset` event; 0 when the trial never livelocked
    /// (figure O-1). Requires the observability layer
    /// ([`KernelConfig::observe`](livelock_kernel::config::KernelConfig::observe)).
    LivelockOnsetMillis,
    /// Number of distinct flows the online detector flagged as starved
    /// (`FlowStarved` fires once per flow), as a count (figure O-1).
    StarvedFlows,
    /// One traffic class's delivered rate in pkts/s, from the trial's
    /// per-class books (figure P-1). Plots 0 when classification was off.
    ClassDeliveredPps(TrafficClass),
    /// One traffic class's 99th-percentile wire-to-delivery sojourn in
    /// microseconds (figure P-1). Plots 0 when classification was off.
    ClassLatencyP99Micros(TrafficClass),
}

/// One figure: an id, a caption, curves, the swept input rates, and the
/// y-axis the value column plots.
pub struct Figure {
    /// Paper figure number, e.g. "6-1".
    pub id: &'static str,
    /// The paper's caption.
    pub caption: &'static str,
    /// (curve label, kernel configuration) pairs.
    pub curves: Vec<(String, KernelConfig)>,
    /// Input packet rates to sweep.
    pub rates: Vec<f64>,
    /// What the value column plots.
    pub axis: Axis,
    /// Per-curve axis overrides, parallel to `curves`. Empty (the usual
    /// case) means every curve plots `axis`; figure C-1 uses this to plot
    /// two ledger classes per kernel on one grid.
    pub curve_axes: Vec<Axis>,
}

/// The rates every throughput figure sweeps (as in the paper: 0 to 12,000
/// packets/second, denser around the MLFRR).
pub fn throughput_rates() -> Vec<f64> {
    vec![
        500.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0, 4_500.0, 5_000.0, 6_000.0, 7_000.0, 8_000.0,
        10_000.0, 12_000.0,
    ]
}

/// Figure 6-1: forwarding performance of the unmodified kernel.
pub fn fig6_1() -> Figure {
    Figure {
        id: "6-1",
        caption: "Forwarding performance of unmodified kernel",
        curves: vec![
            ("Without screend".into(), KernelConfig::builder().build()),
            (
                "With screend".into(),
                KernelConfig::builder().screend(Default::default()).build(),
            ),
        ],
        rates: throughput_rates(),
        axis: Axis::DeliveredPps,
        curve_axes: vec![],
    }
}

/// Figure 6-3: forwarding performance of the modified kernel, no screend.
pub fn fig6_3() -> Figure {
    Figure {
        id: "6-3",
        caption: "Forwarding performance of modified kernel, without using screend",
        curves: vec![
            ("Unmodified".into(), KernelConfig::builder().build()),
            ("No polling".into(), KernelConfig::builder().no_polling().build()),
            (
                "Polling (quota = 5)".into(),
                KernelConfig::builder().polled(Quota::Limited(5)).build(),
            ),
            (
                "Polling (no quota)".into(),
                KernelConfig::builder().polled(Quota::Unlimited).build(),
            ),
        ],
        rates: throughput_rates(),
        axis: Axis::DeliveredPps,
        curve_axes: vec![],
    }
}

/// Figure 6-4: forwarding performance of the modified kernel with screend.
pub fn fig6_4() -> Figure {
    Figure {
        id: "6-4",
        caption: "Forwarding performance of modified kernel, with screend",
        curves: vec![
            (
                "Unmodified".into(),
                KernelConfig::builder().screend(Default::default()).build(),
            ),
            (
                "Polling, no feedback".into(),
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .screend(Default::default())
                    .build(),
            ),
            (
                "Polling w/feedback".into(),
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .screend(Default::default())
                    .feedback(Default::default())
                    .build(),
            ),
        ],
        rates: throughput_rates(),
        axis: Axis::DeliveredPps,
        curve_axes: vec![],
    }
}

/// The quota values Figures 6-5 and 6-6 compare.
pub fn quota_values() -> Vec<(String, Quota)> {
    vec![
        ("quota = 5 packets".into(), Quota::Limited(5)),
        ("quota = 10 packets".into(), Quota::Limited(10)),
        ("quota = 20 packets".into(), Quota::Limited(20)),
        ("quota = 100 packets".into(), Quota::Limited(100)),
        ("quota = infinity".into(), Quota::Unlimited),
    ]
}

/// Figure 6-5: effect of the packet-count quota, no screend.
pub fn fig6_5() -> Figure {
    Figure {
        id: "6-5",
        caption: "Effect of packet-count quota on performance, no screend",
        curves: quota_values()
            .into_iter()
            .map(|(label, q)| (label, KernelConfig::builder().polled(q).build()))
            .collect(),
        rates: throughput_rates(),
        axis: Axis::DeliveredPps,
        curve_axes: vec![],
    }
}

/// Figure 6-6: effect of the packet-count quota, with screend (feedback on).
pub fn fig6_6() -> Figure {
    Figure {
        id: "6-6",
        caption: "Effect of packet-count quota on performance, with screend",
        curves: quota_values()
            .into_iter()
            .map(|(label, q)| {
                (
                    label,
                    KernelConfig::builder()
                        .polled(q)
                        .screend(Default::default())
                        .feedback(Default::default())
                        .build(),
                )
            })
            .collect(),
        rates: throughput_rates(),
        axis: Axis::DeliveredPps,
        curve_axes: vec![],
    }
}

/// The cycle-limit thresholds Figure 7-1 compares.
pub fn cycle_thresholds() -> Vec<f64> {
    vec![0.25, 0.50, 0.75, 1.00]
}

/// Figure 7-1: available user-mode CPU time under the cycle-limit
/// mechanism. (The y-axis is user CPU %, not packet rate.)
pub fn fig7_1() -> Figure {
    Figure {
        id: "7-1",
        caption: "User-mode CPU time available using cycle-limit mechanism",
        curves: cycle_thresholds()
            .into_iter()
            .map(|t| {
                (
                    format!("threshold {:.0} %", t * 100.0),
                    KernelConfig::builder()
                        .polled(Quota::Limited(5))
                        .cycle_limit(t)
                        .user_process(true)
                        .build(),
                )
            })
            .collect(),
        rates: vec![
            500.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0, 8_000.0, 10_000.0,
        ],
        axis: Axis::UserCpuPercent,
        curve_axes: vec![],
    }
}

/// The latency figure: 99th-percentile forwarding latency versus input
/// rate, unmodified vs polled. The paper's §3/§4.3 argue the modified
/// kernel keeps latency (and jitter) low because polling processes each
/// packet to completion instead of letting it age in `ipintrq`; this
/// figure plots the distribution tail that argument implies.
pub fn fig_latency() -> Figure {
    Figure {
        id: "L-1",
        caption: "99th-percentile forwarding latency vs input rate",
        curves: vec![
            ("Unmodified".into(), KernelConfig::builder().build()),
            (
                "Polling (quota = 5)".into(),
                KernelConfig::builder().polled(Quota::Limited(5)).build(),
            ),
        ],
        rates: throughput_rates(),
        axis: Axis::LatencyP99Micros,
        curve_axes: vec![],
    }
}

/// Figure C-1: where the CPU goes, from the conserved cycle ledger. Not
/// in the paper as a figure, but its central §3/§6.2 claim: at overload
/// the unmodified kernel spends essentially *all* CPU in receive-interrupt
/// context (delivered throughput collapses to zero), while the modified
/// kernel with a cycle limit preserves user+idle CPU. Each kernel plots
/// two curves — its rx-interrupt share and its user+idle share — so the
/// crossover is visible on one grid. The rate axis extends past the
/// throughput figures' 12,000 to near wire saturation (the 10 Mbit/s
/// Ethernet ceiling is ~14,880 pkts/s): interrupt batching amortizes
/// dispatch overhead, so the rx share keeps climbing with offered load
/// and passes 90% only above ~13,000 pkts/s.
pub fn fig_c1() -> Figure {
    let unmodified = KernelConfig::builder().screend(Default::default()).build();
    let polled = KernelConfig::builder()
        .polled(Quota::Limited(5))
        .cycle_limit(0.50)
        .user_process(true)
        .build();
    let mut rates = throughput_rates();
    rates.extend([13_000.0, 14_000.0]);
    Figure {
        id: "C-1",
        caption: "CPU-class share vs offered load (conserved cycle ledger)",
        curves: vec![
            ("Unmodified rx-intr".into(), unmodified.clone()),
            ("Unmodified user+idle".into(), unmodified),
            ("Polled rx-intr".into(), polled.clone()),
            ("Polled user+idle".into(), polled),
        ],
        rates,
        axis: Axis::RxIntrCpuPercent,
        curve_axes: vec![
            Axis::RxIntrCpuPercent,
            Axis::UserIdleCpuPercent,
            Axis::RxIntrCpuPercent,
            Axis::UserIdleCpuPercent,
        ],
    }
}

/// The rates figure S-1 sweeps: past a single wire's ~14,880 pkts/s
/// ceiling, because a multiqueue NIC is fed by one wire per RX queue and
/// the point of the figure is aggregate load beyond what one CPU (or one
/// wire) can carry.
pub fn smp_rates() -> Vec<f64> {
    vec![
        2_000.0, 4_000.0, 5_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0, 16_000.0, 20_000.0,
        28_000.0,
    ]
}

/// Figure S-1: SMP scaling of aggregate delivered throughput, plus where
/// each CPU's cycles go at 4 CPUs. Not in the paper — its §8 future-work
/// discussion is the closest — but the natural SMP question about both
/// designs: the unmodified path funnels every CPU into the single shared
/// `ipintrq` drained by CPU 0 under per-sibling lock contention, so its
/// MLFRR stays pinned near 1×; the polled path is per-CPU end to end
/// (RSS-steered RX queues, per-CPU polling threads and quotas), so its
/// MLFRR scales toward N×. The per-CPU busy curves make the mechanism
/// visible: at overload the unmodified cluster's CPU 0 saturates while
/// its siblings idle between ring drains, where the polled cluster's
/// CPUs stay evenly busy.
pub fn fig_s1() -> Figure {
    let unmod = |n: usize| KernelConfig::builder().ncpus(n).build();
    let polled = |n: usize| {
        KernelConfig::builder()
            .polled(Quota::Limited(10))
            .ncpus(n)
            .build()
    };
    Figure {
        id: "S-1",
        caption: "SMP scaling: shared-queue vs per-CPU polling, with per-CPU busy shares",
        curves: vec![
            ("Unmodified 1 CPU".into(), unmod(1)),
            ("Unmodified 2 CPUs".into(), unmod(2)),
            ("Unmodified 4 CPUs".into(), unmod(4)),
            ("Polling 1 CPU".into(), polled(1)),
            ("Polling 2 CPUs".into(), polled(2)),
            ("Polling 4 CPUs".into(), polled(4)),
            ("Unmodified 4-CPU cpu0 busy".into(), unmod(4)),
            ("Unmodified 4-CPU cpu1 busy".into(), unmod(4)),
            ("Polling 4-CPU cpu0 busy".into(), polled(4)),
            ("Polling 4-CPU cpu1 busy".into(), polled(4)),
        ],
        rates: smp_rates(),
        axis: Axis::DeliveredPps,
        curve_axes: vec![
            Axis::DeliveredPps,
            Axis::DeliveredPps,
            Axis::DeliveredPps,
            Axis::DeliveredPps,
            Axis::DeliveredPps,
            Axis::DeliveredPps,
            Axis::PerCpuBusyPercent(0),
            Axis::PerCpuBusyPercent(1),
            Axis::PerCpuBusyPercent(0),
            Axis::PerCpuBusyPercent(1),
        ],
    }
}

/// All figures in paper order, then the non-paper figures: latency
/// (L-1), the cycle-ledger CPU decomposition (C-1), and SMP scaling
/// (S-1).
pub fn all_figures() -> Vec<Figure> {
    vec![
        fig6_1(),
        fig6_3(),
        fig6_4(),
        fig6_5(),
        fig6_6(),
        fig7_1(),
        fig_latency(),
        fig_c1(),
        fig_s1(),
    ]
}

/// Packets per trial. The paper used 10,000; the full-fidelity value is
/// used by the `figures` binary, while Criterion benches use fewer to keep
/// iteration times sane.
pub const PAPER_TRIAL_PACKETS: usize = 10_000;

/// Runs one figure curve: a sweep of trials over the figure's rates.
pub fn run_curve(
    label: &str,
    config: &KernelConfig,
    rates: &[f64],
    n_packets: usize,
    par: Parallelism,
) -> SweepResult {
    let base = TrialSpec {
        n_packets,
        ..TrialSpec::new(config.clone())
    };
    sweep(label, &base, rates, par)
}

/// A rendered figure: one row per rate, one column per curve.
pub struct RenderedFigure {
    /// Which figure.
    pub id: &'static str,
    /// Caption.
    pub caption: &'static str,
    /// The swept x-axis values (input rates for the paper figures,
    /// fault intensities for R-1).
    pub rates: Vec<f64>,
    /// Per-curve results.
    pub curves: Vec<SweepResult>,
    /// What the value column plots.
    pub axis: Axis,
    /// Per-curve axis overrides (see [`Figure::curve_axes`]).
    pub curve_axes: Vec<Axis>,
    /// Header label for the x column (`input_pps` for rate sweeps,
    /// `fault_intensity` for R-1).
    pub x_label: &'static str,
}

/// Formats an x-axis value: integral rates print bare (as every
/// committed rate-sweep CSV always has), fractional fault intensities
/// keep two decimals.
fn fmt_x(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

impl RenderedFigure {
    /// The axis a specific curve plots: its override when the figure has
    /// per-curve axes, the figure-wide [`RenderedFigure::axis`] otherwise.
    pub fn curve_axis(&self, curve: usize) -> Axis {
        self.curve_axes.get(curve).copied().unwrap_or(self.axis)
    }

    /// Value for (curve, point), in the units of that curve's axis.
    pub fn value(&self, curve: usize, point: usize) -> f64 {
        let t = &self.curves[curve].trials[point];
        match self.curve_axis(curve) {
            Axis::DeliveredPps => t.delivered_pps,
            Axis::UserCpuPercent => t.aggregate().user_cpu_frac * 100.0,
            Axis::LatencyP99Micros => t.latency_p99.as_micros_f64(),
            Axis::RxIntrCpuPercent => t.aggregate().cpu_share[CpuClass::RxIntr.index()] * 100.0,
            Axis::UserIdleCpuPercent => {
                let agg = t.aggregate().cpu_share;
                (agg[CpuClass::UserProc.index()] + agg[CpuClass::Idle.index()]) * 100.0
            }
            Axis::PerCpuBusyPercent(k) => t
                .per_cpu()
                .get(k as usize)
                .map_or(0.0, |c| (1.0 - c.cpu_share[CpuClass::Idle.index()]) * 100.0),
            Axis::LivelockOnsetMillis => t
                .events
                .iter()
                .find(|ev| matches!(ev.kind, ObsEventKind::LivelockOnset { .. }))
                .map_or(0.0, |ev| {
                    // Every committed figure runs the default calibrated
                    // cost model, so its frequency converts the onset
                    // cycle-stamp to simulated time.
                    let freq = KernelConfig::builder().build().cost.freq;
                    freq.nanos_from_cycles(ev.at).as_micros_f64() / 1_000.0
                }),
            Axis::StarvedFlows => t
                .events
                .iter()
                .filter(|ev| matches!(ev.kind, ObsEventKind::FlowStarved { .. }))
                .count() as f64,
            Axis::ClassDeliveredPps(c) => t
                .per_class()
                .iter()
                .find(|s| s.class == c)
                .map_or(0.0, |s| s.delivered_pps),
            Axis::ClassLatencyP99Micros(c) => t
                .per_class()
                .iter()
                .find(|s| s.class == c)
                .map_or(0.0, |s| s.latency_p99.as_micros_f64()),
        }
    }

    /// Formats the figure as an aligned text table (also valid
    /// whitespace-separated data for plotting).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Figure {}: {}", self.id, self.caption);
        let _ = write!(out, "{:>12}", self.x_label);
        for c in &self.curves {
            let _ = write!(out, "  {:>24}", c.label.replace(' ', "_"));
        }
        let _ = writeln!(out);
        for (pi, rate) in self.rates.iter().enumerate() {
            let _ = write!(out, "{:>12}", fmt_x(*rate));
            for ci in 0..self.curves.len() {
                let _ = write!(out, "  {:>24.1}", self.value(ci, pi));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Formats the figure as CSV.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for c in &self.curves {
            let _ = write!(out, ",{}", c.label.replace(',', ";"));
        }
        let _ = writeln!(out);
        for (pi, rate) in self.rates.iter().enumerate() {
            let _ = write!(out, "{}", fmt_x(*rate));
            for ci in 0..self.curves.len() {
                let _ = write!(out, ",{:.2}", self.value(ci, pi));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// One-line shape summary per curve: MLFRR, peak, tail, verdict.
    pub fn shape_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.curves {
            if self.axis != Axis::DeliveredPps {
                continue;
            }
            let pts = c.points();
            let m = mlfrr(&pts, 0.95).unwrap_or(0.0);
            let stab = overload_stability(&pts);
            let verdict = classify(&pts, 0.10, 0.80);
            let _ = writeln!(
                out,
                "#   {:<28} MLFRR≈{:>6.0}  stability={:.2}  {:?}",
                c.label, m, stab, verdict
            );
        }
        out
    }
}

/// Regenerates one figure at the given trial size.
///
/// The work list is the flattened (curve × rate) grid, not per-curve
/// sweeps, so the available parallelism is `curves.len() * rates.len()`
/// trials (e.g. 60 for Figure 6-5) rather than just one curve's rates.
/// Every trial is independently seeded, so the output is bit-for-bit
/// identical across every [`Parallelism`] choice.
pub fn render_figure(fig: &Figure, n_packets: usize, par: Parallelism) -> RenderedFigure {
    render_figure_with_scheduler(fig, n_packets, par, None)
}

/// [`render_figure`] with the engine's event-scheduler backend forced to
/// `scheduler` (`None` keeps each curve's configured backend — the
/// calendar default). Both backends dispatch identically, so the figure's
/// numbers cannot depend on this choice; the `perf --json` trajectory
/// harness uses the override to time heap vs calendar on the same trials.
pub fn render_figure_with_scheduler(
    fig: &Figure,
    n_packets: usize,
    par: Parallelism,
    scheduler: Option<SchedulerKind>,
) -> RenderedFigure {
    let work: Vec<(usize, f64)> = fig
        .curves
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| fig.rates.iter().map(move |&r| (ci, r)))
        .collect();
    let mut trials = par_map(&work, par.jobs(), |&(ci, rate_pps)| {
        let (_, cfg) = &fig.curves[ci];
        let mut cfg = cfg.clone();
        if let Some(kind) = scheduler {
            cfg.scheduler = kind;
        }
        run_trial(&TrialSpec {
            rate_pps,
            n_packets,
            ..TrialSpec::new(cfg)
        })
    })
    .into_iter();
    let curves = fig
        .curves
        .iter()
        .map(|(label, _)| SweepResult {
            label: label.clone(),
            trials: trials.by_ref().take(fig.rates.len()).collect(),
        })
        .collect();
    RenderedFigure {
        id: fig.id,
        caption: fig.caption,
        rates: fig.rates.clone(),
        curves,
        axis: fig.axis,
        curve_axes: fig.curve_axes.clone(),
        x_label: "input_pps",
    }
}

/// The fault intensities figure R-1 sweeps (0 = the fault-free
/// baseline; the storm's event count scales linearly with intensity).
pub fn r1_intensities() -> Vec<f64> {
    vec![0.0, 0.5, 1.0, 2.0, 4.0]
}

/// R-1's fixed offered load: past the screend path's MLFRR (≈ 2000
/// pkts/s), where the unmodified kernel is already sliding down its
/// overload curve while the polled kernel holds its plateau — fault
/// damage separates the two instead of vanishing into headroom.
pub const R1_RATE_PPS: f64 = 3_000.0;

/// The seed every R-1 storm derives from: the figure is a deterministic
/// function of (seed, intensity, trial length) only.
pub const R1_STORM_SEED: u64 = 0xFA17;

/// The seeded storm R-1 injects at one intensity into a trial of
/// `n_packets` at [`R1_RATE_PPS`]: the storm window covers the middle
/// 80% of the trial, clear of warm-up and tail.
pub fn r1_storm(config: &KernelConfig, intensity: f64, n_packets: usize) -> FaultPlan {
    let freq = config.cost.freq;
    let total_ms = (n_packets as f64 / R1_RATE_PPS * 1_000.0) as u64;
    FaultPlan::storm(
        R1_STORM_SEED,
        intensity,
        freq.cycles_from_millis(total_ms / 10),
        freq.cycles_from_millis(total_ms * 9 / 10),
    )
}

/// Figure R-1: graceful degradation under a seeded fault storm.
/// Delivered throughput and p99 latency versus fault intensity at a
/// fixed offered load, unmodified vs polled-with-feedback, both routing
/// through screend. Rendered outside [`all_figures`] because its x-axis
/// is fault intensity, not input rate.
pub fn render_fig_r1(n_packets: usize, par: Parallelism) -> RenderedFigure {
    let unmod = KernelConfig::builder().screend(Default::default()).build();
    let polled = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .feedback(Default::default())
        .build();
    let curve_defs: Vec<(String, KernelConfig, Axis)> = vec![
        ("Unmodified delivered".into(), unmod.clone(), Axis::DeliveredPps),
        ("Polling w/feedback delivered".into(), polled.clone(), Axis::DeliveredPps),
        ("Unmodified p99".into(), unmod, Axis::LatencyP99Micros),
        ("Polling w/feedback p99".into(), polled, Axis::LatencyP99Micros),
    ];
    let intensities = r1_intensities();
    let work: Vec<(usize, f64)> = curve_defs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| intensities.iter().map(move |&x| (ci, x)))
        .collect();
    let mut trials = par_map(&work, par.jobs(), |&(ci, intensity)| {
        let (_, cfg, _) = &curve_defs[ci];
        let mut cfg = cfg.clone();
        let plan = r1_storm(&cfg, intensity, n_packets);
        // Intensity 0 leaves the plan out entirely, making the baseline
        // column provably identical to a fault-free build.
        if !plan.is_empty() {
            cfg.faults = Some(plan);
        }
        run_trial(&TrialSpec {
            rate_pps: R1_RATE_PPS,
            n_packets,
            ..TrialSpec::new(cfg)
        })
    })
    .into_iter();
    let curves = curve_defs
        .iter()
        .map(|(label, _, _)| SweepResult {
            label: label.clone(),
            trials: trials.by_ref().take(intensities.len()).collect(),
        })
        .collect();
    RenderedFigure {
        id: "R-1",
        caption: "Graceful degradation under seeded fault storm (3000 pkts/s offered)",
        rates: intensities,
        curves,
        axis: Axis::DeliveredPps,
        curve_axes: curve_defs.iter().map(|&(_, _, a)| a).collect(),
        x_label: "fault_intensity",
    }
}

/// The offered rates figure O-1 sweeps: from well under the screend
/// path's MLFRR (≈ 2000 pkts/s) to deep overload, so the onset curve
/// shows livelock arriving earlier as load climbs past the knee.
pub fn o1_rates() -> Vec<f64> {
    vec![1_000.0, 2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0]
}

/// The fixed eight-flow port set every O-1 trial cycles its packets
/// through: enough distinct flows that the starved-flow count carries
/// signal, few enough that each flow still sees a loaded detector
/// window at every swept rate.
pub fn o1_flows() -> Vec<u16> {
    (0..8).map(|i| 6_000 + i * 17).collect()
}

/// Figure O-1: online livelock detection. Time-to-livelock-onset (in
/// simulated milliseconds; 0 = never) and starved-flow count versus
/// offered load, unmodified vs polled-with-feedback, both routing
/// through screend with the observability layer enabled. Rendered
/// outside [`all_figures`] because its y-axes are detector outputs, not
/// throughput.
pub fn render_fig_o1(n_packets: usize, par: Parallelism) -> RenderedFigure {
    let unmod = KernelConfig::builder()
        .screend(Default::default())
        .observe(ObserveConfig::default())
        .build();
    let polled = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .feedback(Default::default())
        .observe(ObserveConfig::default())
        .build();
    let curve_defs: Vec<(String, KernelConfig, Axis)> = vec![
        ("Unmodified onset".into(), unmod.clone(), Axis::LivelockOnsetMillis),
        (
            "Polling w/feedback onset".into(),
            polled.clone(),
            Axis::LivelockOnsetMillis,
        ),
        ("Unmodified starved flows".into(), unmod, Axis::StarvedFlows),
        ("Polling w/feedback starved flows".into(), polled, Axis::StarvedFlows),
    ];
    let rates = o1_rates();
    let work: Vec<(usize, f64)> = curve_defs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| rates.iter().map(move |&r| (ci, r)))
        .collect();
    let mut trials = par_map(&work, par.jobs(), |&(ci, rate_pps)| {
        let (_, cfg, _) = &curve_defs[ci];
        run_trial(&TrialSpec {
            rate_pps,
            n_packets,
            flows: Some(o1_flows()),
            ..TrialSpec::new(cfg.clone())
        })
    })
    .into_iter();
    let curves = curve_defs
        .iter()
        .map(|(label, _, _)| SweepResult {
            label: label.clone(),
            trials: trials.by_ref().take(rates.len()).collect(),
        })
        .collect();
    RenderedFigure {
        id: "O-1",
        caption: "Online livelock detection: onset time and starved flows vs offered load",
        rates,
        curves,
        axis: Axis::LivelockOnsetMillis,
        curve_axes: curve_defs.iter().map(|&(_, _, a)| a).collect(),
        x_label: "input_pps",
    }
}

/// Checks the rendered observability figure (O-1) against the online
/// detector's claims. Returns human-readable violations (empty = the
/// claims hold):
///
/// - the unmodified kernel shows no onset below the screend MLFRR and a
///   positive onset cycle-stamp at the heaviest load — and once a swept
///   rate livelocks, every heavier rate does too;
/// - the polled kernel with feedback never produces an onset at any
///   swept rate (livelock avoidance), and never starves more flows than
///   the unmodified kernel does at the same rate (the feedback gate may
///   leave a flow briefly unserved, but must not be *worse* than
///   livelock);
/// - at the heaviest load the unmodified kernel starves at least half
///   the tracked flow set (under livelock nothing is served, so the
///   per-flow watch must fire broadly) and strictly more flows than the
///   polled kernel.
pub fn observe_shape_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if r.id != "O-1" {
        return v;
    }
    let find = |needle: &str| {
        r.curves
            .iter()
            .position(|c| c.label.to_lowercase().contains(needle))
    };
    let (Some(u_on), Some(p_on), Some(u_st), Some(p_st)) = (
        find("unmodified onset"),
        find("feedback onset"),
        find("unmodified starved"),
        find("feedback starved"),
    ) else {
        v.push(format!(
            "fig {}: needs unmodified and polling-with-feedback onset and starved-flow curves",
            r.id
        ));
        return v;
    };
    let last = r.rates.len() - 1;
    if r.value(u_on, 0) != 0.0 {
        v.push(format!(
            "fig {}: unmodified kernel reports livelock onset at {:.0} pkts/s, \
             below the screend MLFRR",
            r.id, r.rates[0]
        ));
    }
    if r.value(u_on, last) <= 0.0 {
        v.push(format!(
            "fig {}: unmodified kernel reports no livelock onset at {:.0} pkts/s \
             (deep overload)",
            r.id, r.rates[last]
        ));
    }
    if let Some(first) = (0..r.rates.len()).find(|&pi| r.value(u_on, pi) > 0.0) {
        for pi in first..r.rates.len() {
            if r.value(u_on, pi) <= 0.0 {
                v.push(format!(
                    "fig {}: unmodified kernel livelocks at {:.0} pkts/s but not at \
                     the heavier {:.0} pkts/s",
                    r.id, r.rates[first], r.rates[pi]
                ));
            }
        }
    }
    for pi in 0..r.rates.len() {
        if r.value(p_on, pi) != 0.0 {
            v.push(format!(
                "fig {}: polled kernel reports livelock onset at {:.0} pkts/s",
                r.id, r.rates[pi]
            ));
        }
        if r.value(p_st, pi) > r.value(u_st, pi) {
            v.push(format!(
                "fig {}: polled kernel starves more flows than unmodified at \
                 {:.0} pkts/s ({:.0} vs {:.0})",
                r.id,
                r.rates[pi],
                r.value(p_st, pi),
                r.value(u_st, pi)
            ));
        }
    }
    let half_flows = o1_flows().len() as f64 / 2.0;
    if r.value(u_st, last) < half_flows {
        v.push(format!(
            "fig {}: unmodified kernel starves only {:.0} flows at {:.0} pkts/s \
             (livelock serves nothing, so the per-flow watch must fire broadly)",
            r.id,
            r.value(u_st, last),
            r.rates[last]
        ));
    }
    if r.value(p_st, last) >= r.value(u_st, last) {
        v.push(format!(
            "fig {}: polled kernel starves as many flows as unmodified at \
             {:.0} pkts/s ({:.0} vs {:.0})",
            r.id,
            r.rates[last],
            r.value(p_st, last),
            r.value(u_st, last)
        ));
    }
    v
}

/// The fixed eight-flow port set every P-1 trial cycles its packets
/// through: one `Control` flow, one `Realtime` flow and six `Bulk`
/// flows, so offered load splits 1/8 : 1/8 : 6/8 across the classes.
pub fn p1_flows() -> Vec<u16> {
    vec![7_000, 7_100, 7_200, 7_201, 7_202, 7_203, 7_204, 7_205]
}

/// The classification policy figure P-1 (and `chaos --priority`) runs:
/// source port 7000 is `Control`, 7100 is `Realtime`, everything else
/// falls to the default `Bulk` class.
///
/// The shed hysteresis is tighter than the config default because the
/// screend queue — the bottleneck the controller watches — is FIFO:
/// every packet already admitted ahead of a `Control` packet adds a
/// full service time (~hundreds of microseconds) to its sojourn, so
/// meeting a single-digit-millisecond SLO means shedding early enough
/// that the queue stays shallow, not just short of overflow.
pub fn p1_classify_config() -> ClassifyConfig {
    ClassifyConfig {
        rules: vec![
            MatchRule::src_port(7_000, TrafficClass::Control),
            MatchRule::src_port(7_100, TrafficClass::Realtime),
        ],
        shed: livelock_kernel::config::ShedConfig {
            shed_hi_frac: 0.125,
            restore_lo_frac: 0.0,
            min_hold_ticks: 2,
        },
        slo_p99_us: 5_000.0,
        ..ClassifyConfig::default()
    }
}

/// Figure P-1: priority-aware overload. Per-class delivered throughput
/// and `Control` p99 latency versus offered load for the polled kernel
/// with classification (strict-priority drain + SLO-guarded shedding),
/// against the single-class unmodified kernel — both routing through
/// screend, both fed the same eight-flow mix ([`p1_flows`]). Rendered
/// outside [`all_figures`] because its y-axes mix per-class rates and
/// latencies.
pub fn render_fig_p1(n_packets: usize, par: Parallelism) -> RenderedFigure {
    let classified = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .classes(p1_classify_config())
        .build();
    let unmod = KernelConfig::builder().screend(Default::default()).build();
    let curve_defs: Vec<(String, KernelConfig, Axis)> = vec![
        (
            "Classified control delivered".into(),
            classified.clone(),
            Axis::ClassDeliveredPps(TrafficClass::Control),
        ),
        (
            "Classified realtime delivered".into(),
            classified.clone(),
            Axis::ClassDeliveredPps(TrafficClass::Realtime),
        ),
        (
            "Classified bulk delivered".into(),
            classified.clone(),
            Axis::ClassDeliveredPps(TrafficClass::Bulk),
        ),
        ("Unmodified delivered".into(), unmod.clone(), Axis::DeliveredPps),
        (
            "Classified control p99".into(),
            classified,
            Axis::ClassLatencyP99Micros(TrafficClass::Control),
        ),
        ("Unmodified p99".into(), unmod, Axis::LatencyP99Micros),
    ];
    let rates = throughput_rates();
    let work: Vec<(usize, f64)> = curve_defs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| rates.iter().map(move |&r| (ci, r)))
        .collect();
    let mut trials = par_map(&work, par.jobs(), |&(ci, rate_pps)| {
        let (_, cfg, _) = &curve_defs[ci];
        run_trial(&TrialSpec {
            rate_pps,
            n_packets,
            flows: Some(p1_flows()),
            ..TrialSpec::new(cfg.clone())
        })
    })
    .into_iter();
    let curves = curve_defs
        .iter()
        .map(|(label, _, _)| SweepResult {
            label: label.clone(),
            trials: trials.by_ref().take(rates.len()).collect(),
        })
        .collect();
    RenderedFigure {
        id: "P-1",
        caption: "Priority-aware overload: per-class delivery and Control p99 vs offered load",
        rates,
        curves,
        axis: Axis::DeliveredPps,
        curve_axes: curve_defs.iter().map(|(_, _, a)| *a).collect(),
        x_label: "input_pps",
    }
}

/// Checks the rendered priority figure (P-1) against the tentpole's
/// claims. Returns human-readable violations (empty = the claims hold):
///
/// - `Control` is never shed and its p99 meets the SLO at every swept
///   rate — including the deep-overload rates where the single-class
///   unmodified kernel has collapsed (delivery under 10% of offered and
///   p99 far above the classified `Control`'s);
/// - at the heaviest load the classified kernel still delivers
///   near-all of the offered `Control` share (its 1/8 of the mix);
/// - the shedding lands on `Bulk`: bulk sheds dominate realtime sheds,
///   and per-class arrived/delivered/shed counters stay consistent
///   (shed + delivered never exceeds arrived).
pub fn priority_shape_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if r.id != "P-1" {
        return v;
    }
    let find = |needle: &str| {
        r.curves
            .iter()
            .position(|c| c.label.to_lowercase().contains(needle))
    };
    let (Some(ctrl), Some(u_del), Some(ctrl_p99), Some(u_p99)) = (
        find("control delivered"),
        find("unmodified delivered"),
        find("control p99"),
        find("unmodified p99"),
    ) else {
        v.push(format!(
            "fig {}: needs classified control delivered/p99 and unmodified delivered/p99 curves",
            r.id
        ));
        return v;
    };
    let slo_us = p1_classify_config().slo_p99_us;
    let n_flows = p1_flows().len() as f64;
    let last = r.rates.len() - 1;
    for (pi, &rate) in r.rates.iter().enumerate() {
        let p99 = r.value(ctrl_p99, pi);
        if p99 > slo_us {
            v.push(format!(
                "fig {}: classified Control p99 is {p99:.0} us at {rate:.0} pkts/s, \
                 above the {slo_us:.0} us SLO",
                r.id
            ));
        }
        for t in r.curves[ctrl].trials.get(pi).iter().copied() {
            for s in t.per_class() {
                if s.shed + s.delivered > s.arrived {
                    v.push(format!(
                        "fig {}: class {} shed {} + delivered {} exceeds arrived {} \
                         at {rate:.0} pkts/s",
                        r.id,
                        s.class.label(),
                        s.shed,
                        s.delivered,
                        s.arrived
                    ));
                }
                if s.class == TrafficClass::Control && s.shed > 0 {
                    v.push(format!(
                        "fig {}: {} Control packets shed at {rate:.0} pkts/s \
                         (Control must never be shed)",
                        r.id, s.shed
                    ));
                }
            }
        }
    }
    // Deep overload: the unmodified kernel has collapsed...
    let u = r.value(u_del, last);
    if u > 0.10 * r.rates[last] {
        v.push(format!(
            "fig {}: unmodified kernel still delivers {u:.0} pkts/s at {:.0} offered; \
             expected collapse below 10%",
            r.id, r.rates[last]
        ));
    }
    // ...while the classified kernel still serves Control's full share.
    let ctrl_share = r.rates[last] / n_flows;
    let c = r.value(ctrl, last);
    if c < 0.9 * ctrl_share {
        v.push(format!(
            "fig {}: classified Control delivers {c:.0} pkts/s at {:.0} offered, \
             expected >= 90% of its {ctrl_share:.0} pkts/s share",
            r.id, r.rates[last]
        ));
    }
    // Once livelocked the unmodified kernel delivers nothing and its p99
    // reads 0, so the latency comparison uses each curve's worst point.
    let max_of = |ci: usize| {
        (0..r.rates.len())
            .map(|pi| r.value(ci, pi))
            .fold(0.0_f64, f64::max)
    };
    if max_of(u_p99) < 2.0 * max_of(ctrl_p99).max(1.0) {
        v.push(format!(
            "fig {}: worst unmodified p99 ({:.0} us) does not sit well above the worst \
             classified Control p99 ({:.0} us)",
            r.id,
            max_of(u_p99),
            max_of(ctrl_p99)
        ));
    }
    // The shedding lands on Bulk: at the heaviest rate bulk sheds exist
    // and dominate.
    if let Some(t) = r.curves[ctrl].trials.last() {
        let shed_of = |c: TrafficClass| {
            t.per_class()
                .iter()
                .find(|s| s.class == c)
                .map_or(0, |s| s.shed)
        };
        let bulk = shed_of(TrafficClass::Bulk);
        if bulk == 0 {
            v.push(format!(
                "fig {}: no Bulk packets shed at {:.0} pkts/s (the gate never engaged)",
                r.id, r.rates[last]
            ));
        }
        if shed_of(TrafficClass::Realtime) > bulk {
            v.push(format!(
                "fig {}: Realtime sheds exceed Bulk sheds at {:.0} pkts/s \
                 (shedding must land on the lowest class first)",
                r.id, r.rates[last]
            ));
        }
    }
    v
}

/// Convenience for benches: a single trial of a figure's first curve at a
/// representative overload rate.
pub fn one_overload_trial(fig: &Figure, curve: usize, n_packets: usize) -> f64 {
    let (_, cfg) = &fig.curves[curve];
    let r = run_trial(&TrialSpec {
        rate_pps: 8_000.0,
        n_packets,
        ..TrialSpec::new(cfg.clone())
    });
    r.delivered_pps
}

/// Checks a rendered throughput figure against the paper's qualitative
/// shape, returning human-readable violations (empty = shape holds).
pub fn shape_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if r.axis != Axis::DeliveredPps {
        return v;
    }
    for c in &r.curves {
        let pts = c.points();
        let label = &c.label;
        let lower = label.to_lowercase();
        let verdict = classify(&pts, 0.10, 0.80);
        // Expectations straight from the paper's figures. In 6-6 the
        // queue-state feedback "prevents livelock" at every quota,
        // infinity included.
        let expect_livelock = match r.id {
            "6-1" => lower.contains("with screend"),
            "6-3" => lower.contains("no quota"),
            "6-4" => lower.contains("unmodified") || lower.contains("no feedback"),
            "6-5" => lower.contains("infinity"),
            _ => false,
        };
        let expect_plateau = match r.id {
            "6-3" => lower.contains("quota = 5"),
            "6-4" => lower.contains("w/feedback"),
            "6-5" => ["= 5", "= 10", "= 20"].iter().any(|q| lower.contains(q)),
            "6-6" => true,
            _ => false,
        };
        if expect_plateau && verdict != LivelockVerdict::StablePlateau {
            v.push(format!(
                "fig {}: {label} expected plateau, got {verdict:?}",
                r.id
            ));
        }
        if expect_livelock && verdict != LivelockVerdict::Livelock {
            v.push(format!(
                "fig {}: {label} expected livelock, got {verdict:?}",
                r.id
            ));
        }
    }
    v
}

/// Checks the rendered latency figure against the paper's §3 argument:
/// under overload the polled kernel processes each accepted packet to
/// completion, so its tail latency must sit well below the unmodified
/// kernel's, whose delivered packets age in long queues under constant
/// interruption. Returns human-readable violations (empty = shape holds).
pub fn latency_shape_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if r.axis != Axis::LatencyP99Micros {
        return v;
    }
    let find = |needle: &str| {
        r.curves
            .iter()
            .position(|c| c.label.to_lowercase().contains(needle))
    };
    let (Some(unmod), Some(polled)) = (find("unmodified"), find("polling")) else {
        v.push(format!(
            "fig {}: latency figure needs an unmodified and a polling curve",
            r.id
        ));
        return v;
    };
    let last = r.rates.len() - 1;
    let unmod_p99 = r.value(unmod, last);
    let polled_p99 = r.value(polled, last);
    if polled_p99 * 2.0 > unmod_p99 {
        v.push(format!(
            "fig {}: at {:.0} pkts/s polled p99 ({polled_p99:.0} us) is not \
             well below unmodified p99 ({unmod_p99:.0} us)",
            r.id, r.rates[last]
        ));
    }
    v
}

/// Checks the rendered cycle-ledger figure (C-1) against the paper's
/// §3/§6.2 CPU-accounting claim. Returns human-readable violations
/// (empty = the claim holds):
///
/// - every trial's nine class shares sum to 1 (the conservation invariant
///   survives the whole pipeline);
/// - at the highest offered rate the unmodified kernel spends ≥ 90% of
///   the CPU in receive-interrupt context, delivers ≈ nothing, and leaves
///   ≤ 5% for user+idle — the livelock;
/// - at the highest offered rate the polled kernel with a 50% cycle limit
///   keeps user+idle above 35% (the limit's floor: 50% minus the fixed
///   clock/scheduler overhead; the paper's Figure 7-1 measured ~40%).
pub fn cpu_share_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if !matches!(r.axis, Axis::RxIntrCpuPercent | Axis::UserIdleCpuPercent) {
        return v;
    }
    for c in &r.curves {
        for t in &c.trials {
            for cpu in t.per_cpu() {
                let sum: f64 = cpu.cpu_share.iter().sum();
                if (sum - 1.0).abs() > 1e-9 {
                    v.push(format!(
                        "fig {}: {} cpu {:?} cpu_share sums to {sum}, not 1 \
                         (ledger not conserved)",
                        r.id, c.label, cpu.cpu
                    ));
                }
            }
        }
    }
    let find = |needle: &str| {
        r.curves
            .iter()
            .position(|c| c.label.to_lowercase().contains(needle))
    };
    let (Some(unmod_rx), Some(unmod_ui), Some(polled_ui)) = (
        find("unmodified rx-intr"),
        find("unmodified user+idle"),
        find("polled user+idle"),
    ) else {
        v.push(format!(
            "fig {}: needs unmodified rx-intr/user+idle and polled user+idle curves",
            r.id
        ));
        return v;
    };
    let last = r.rates.len() - 1;
    let rx = r.value(unmod_rx, last);
    if rx < 90.0 {
        v.push(format!(
            "fig {}: at {:.0} pkts/s unmodified rx-intr share is {rx:.1}%, expected >= 90%",
            r.id, r.rates[last]
        ));
    }
    let t = &r.curves[unmod_rx].trials[last];
    if t.delivered_pps > 0.01 * t.offered_pps {
        v.push(format!(
            "fig {}: unmodified kernel still delivers {:.0} pkts/s at {:.0} offered; \
             expected collapse to ~0",
            r.id, t.delivered_pps, t.offered_pps
        ));
    }
    let ui = r.value(unmod_ui, last);
    if ui > 5.0 {
        v.push(format!(
            "fig {}: unmodified user+idle share is {ui:.1}% at overload, expected <= 5%",
            r.id
        ));
    }
    let pui = r.value(polled_ui, last);
    if pui < 35.0 {
        v.push(format!(
            "fig {}: polled user+idle share is {pui:.1}% at overload, expected >= 35% \
             (the 50% cycle-limit floor)",
            r.id
        ));
    }
    v
}

/// Checks the rendered SMP-scaling figure (S-1) against the tentpole's
/// claims. Returns human-readable violations (empty = the claims hold):
///
/// - every trial's per-CPU nine class shares each sum to 1 (the ledger
///   conservation invariant holds on every CPU of every cluster size);
/// - the polled path's MLFRR scales: ≥ 1.7× at 2 CPUs and ≥ 2.5× at 4
///   (RSS steering and per-CPU queues buy real parallel capacity);
/// - the shared-queue path's MLFRR does not: ≤ 1.2× at 2 CPUs and
///   ≤ 1.3× at 4 (the single `ipintrq` and its lock serialize the IP
///   layer no matter how many CPUs feed it).
pub fn smp_shape_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if r.id != "S-1" {
        return v;
    }
    for c in &r.curves {
        for t in &c.trials {
            for cpu in t.per_cpu() {
                let sum: f64 = cpu.cpu_share.iter().sum();
                if (sum - 1.0).abs() > 1e-9 {
                    v.push(format!(
                        "fig {}: {} cpu {:?} shares sum to {sum}, not 1",
                        r.id, c.label, cpu.cpu
                    ));
                }
            }
        }
    }
    let find = |needle: &str| {
        r.curves
            .iter()
            .position(|c| c.label.eq_ignore_ascii_case(needle))
    };
    let (Some(u1), Some(u2), Some(u4), Some(p1), Some(p2), Some(p4)) = (
        find("Unmodified 1 CPU"),
        find("Unmodified 2 CPUs"),
        find("Unmodified 4 CPUs"),
        find("Polling 1 CPU"),
        find("Polling 2 CPUs"),
        find("Polling 4 CPUs"),
    ) else {
        v.push(format!(
            "fig {}: needs unmodified and polling curves at 1, 2 and 4 CPUs",
            r.id
        ));
        return v;
    };
    let m = |ci: usize| mlfrr(&r.curves[ci].points(), 0.95).unwrap_or(0.0);
    let (mu1, mu2, mu4) = (m(u1), m(u2), m(u4));
    let (mp1, mp2, mp4) = (m(p1), m(p2), m(p4));
    if mp1 <= 0.0 || mu1 <= 0.0 {
        v.push(format!(
            "fig {}: single-CPU MLFRRs must be positive (unmod {mu1:.0}, polled {mp1:.0})",
            r.id
        ));
        return v;
    }
    let checks = [
        (mp2 / mp1 >= 1.7, format!(
            "polled MLFRR must scale >= 1.7x at 2 CPUs, got {:.2}x ({mp2:.0}/{mp1:.0})",
            mp2 / mp1
        )),
        (mp4 / mp1 >= 2.5, format!(
            "polled MLFRR must scale >= 2.5x at 4 CPUs, got {:.2}x ({mp4:.0}/{mp1:.0})",
            mp4 / mp1
        )),
        (mu2 / mu1 <= 1.2, format!(
            "shared-queue MLFRR must stay <= 1.2x at 2 CPUs, got {:.2}x ({mu2:.0}/{mu1:.0})",
            mu2 / mu1
        )),
        (mu4 / mu1 <= 1.3, format!(
            "shared-queue MLFRR must stay <= 1.3x at 4 CPUs, got {:.2}x ({mu4:.0}/{mu1:.0})",
            mu4 / mu1
        )),
    ];
    for (ok, msg) in checks {
        if !ok {
            v.push(format!("fig {}: {msg}", r.id));
        }
    }
    v
}

/// Checks the rendered fault figure (R-1) against the
/// graceful-degradation claim: the polled kernel must keep delivering
/// at every fault intensity (no fault-induced livelock or permanent
/// wedge), must not degrade past half its fault-free throughput even at
/// the heaviest storm, and must end the sweep no worse than the
/// unmodified kernel. Returns human-readable violations (empty = the
/// claim holds).
pub fn fault_shape_violations(r: &RenderedFigure) -> Vec<String> {
    let mut v = Vec::new();
    if r.id != "R-1" {
        return v;
    }
    let find = |needle: &str| {
        r.curves
            .iter()
            .position(|c| c.label.to_lowercase().contains(needle))
    };
    let (Some(unmod), Some(polled)) = (
        find("unmodified delivered"),
        find("feedback delivered"),
    ) else {
        v.push(format!(
            "fig {}: needs unmodified and polling-with-feedback delivered curves",
            r.id
        ));
        return v;
    };
    for (pi, &x) in r.rates.iter().enumerate() {
        let d = r.value(polled, pi);
        if d <= 0.0 {
            v.push(format!(
                "fig {}: polled kernel delivers nothing at fault intensity {x} \
                 (fault-induced livelock)",
                r.id
            ));
        }
    }
    let base = r.value(polled, 0);
    if base < 1_500.0 {
        v.push(format!(
            "fig {}: fault-free polled baseline is {base:.0} pkts/s, \
             expected the MLFRR plateau (>= 1500)",
            r.id
        ));
    }
    let last = r.rates.len() - 1;
    let worst = r.value(polled, last);
    if worst < 0.5 * base {
        v.push(format!(
            "fig {}: polled throughput degrades from {base:.0} to {worst:.0} pkts/s \
             at the heaviest storm, expected graceful (>= 50% of baseline)",
            r.id
        ));
    }
    if r.value(unmod, last) > worst {
        v.push(format!(
            "fig {}: unmodified kernel out-delivers polled under the heaviest storm \
             ({:.0} vs {worst:.0} pkts/s)",
            r.id,
            r.value(unmod, last)
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_inventory_is_complete() {
        let figs = all_figures();
        let ids: Vec<_> = figs.iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec!["6-1", "6-3", "6-4", "6-5", "6-6", "7-1", "L-1", "C-1", "S-1"]
        );
        assert_eq!(figs[0].curves.len(), 2);
        assert_eq!(figs[1].curves.len(), 4);
        assert_eq!(figs[2].curves.len(), 3);
        assert_eq!(figs[3].curves.len(), 5);
        assert_eq!(figs[4].curves.len(), 5);
        assert_eq!(figs[5].curves.len(), 4);
        assert_eq!(figs[6].curves.len(), 2);
        assert_eq!(figs[7].curves.len(), 4);
        assert_eq!(figs[8].curves.len(), 10);
        assert!(figs[..6].iter().all(|f| f.axis != Axis::LatencyP99Micros));
        assert_eq!(figs[6].axis, Axis::LatencyP99Micros);
        // C-1 and S-1: one axis override per curve. C-1's rate axis reaches
        // near wire saturation so the rx-intr share can cross 90%; S-1's
        // exceeds a single wire's capacity because multiqueue injection is
        // paced per RX queue.
        assert_eq!(figs[7].curve_axes.len(), figs[7].curves.len());
        assert_eq!(*figs[7].rates.last().unwrap(), 14_000.0);
        assert_eq!(figs[8].curve_axes.len(), figs[8].curves.len());
        assert!(*figs[8].rates.last().unwrap() > 14_880.0);
        assert!(figs[8]
            .curve_axes
            .iter()
            .any(|a| matches!(a, Axis::PerCpuBusyPercent(_))));
        // Every other figure plots a single axis.
        assert!(figs[..7].iter().all(|f| f.curve_axes.is_empty()));
    }

    #[test]
    fn render_small_figure_and_format() {
        let fig = Figure {
            rates: vec![500.0, 1_000.0],
            ..fig6_1()
        };
        let r = render_figure(&fig, 200, Parallelism::Serial);
        assert_eq!(r.curves.len(), 2);
        let table = r.to_table();
        assert!(table.contains("Figure 6-1"));
        assert!(table.contains("Without_screend"));
        assert_eq!(table.lines().count(), 2 + 2);
        let csv = r.to_csv();
        assert!(csv.starts_with("input_pps,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn parallel_render_matches_serial_bit_for_bit() {
        // Two curves x two rates: the flattened grid exercises regrouping.
        let fig = Figure {
            rates: vec![1_000.0, 8_000.0],
            ..fig6_1()
        };
        let serial = render_figure(&fig, 300, Parallelism::Serial);
        for jobs in [2, 4] {
            let par = render_figure(&fig, 300, Parallelism::Jobs(jobs));
            assert_eq!(par.curves.len(), serial.curves.len());
            for (p, s) in par.curves.iter().zip(&serial.curves) {
                assert_eq!(p.label, s.label, "jobs={jobs}");
                assert_eq!(p.trials, s.trials, "jobs={jobs}");
            }
            assert_eq!(par.to_csv(), serial.to_csv(), "jobs={jobs}");
        }
    }

    #[test]
    fn shape_checker_flags_wrong_shapes() {
        use livelock_kernel::experiment::{SweepResult, TrialResult};
        use livelock_sim::Nanos;

        // Build a synthetic rendered figure where the "no quota" curve
        // wrongly plateaus and the quota-5 curve wrongly collapses.
        let fake_trial = |offered: f64, delivered: f64| TrialResult {
            offered_pps: offered,
            delivered_pps: delivered,
            transmitted: delivered as u64,
            rx_ring_drops: 0,
            ipintrq_drops: 0,
            screend_q_drops: 0,
            screend_denied: 0,
            socket_q_drops: 0,
            app_delivered: 0,
            app_delivered_pps: 0.0,
            ifq_drops: 0,
            latency_mean: Nanos::ZERO,
            latency_p99: Nanos::ZERO,
            latency_jitter: Nanos::ZERO,
            latency: Default::default(),
            drops: Default::default(),
            per_cpu: vec![livelock_kernel::experiment::CpuStats {
                cpu: livelock_machine::CpuId(0),
                cpu_share: [0.0; livelock_machine::CpuClass::COUNT],
                user_cpu_frac: 0.0,
                interrupts_taken: 0,
                events_dispatched: 0,
                steals_published: 0,
                steals_taken: 0,
            }],
            timeline: None,
            pool: Default::default(),
            fault: Default::default(),
            flows: None,
            events: Vec::new(),
            fold: None,
            classes: Vec::new(),
        };
        let rates = vec![2_000.0, 6_000.0, 12_000.0];
        let plateau: Vec<_> = rates.iter().map(|&r| fake_trial(r, 4_000.0_f64.min(r))).collect();
        let collapse: Vec<_> = rates
            .iter()
            .map(|&r| fake_trial(r, if r > 4_000.0 { 0.0 } else { r }))
            .collect();
        let rendered = RenderedFigure {
            id: "6-3",
            caption: "synthetic",
            rates,
            curves: vec![
                SweepResult {
                    label: "Polling (no quota)".into(),
                    trials: plateau, // Wrong: should collapse.
                },
                SweepResult {
                    label: "Polling (quota = 5)".into(),
                    trials: collapse, // Wrong: should plateau.
                },
            ],
            axis: Axis::DeliveredPps,
            curve_axes: vec![],
            x_label: "input_pps",
        };
        let v = shape_violations(&rendered);
        assert_eq!(v.len(), 2, "both wrong shapes flagged: {v:?}");
        assert!(v.iter().any(|m| m.contains("no quota")));
        assert!(v.iter().any(|m| m.contains("quota = 5")));
    }

    #[test]
    fn shape_checker_accepts_correct_shapes() {
        // Run the real (tiny) sweeps for figure 6-3's extremes and confirm
        // no violations: the checker agrees with the simulator.
        let fig = Figure {
            rates: vec![2_000.0, 6_000.0, 12_000.0],
            curves: vec![fig6_3().curves.swap_remove(2)], // quota = 5.
            ..fig6_3()
        };
        let r = render_figure(&fig, 800, Parallelism::Auto);
        assert!(shape_violations(&r).is_empty());
    }

    #[test]
    fn fig7_1_uses_cpu_axis() {
        let fig = Figure {
            rates: vec![500.0],
            curves: vec![fig7_1().curves.remove(0)],
            ..fig7_1()
        };
        let r = render_figure(&fig, 200, Parallelism::Serial);
        assert_eq!(r.axis, Axis::UserCpuPercent);
        let v = r.value(0, 0);
        assert!(v > 10.0 && v <= 100.0, "user CPU % = {v}");
    }

    #[test]
    fn cycle_ledger_figure_shows_the_livelock() {
        // A small render of figure C-1's extremes: at wire-saturating load
        // the unmodified kernel's CPU is all receive interrupts while the
        // cycle-limited polled kernel preserves user+idle.
        let fig = Figure {
            rates: vec![2_000.0, 14_000.0],
            ..fig_c1()
        };
        let r = render_figure(&fig, 800, Parallelism::Auto);
        let v = cpu_share_violations(&r);
        assert!(v.is_empty(), "{v:?}");
        // And the checker really checks: swapping the kernels must trip it.
        let mut swapped = r;
        swapped.curves.swap(0, 2);
        swapped.curves.swap(1, 3);
        for (i, label) in fig_c1().curves.iter().map(|(l, _)| l.clone()).enumerate() {
            swapped.curves[i].label = label;
        }
        assert!(!cpu_share_violations(&swapped).is_empty());
    }

    #[test]
    fn latency_figure_separates_kernels_under_overload() {
        // A small render of the latency figure's extremes: the polled
        // kernel's overload p99 must sit well below the unmodified one's.
        let fig = Figure {
            rates: vec![2_000.0, 12_000.0],
            ..fig_latency()
        };
        let r = render_figure(&fig, 800, Parallelism::Auto);
        assert_eq!(r.axis, Axis::LatencyP99Micros);
        let v = latency_shape_violations(&r);
        assert!(v.is_empty(), "{v:?}");
        // And the checker really checks: swapping the curves must trip it.
        let mut swapped = r;
        swapped.curves.swap(0, 1);
        swapped.curves[0].label = "Unmodified".into();
        swapped.curves[1].label = "Polling (quota = 5)".into();
        assert!(!latency_shape_violations(&swapped).is_empty());
    }

    #[test]
    fn fault_figure_renders_and_degrades_gracefully() {
        // A small R-1 render: delivered + p99 for both kernels across the
        // intensity sweep, with the polled kernel never driven to zero.
        // The storm spreads a fixed event count over the trial window, so
        // very short trials concentrate it; 2000 packets keeps the test
        // quick while staying within the checker's calibration.
        let r = render_fig_r1(2_000, Parallelism::Auto);
        assert_eq!(r.id, "R-1");
        assert_eq!(r.x_label, "fault_intensity");
        assert_eq!(r.rates, r1_intensities());
        assert_eq!(r.curves.len(), 4);
        assert_eq!(r.curve_axes.len(), 4);
        // Intensity 0 runs with no fault plan at all: nothing injected.
        for c in &r.curves {
            assert_eq!(c.trials[0].fault.injected, 0, "{}", c.label);
        }
        // Every non-zero intensity really injects a scaled storm.
        for (pi, &x) in r.rates.iter().enumerate().skip(1) {
            for c in &r.curves {
                assert!(c.trials[pi].fault.injected > 0, "{} at {x}", c.label);
            }
        }
        let v = fault_shape_violations(&r);
        assert!(v.is_empty(), "{v:?}");
        // The CSV carries the fractional intensities verbatim.
        let csv = r.to_csv();
        assert!(csv.starts_with("fault_intensity,"), "{csv}");
        assert!(csv.contains("\n0.50,"), "{csv}");
    }

    #[test]
    fn observe_figure_detects_onset_online() {
        // A small O-1 render: the online detector separates the kernels
        // without waiting for end-of-trial aggregates.
        let r = render_fig_o1(2_000, Parallelism::Auto);
        assert_eq!(r.id, "O-1");
        assert_eq!(r.x_label, "input_pps");
        assert_eq!(r.rates, o1_rates());
        assert_eq!(r.curves.len(), 4);
        assert_eq!(r.curve_axes.len(), 4);
        let v = observe_shape_violations(&r);
        assert!(v.is_empty(), "{v:?}");
        // Every O-1 trial tracks the full eight-flow set and attributes
        // every arrival (no registry overflow at 8 flows / 128 slots).
        for c in &r.curves {
            for t in &c.trials {
                let reg = t.flows.as_ref().expect("observe enables the registry");
                assert_eq!(t.per_flow().len(), o1_flows().len(), "{}", c.label);
                assert_eq!(reg.overflow_arrivals(), 0, "{}", c.label);
            }
        }
        // The checker really checks: swapping the kernels must trip it.
        let mut swapped = r;
        swapped.curves.swap(0, 1);
        swapped.curves.swap(2, 3);
        for (i, label) in [
            "Unmodified onset",
            "Polling w/feedback onset",
            "Unmodified starved flows",
            "Polling w/feedback starved flows",
        ]
        .iter()
        .enumerate()
        {
            swapped.curves[i].label = (*label).into();
        }
        assert!(!observe_shape_violations(&swapped).is_empty());
    }

    #[test]
    fn priority_figure_isolates_control_under_overload() {
        // A small P-1 render: the classified kernel keeps Control inside
        // its SLO across the sweep while the single-class kernel
        // collapses, and the shedding lands on Bulk.
        let r = render_fig_p1(2_000, Parallelism::Auto);
        assert_eq!(r.id, "P-1");
        assert_eq!(r.x_label, "input_pps");
        assert_eq!(r.rates, throughput_rates());
        assert_eq!(r.curves.len(), 6);
        assert_eq!(r.curve_axes.len(), 6);
        let v = priority_shape_violations(&r);
        assert!(v.is_empty(), "{v:?}");
        // Every classified trial books all three classes, and the books
        // sum to the aggregate delivery count.
        for t in &r.curves[0].trials {
            let per = t.per_class();
            assert_eq!(per.len(), TrafficClass::COUNT);
            assert_eq!(per.iter().map(|s| s.delivered).sum::<u64>(), t.transmitted);
        }
        // The checker really checks: handing the unmodified kernel's
        // curves to the classified labels must trip it.
        let mut swapped = r;
        swapped.curves.swap(0, 3); // control delivered <-> unmodified delivered
        swapped.curves.swap(4, 5); // control p99 <-> unmodified p99
        for (i, label) in [
            "Classified control delivered",
            "Classified realtime delivered",
            "Classified bulk delivered",
            "Unmodified delivered",
            "Classified control p99",
            "Unmodified p99",
        ]
        .iter()
        .enumerate()
        {
            swapped.curves[i].label = (*label).into();
        }
        assert!(!priority_shape_violations(&swapped).is_empty());
    }
}
