//! Ablation bench: isolates the contribution of each livelock-avoidance
//! mechanism the paper combines, reporting the overload-stability metric
//! (delivered-at-max-load / peak-delivered; 1.0 = flat plateau, 0 =
//! livelock) for each configuration, then times the extremes.
//!
//! Mechanisms ablated:
//! - polling vs. pure interrupts (Figure 6-3's comparison);
//! - the packet quota (5 / 20 / 100 / none);
//! - queue-state feedback with screend on/off;
//! - receive-ring size (the "let the interface buffer bursts" advice);
//! - interrupt rate limiting alone (the paper's 5.1 caveat: it bounds
//!   saturation but does not guarantee progress);
//! - RED early drop on the output queue (the 8-cited drop policy).

use criterion::{criterion_group, criterion_main, Criterion};
use livelock_core::analysis::overload_stability;
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{sweep, TrialSpec};
use livelock_kernel::par::Parallelism;

fn stability(cfg: &KernelConfig) -> f64 {
    let base = TrialSpec {
        n_packets: 2_000,
        ..TrialSpec::new(cfg.clone())
    };
    let rates = [2_000.0, 4_000.0, 6_000.0, 9_000.0, 12_000.0];
    let s = sweep("ablation", &base, &rates, Parallelism::Serial);
    overload_stability(&s.points())
}

fn bench(c: &mut Criterion) {
    let mut ring16 = KernelConfig::builder().polled(Quota::Limited(10)).build();
    ring16.nic.rx_ring = 8;
    let mut ring128 = KernelConfig::builder().polled(Quota::Limited(10)).build();
    ring128.nic.rx_ring = 128;

    let mut red = KernelConfig::builder().polled(Quota::Limited(100)).build();
    red.ifq_red = true;
    let mut ratelimited_screend = KernelConfig::builder().intr_rate_limit(2_000.0, 4).build();
    ratelimited_screend.screend = Some(livelock_kernel::config::ScreendConfig::default());

    let cases: Vec<(&str, KernelConfig)> = vec![
        ("interrupts-only (baseline)", KernelConfig::builder().build()),
        (
            "intr-rate-limit 2k/s",
            KernelConfig::builder().intr_rate_limit(2_000.0, 4).build(),
        ),
        ("intr-rate-limit + screend", ratelimited_screend),
        ("polling q=100 + RED ifq", red),
        ("polling quota=5", KernelConfig::builder().polled(Quota::Limited(5)).build()),
        ("polling quota=20", KernelConfig::builder().polled(Quota::Limited(20)).build()),
        (
            "polling quota=100",
            KernelConfig::builder().polled(Quota::Limited(100)).build(),
        ),
        ("polling no-quota", KernelConfig::builder().polled(Quota::Unlimited).build()),
        ("polling rx-ring=8", ring16),
        ("polling rx-ring=128", ring128),
        (
            "screend no-feedback",
            KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).build(),
        ),
        (
            "screend feedback",
            KernelConfig::builder().polled(Quota::Limited(10))
                .screend(Default::default())
                .feedback(Default::default())
                .build(),
        ),
    ];

    println!("# Ablation: overload stability (1.0 = flat plateau, 0 = livelock)");
    for (label, cfg) in &cases {
        println!("#   {:<28} {:.3}", label, stability(cfg));
    }

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (label, cfg) in [
        ("interrupts-only", KernelConfig::builder().build()),
        ("full-mechanisms", KernelConfig::builder().polled(Quota::Limited(10)).build()),
    ] {
        g.bench_function(label, |b| b.iter(|| stability(&cfg)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
