//! Head-to-head microbenchmarks of the two event-scheduler backends
//! behind the engine ([`livelock_sim::Scheduler`]): the reference binary
//! heap vs the calendar queue, plus the batched same-cycle drain
//! (`pop_due_batch`) the executor's step 1 uses.
//!
//! The access patterns mirror the engine's real ones:
//!
//! * **prefill+drain** — a trial schedules its whole arrival timeline up
//!   front, then consumes it in time order;
//! * **churn** — steady state: every pop schedules a successor a jittered
//!   spacing ahead (wire completions, clock ticks), holding the pending
//!   population constant;
//! * **peek-heavy** — the executor peeks (`step_stop`) several times per
//!   pop; the calendar's min cache is what makes this O(1);
//! * **batched drain** — many events due at the same cycle drained in one
//!   `pop_due_batch` pass.
//!
//! Pending populations: 1k and 100k events.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use livelock_sim::{CalendarQueue, Cycles, EventQueue, Rng, Scheduler};

const SPACING: u64 = 10_000;

fn heap() -> EventQueue<u64> {
    EventQueue::new()
}

fn calendar() -> CalendarQueue<u64> {
    CalendarQueue::new(Cycles::new(SPACING))
}

/// Schedule `n` events with jittered `SPACING`, then drain them all.
fn prefill_drain<S: Scheduler<u64>>(mut q: S, n: u64) -> u64 {
    let mut rng = Rng::seed_from(7);
    let mut t = 0u64;
    for i in 0..n {
        t += rng.next_below(2 * SPACING);
        q.schedule(Cycles::new(t), i);
    }
    let mut acc = 0u64;
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Hold `n` pending: each pop schedules a successor ahead of the tail.
fn churn<S: Scheduler<u64>>(mut q: S, n: u64, ops: u64) -> u64 {
    let mut rng = Rng::seed_from(7);
    let mut tail = 0u64;
    for i in 0..n {
        tail += rng.next_below(2 * SPACING);
        q.schedule(Cycles::new(tail), i);
    }
    let mut acc = 0u64;
    for i in 0..ops {
        let (now, v) = q.pop().expect("population held constant");
        acc = acc.wrapping_add(v).wrapping_add(now.raw());
        tail += rng.next_below(2 * SPACING);
        q.schedule(Cycles::new(tail), i);
    }
    acc
}

/// The executor's pattern: several peeks (chunk stops) per actual pop.
fn peek_heavy<S: Scheduler<u64>>(mut q: S, n: u64) -> u64 {
    let mut rng = Rng::seed_from(7);
    let mut t = 0u64;
    for i in 0..n {
        t += rng.next_below(2 * SPACING);
        q.schedule(Cycles::new(t), i);
    }
    let mut acc = 0u64;
    loop {
        for _ in 0..8 {
            if let Some(t) = q.peek_time() {
                acc = acc.wrapping_add(t.raw());
            }
        }
        match q.pop() {
            Some((_, v)) => acc = acc.wrapping_add(v),
            None => break,
        }
    }
    acc
}

/// Same-cycle bursts drained with `pop_due_batch`.
fn batched_drain<S: Scheduler<u64>>(mut q: S, bursts: u64, per_burst: u64) -> u64 {
    let mut id = 0u64;
    for b in 0..bursts {
        for _ in 0..per_burst {
            q.schedule(Cycles::new(b * SPACING), id);
            id += 1;
        }
    }
    let mut acc = 0u64;
    let mut buf = Vec::new();
    for b in 0..bursts {
        q.pop_due_batch(Cycles::new(b * SPACING), &mut buf);
        for (_, v) in buf.drain(..) {
            acc = acc.wrapping_add(v);
        }
    }
    acc
}

fn bench_backends(c: &mut Criterion) {
    for n in [1_000u64, 100_000] {
        let mut g = c.benchmark_group(format!("schedulers/{n}-pending"));
        g.throughput(Throughput::Elements(n));
        if n >= 100_000 {
            g.sample_size(10);
        }
        g.bench_function("heap prefill+drain", |b| {
            b.iter(|| black_box(prefill_drain(heap(), n)))
        });
        g.bench_function("calendar prefill+drain", |b| {
            b.iter(|| black_box(prefill_drain(calendar(), n)))
        });
        g.bench_function("heap churn", |b| b.iter(|| black_box(churn(heap(), n, n))));
        g.bench_function("calendar churn", |b| {
            b.iter(|| black_box(churn(calendar(), n, n)))
        });
        g.bench_function("heap peek-heavy", |b| {
            b.iter(|| black_box(peek_heavy(heap(), n)))
        });
        g.bench_function("calendar peek-heavy", |b| {
            b.iter(|| black_box(peek_heavy(calendar(), n)))
        });
        g.bench_function("heap batched drain", |b| {
            b.iter(|| black_box(batched_drain(heap(), n / 50, 50)))
        });
        g.bench_function("calendar batched drain", |b| {
            b.iter(|| black_box(batched_drain(calendar(), n / 50, 50)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
