//! Criterion bench for figure C-1 (conserved cycle ledger): regenerates
//! the CPU-class share figure's data series (printed before timing) and
//! measures the simulator's performance on a representative overload
//! trial per curve.

use criterion::{criterion_group, criterion_main, Criterion};
use livelock_bench::{fig_c1, one_overload_trial, render_figure};
use livelock_kernel::par::Parallelism;

fn bench(c: &mut Criterion) {
    let fig = fig_c1();
    let rendered = render_figure(&fig, 2_000, Parallelism::Serial);
    println!("{}", rendered.to_table());
    println!("{}", rendered.shape_summary());

    let mut g = c.benchmark_group("figC-1");
    g.sample_size(10);
    for (i, (label, _)) in fig.curves.iter().enumerate() {
        g.bench_function(label, |b| b.iter(|| one_overload_trial(&fig, i, 1_000)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
