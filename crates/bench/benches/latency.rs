//! Latency bench (paper §4.3): first-packet delivery latency for
//! wire-rate bursts, unmodified vs modified kernel, plus steady-state
//! latency/jitter across load levels. The paper discusses this effect in
//! prose without a figure; this bench produces the table its argument
//! implies.

use criterion::{criterion_group, criterion_main, Criterion};
use livelock_bench::{fig_latency, latency_shape_violations, render_figure};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_kernel::par::Parallelism;
use livelock_kernel::router::{Event, RouterKernel};
use livelock_machine::cpu::Engine;
use livelock_net::gen::PacketFactory;
use livelock_net::packet::MIN_FRAME_LEN;
use livelock_net::phy::LinkSpeed;
use livelock_sim::{Cycles, Freq, Nanos};

const FREQ: Freq = Freq::mhz(100);

fn burst_first_latency(cfg: &KernelConfig, n: usize) -> (Nanos, Nanos) {
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg.clone());
    let mut e = Engine::new(st, kernel, ctx_switch);
    let gap = LinkSpeed::ETHERNET_10M.frame_cycles(MIN_FRAME_LEN, FREQ);
    let mut factory = PacketFactory::paper_testbed();
    for k in 0..n {
        let t = Cycles::new(1_000) + gap * k as u64;
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    e.run_until(FREQ.cycles_from_millis(500));
    let lat = &e.workload().stats().latency;
    (lat.min(), lat.max())
}

fn bench(c: &mut Criterion) {
    println!("# Burst first/last packet delivery latency (paper 4.3)");
    println!(
        "# {:>6} {:>24} {:>24}",
        "burst", "unmodified_first/last", "modified_first/last"
    );
    for n in [5usize, 10, 20, 30] {
        let (uf, ul) = burst_first_latency(&KernelConfig::builder().build(), n);
        let (mf, ml) = burst_first_latency(&KernelConfig::builder().polled(Quota::Limited(5)).build(), n);
        println!("# {n:>6} {uf:>11} /{ul:>11} {mf:>11} /{ml:>11}");
    }

    println!("# Steady-state mean latency / p99 by load (modified, quota 10)");
    for rate in [1_000.0, 4_000.0, 8_000.0, 12_000.0] {
        let r = run_trial(&TrialSpec {
            rate_pps: rate,
            n_packets: 1_500,
            ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
        });
        println!(
            "#   {:>6.0} pkts/s: mean {} p99 {}",
            rate, r.latency_mean, r.latency_p99
        );
    }

    // The full figure L-1 sweep: p99 forwarding latency vs input rate,
    // unmodified vs polled, on a thinned rate grid so the bench stays
    // quick. Under overload the unmodified kernel's p99 blows up with
    // `ipintrq` aging while the polled kernel's stays flat — the latency
    // gate checks that separation at the highest rate.
    let mut fig = fig_latency();
    fig.rates = vec![1_000.0, 4_000.0, 8_000.0, 12_000.0];
    let rendered = render_figure(&fig, 800, Parallelism::Serial);
    println!("# Figure {}: {}", rendered.id, rendered.caption);
    print!("# {:>10}", "input_pps");
    for curve in &rendered.curves {
        print!(" {:>22}", curve.label);
    }
    println!();
    for (pi, rate) in rendered.rates.iter().enumerate() {
        print!("# {rate:>10.0}");
        for ci in 0..rendered.curves.len() {
            print!(" {:>20.1}us", rendered.value(ci, pi));
        }
        println!();
    }
    let violations = latency_shape_violations(&rendered);
    if violations.is_empty() {
        println!("# latency gate: ok (polled p99 well below unmodified at overload)");
    } else {
        for v in &violations {
            println!("# latency gate VIOLATION: {v}");
        }
    }

    let mut g = c.benchmark_group("latency");
    g.sample_size(10);
    g.bench_function("burst20 unmodified", |b| {
        b.iter(|| burst_first_latency(&KernelConfig::builder().build(), 20))
    });
    g.bench_function("burst20 modified", |b| {
        b.iter(|| burst_first_latency(&KernelConfig::builder().polled(Quota::Limited(5)).build(), 20))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
