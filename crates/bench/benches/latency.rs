//! Latency bench (paper §4.3): first-packet delivery latency for
//! wire-rate bursts, unmodified vs modified kernel, plus steady-state
//! latency/jitter across load levels. The paper discusses this effect in
//! prose without a figure; this bench produces the table its argument
//! implies.

use criterion::{criterion_group, criterion_main, Criterion};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_kernel::router::{Event, RouterKernel};
use livelock_machine::cpu::Engine;
use livelock_net::gen::PacketFactory;
use livelock_net::packet::MIN_FRAME_LEN;
use livelock_net::phy::LinkSpeed;
use livelock_sim::{Cycles, Freq, Nanos};

const FREQ: Freq = Freq::mhz(100);

fn burst_first_latency(cfg: &KernelConfig, n: usize) -> (Nanos, Nanos) {
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg.clone());
    let mut e = Engine::new(st, kernel, ctx_switch);
    let gap = LinkSpeed::ETHERNET_10M.frame_cycles(MIN_FRAME_LEN, FREQ);
    let mut factory = PacketFactory::paper_testbed();
    for k in 0..n {
        let t = Cycles::new(1_000) + gap * k as u64;
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: factory.next_packet(),
            },
        );
    }
    e.run_until(FREQ.cycles_from_millis(500));
    let lat = &e.workload().stats().latency;
    (lat.min(), lat.max())
}

fn bench(c: &mut Criterion) {
    println!("# Burst first/last packet delivery latency (paper 4.3)");
    println!(
        "# {:>6} {:>24} {:>24}",
        "burst", "unmodified_first/last", "modified_first/last"
    );
    for n in [5usize, 10, 20, 30] {
        let (uf, ul) = burst_first_latency(&KernelConfig::unmodified(), n);
        let (mf, ml) = burst_first_latency(&KernelConfig::polled(Quota::Limited(5)), n);
        println!("# {n:>6} {uf:>11} /{ul:>11} {mf:>11} /{ml:>11}");
    }

    println!("# Steady-state mean latency / p99 by load (modified, quota 10)");
    for rate in [1_000.0, 4_000.0, 8_000.0, 12_000.0] {
        let r = run_trial(&TrialSpec {
            rate_pps: rate,
            n_packets: 1_500,
            ..TrialSpec::new(KernelConfig::polled(Quota::Limited(10)))
        });
        println!(
            "#   {:>6.0} pkts/s: mean {} p99 {}",
            rate, r.latency_mean, r.latency_p99
        );
    }

    let mut g = c.benchmark_group("latency");
    g.sample_size(10);
    g.bench_function("burst20 unmodified", |b| {
        b.iter(|| burst_first_latency(&KernelConfig::unmodified(), 20))
    });
    g.bench_function("burst20 modified", |b| {
        b.iter(|| burst_first_latency(&KernelConfig::polled(Quota::Limited(5)), 20))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
