//! Criterion bench for paper Figure 7-1: regenerates the user-mode CPU
//! availability series under each cycle-limit threshold, then times a
//! representative trial per threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use livelock_bench::{fig7_1, render_figure};
use livelock_kernel::par::Parallelism;
use livelock_kernel::experiment::{run_trial, TrialSpec};

fn bench(c: &mut Criterion) {
    let fig = fig7_1();
    let rendered = render_figure(&fig, 2_000, Parallelism::Serial);
    println!("{}", rendered.to_table());

    let mut g = c.benchmark_group("fig7-1");
    g.sample_size(10);
    for (label, cfg) in &fig.curves {
        let cfg = cfg.clone();
        g.bench_function(label, |b| {
            b.iter(|| {
                run_trial(&TrialSpec {
                    rate_pps: 6_000.0,
                    n_packets: 1_000,
                    ..TrialSpec::new(cfg.clone())
                })
                .user_cpu_frac
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
