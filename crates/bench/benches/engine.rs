//! Microbenchmarks of the simulation substrate itself: event queue,
//! deterministic RNG, and end-to-end simulated-packets-per-wallclock-second
//! throughput of the full router model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_sim::{Cycles, EventQueue, Rng};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event-queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule+pop 10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Rng::seed_from(1);
            for i in 0..10_000u64 {
                q.schedule(Cycles::new(rng.next_below(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("xoshiro256** 1M u64", |b| {
        let mut rng = Rng::seed_from(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_full_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router-sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2_000));
    for (label, cfg) in [
        ("unmodified 2k pkts", KernelConfig::builder().build()),
        ("polled 2k pkts", KernelConfig::builder().polled(Quota::Limited(10)).build()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                run_trial(&TrialSpec {
                    rate_pps: 8_000.0,
                    n_packets: 2_000,
                    ..TrialSpec::new(cfg.clone())
                })
                .transmitted
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_full_router);
criterion_main!(benches);
