//! Property tests for the preemptive executor: whatever the interrupt
//! storm looks like, the machine obeys the architecture.
//!
//! - **Stack discipline**: handler entries/exits nest like parentheses and
//!   a nested handler always has a strictly higher IPL than the one it
//!   preempted.
//! - **Conservation**: interrupt + thread + scheduler + idle cycles equal
//!   elapsed virtual time, always.
//! - **Liveness**: with all sources enabled, quiescence implies no latched
//!   interrupt remains.

// Property tests are opt-in: `cargo test -p livelock-machine --features proptest`.
#![cfg(feature = "proptest")]

use livelock_machine::cpu::{Chunk, CtxKind, Engine, Env, EnvState, Workload};
use livelock_machine::intr::IntrSrc;
use livelock_machine::ipl::Ipl;
use livelock_machine::thread::Priority;
use livelock_machine::trace::TraceEvent;
use livelock_sim::Cycles;
use proptest::prelude::*;

/// A workload where every interrupt activation runs one chunk of a fixed
/// per-source cost, and one optional thread burns scripted chunks.
struct StormWorkload {
    /// Cost per activation, per source index.
    handler_cost: Vec<u64>,
    in_handler: Vec<bool>,
    thread_chunks: Vec<u64>,
    activations: Vec<u64>,
}

#[derive(Debug)]
enum Ev {
    Post(IntrSrc),
}

impl Workload for StormWorkload {
    type Event = Ev;

    fn next_chunk(&mut self, env: &mut Env<'_, Ev>, ctx: CtxKind) -> Option<Chunk> {
        match ctx {
            CtxKind::Intr(src) => {
                if self.in_handler[src.0] {
                    self.in_handler[src.0] = false;
                    return None;
                }
                self.in_handler[src.0] = true;
                self.activations[src.0] += 1;
                Some(Chunk::new(Cycles::new(self.handler_cost[src.0]), 1))
            }
            CtxKind::Thread(tid) => {
                if let Some(cost) = self.thread_chunks.pop() {
                    Some(Chunk::new(Cycles::new(cost), 2))
                } else {
                    env.sleep(tid);
                    None
                }
            }
        }
    }

    fn chunk_done(&mut self, _env: &mut Env<'_, Ev>, _ctx: CtxKind, _tag: u64) {}

    fn on_event(&mut self, env: &mut Env<'_, Ev>, event: Ev) {
        let Ev::Post(src) = event;
        env.post_intr(src);
    }
}

/// Replays the trace and checks parenthesis nesting with strictly rising
/// IPLs; returns the maximum nesting depth seen.
fn check_stack_discipline(
    records: impl Iterator<Item = (TraceEvent,)>,
    ipl_of: &[Ipl],
) -> Result<usize, String> {
    let mut stack: Vec<(usize, Ipl)> = Vec::new();
    let mut max_depth = 0;
    for (ev,) in records {
        match ev {
            TraceEvent::IntrEnter(src) => {
                let ipl = ipl_of[src.0];
                if let Some(&(_, top_ipl)) = stack.last() {
                    if ipl <= top_ipl {
                        return Err(format!(
                            "handler at {ipl} entered over handler at {top_ipl}"
                        ));
                    }
                }
                stack.push((src.0, ipl));
                max_depth = max_depth.max(stack.len());
            }
            TraceEvent::IntrExit(src) => match stack.pop() {
                Some((top, _)) if top == src.0 => {}
                other => return Err(format!("exit of src{} but top is {other:?}", src.0)),
            },
            _ => {}
        }
    }
    if stack.is_empty() {
        Ok(max_depth)
    } else {
        Err(format!("{} handlers never exited", stack.len()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn storm_obeys_the_architecture(
        // Up to 4 sources at IPLs 1..=6, random handler costs.
        ipls in proptest::collection::vec(1u8..=6, 1..4),
        costs in proptest::collection::vec(10u64..5_000, 1..4),
        posts in proptest::collection::vec((0u64..200_000, 0usize..4), 0..100),
        thread_chunks in proptest::collection::vec(10u64..2_000, 0..10),
        ctx_switch in 0u64..100,
    ) {
        let n = ipls.len().min(costs.len());
        let mut st = EnvState::new(Cycles::new(1_000_000));
        let mut srcs = Vec::new();
        let mut src_ipls = Vec::new();
        for &lvl in ipls.iter().take(n) {
            let ipl = Ipl::new(lvl);
            srcs.push(st.intr.register("s", ipl));
            src_ipls.push(ipl);
        }
        let has_thread = !thread_chunks.is_empty();
        if has_thread {
            let tid = st.sched.spawn("worker", Priority::USER);
            st.sched.wake(tid);
        }
        for &(t, which) in &posts {
            let src = srcs[which % n];
            st.schedule_at(Cycles::new(t), Ev::Post(src));
        }
        let wl = StormWorkload {
            handler_cost: costs.iter().take(n).copied().collect(),
            in_handler: vec![false; n],
            thread_chunks,
            activations: vec![0; n],
        };
        let mut e = Engine::new(st, wl, Cycles::new(ctx_switch));
        e.enable_trace(100_000);
        let exit = e.run_to_quiescence();

        // Liveness: quiescent means nothing latched remains deliverable.
        prop_assert_eq!(exit, livelock_machine::cpu::Exit::Quiescent);
        for &src in &srcs {
            prop_assert!(
                !e.state().intr.is_pending(src),
                "latched interrupt survived quiescence"
            );
        }

        // Conservation.
        let u = e.usage();
        let accounted = u.total_intr() + u.total_thread() + u.sched_cycles + u.idle_cycles;
        prop_assert_eq!(accounted, u.now, "cycle accounting must balance");

        // Stack discipline over the full trace.
        let trace = e.trace().expect("tracing enabled");
        prop_assert_eq!(trace.dropped(), 0, "trace ring too small for the check");
        let result = check_stack_discipline(
            trace.records().map(|r| (r.event,)),
            &src_ipls,
        );
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());

        // Work accounting: every activation burned exactly its cost.
        let expected_intr: u64 = e
            .workload()
            .activations
            .iter()
            .zip(&e.workload().handler_cost)
            .map(|(a, c)| a * c)
            .sum();
        prop_assert_eq!(u.total_intr(), Cycles::new(expected_intr));
    }

    /// Same-IPL sources never nest: with every source at SPLIMP, the
    /// maximum observed nesting depth is 1.
    #[test]
    fn same_ipl_never_nests(
        posts in proptest::collection::vec((0u64..50_000, 0usize..3), 1..60),
    ) {
        let mut st = EnvState::new(Cycles::new(1_000_000));
        let srcs: Vec<_> = (0..3).map(|_| st.intr.register("rx", Ipl::IMP)).collect();
        for &(t, which) in &posts {
            st.schedule_at(Cycles::new(t), Ev::Post(srcs[which]));
        }
        let wl = StormWorkload {
            handler_cost: vec![500; 3],
            in_handler: vec![false; 3],
            thread_chunks: Vec::new(),
            activations: vec![0; 3],
        };
        let mut e = Engine::new(st, wl, Cycles::ZERO);
        e.enable_trace(100_000);
        e.run_to_quiescence();
        let trace = e.trace().expect("tracing enabled");
        let depth = check_stack_discipline(
            trace.records().map(|r| (r.event,)),
            &[Ipl::IMP; 3],
        )
        .expect("discipline holds");
        prop_assert!(depth <= 1, "same-IPL handlers nested to depth {depth}");
    }
}
