//! The cycle cost model.
//!
//! Every kernel code path in the simulation is charged a cycle cost from
//! this table. The `calibrated()` preset targets the paper's testbed — a
//! DECstation 3000/300 (SPECint92 66.2) forwarding minimum-size UDP packets
//! between 10 Mbit/s Ethernets — so the simulated router lands near the
//! paper's measured rates:
//!
//! - unmodified kernel, no screend: MLFRR ≈ 4700 pkts/s, degrading above;
//! - unmodified kernel, screend: peak ≈ 2000 pkts/s, livelock by ≈ 6000;
//! - modified kernel: slightly higher MLFRR, flat thereafter.
//!
//! The back-of-envelope: at 100 MHz, the no-screend forwarding path costs
//! about `rx_device_per_pkt + 2*queue_op + ip_forward_per_pkt +
//! tx_start_per_pkt + tx_done_per_pkt` ≈ 20.6 k cycles ≈ 206 µs/packet
//! ≈ 4850 pkts/s; screend adds ≈ 250 µs of user-mode work per packet,
//! halving-and-some the peak. A calibration test in `livelock-kernel`
//! asserts the preset stays in these bands.

use livelock_sim::{Cycles, Freq};

/// Cycle costs for every simulated code path, plus clock parameters.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// CPU clock frequency (cycles ↔ seconds).
    pub freq: Freq,

    // --- Interrupt path ---
    /// Fixed cost of taking any interrupt (vectoring, register save,
    /// dispatch). "Dispatching an interrupt is a costly operation" (§4.1).
    pub intr_dispatch: Cycles,
    /// Body of the *modified* kernel's receive interrupt handler: set the
    /// "service needed" flag, schedule the polling thread, return (§6.4).
    pub intr_stub: Cycles,
    /// Per-packet work at device IPL in the unmodified driver: buffer
    /// management and link-level processing (§4.1).
    pub rx_device_per_pkt: Cycles,
    /// One enqueue or dequeue on an inter-layer packet queue, including the
    /// spl synchronization around it (the `ipintrq` costs the paper's
    /// modifications eliminate).
    pub queue_op: Cycles,
    /// Activating the network software interrupt (thread dispatch in
    /// Digital UNIX).
    pub softnet_dispatch: Cycles,
    /// Body of an inter-processor interrupt handler: cross-CPU wakeup
    /// delivery in the SMP model (the dispatch cost `intr_dispatch` is
    /// charged on top, as for any interrupt).
    pub ipi: Cycles,
    /// Per-packet cost of the shared-`ipintrq` lock handoff and cache-line
    /// transfer when more than one CPU feeds the queue — the COREC-style
    /// contention the per-CPU polled path avoids. Charged once per
    /// contending *sibling* CPU on the draining side.
    pub smp_queue_lock: Cycles,

    // --- IP and transmit path ---
    /// Per-packet IP input + forwarding work: validate, route, ARP, rewrite
    /// headers, choose output interface.
    pub ip_forward_per_pkt: Cycles,
    /// Moving one packet from the output ifqueue into the transmit ring
    /// (`if_start`).
    pub tx_start_per_pkt: Cycles,
    /// Reclaiming one completed transmit descriptor and freeing its buffer.
    pub tx_done_per_pkt: Cycles,

    // --- screend ---
    /// Full per-packet cost of consulting the user-mode screend process:
    /// syscall entry, copyout/copyin, rule evaluation, syscall return
    /// ("this user-mode program does one system call per packet", §6.1).
    pub screend_per_pkt: Cycles,

    // --- Polling thread (modified kernel) ---
    /// Scheduling the polling thread from the interrupt stub.
    pub poll_wakeup: Cycles,
    /// Invoking one registered callback (function dispatch, device state
    /// check).
    pub poll_callback: Cycles,
    /// One pass of the polling loop's own bookkeeping (flag scan, cycle
    /// counter reads for the §7 limiter).
    pub poll_loop_check: Cycles,

    // --- Process scheduling ---
    /// A full context switch between threads.
    pub ctx_switch: Cycles,
    /// The hardware clock interrupt handler.
    pub clock_tick_handler: Cycles,
    /// Periodic housekeeping charged at each tick (callouts, scheduler
    /// bookkeeping, device watchdogs). Sized so a completely idle system
    /// leaves ≈ 94% of the CPU to a compute-bound user process, matching
    /// the paper's Figure 7-1 baseline.
    pub housekeeping_per_tick: Cycles,
    /// Granularity of the compute-bound user process's work units.
    pub user_chunk: Cycles,
    /// Per-request cost of the local application consuming a delivered
    /// packet (socket read, RPC decode, reply build) — the end-system
    /// extension of §7.1.
    pub app_per_pkt: Cycles,

    // --- Clock geometry ---
    /// Hardware clock tick interval (the paper's machine: ~1 ms).
    pub clock_tick_interval: Cycles,
    /// Cycle-limiter accounting period, in ticks (paper §7: 10 ms, "chosen
    /// arbitrarily to match the scheduler's quantum").
    pub cycle_limit_period_ticks: u32,
    /// Scheduler quantum, in ticks.
    pub quantum_ticks: u32,
}

impl CostModel {
    /// The calibrated preset described in the module docs (100 MHz clock).
    pub fn calibrated() -> Self {
        let freq = Freq::mhz(100);
        let us = |n: u64| freq.cycles_from_micros(n);
        CostModel {
            freq,
            intr_dispatch: us(20),
            intr_stub: us(5),
            rx_device_per_pkt: us(50),
            queue_op: us(8),
            softnet_dispatch: us(10),
            ipi: us(15),
            smp_queue_lock: us(20),
            ip_forward_per_pkt: us(100),
            tx_start_per_pkt: us(15),
            tx_done_per_pkt: us(25),
            screend_per_pkt: us(250),
            poll_wakeup: us(10),
            poll_callback: us(15),
            poll_loop_check: us(5),
            ctx_switch: us(10),
            clock_tick_handler: us(10),
            housekeeping_per_tick: us(40),
            user_chunk: us(500),
            app_per_pkt: us(200),
            clock_tick_interval: freq.cycles_from_millis(1),
            cycle_limit_period_ticks: 10,
            quantum_ticks: 10,
        }
    }

    /// A machine `speedup` times faster than the calibrated testbed: every
    /// per-packet cost shrinks by the factor while the clock geometry
    /// (ticks, periods, quanta) stays in wall-clock terms. The paper notes
    /// its tunables depend on CPU speed ("for other CPUs and network
    /// interfaces, the proper value may differ"); this is how experiments
    /// explore that.
    ///
    /// # Panics
    ///
    /// Panics unless `speedup` is positive and finite.
    pub fn scaled(speedup: f64) -> Self {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "speedup must be positive"
        );
        let base = CostModel::calibrated();
        let scale = |c: Cycles| Cycles::new(((c.raw() as f64 / speedup).round() as u64).max(1));
        CostModel {
            intr_dispatch: scale(base.intr_dispatch),
            intr_stub: scale(base.intr_stub),
            rx_device_per_pkt: scale(base.rx_device_per_pkt),
            queue_op: scale(base.queue_op),
            softnet_dispatch: scale(base.softnet_dispatch),
            ipi: scale(base.ipi),
            smp_queue_lock: scale(base.smp_queue_lock),
            ip_forward_per_pkt: scale(base.ip_forward_per_pkt),
            tx_start_per_pkt: scale(base.tx_start_per_pkt),
            tx_done_per_pkt: scale(base.tx_done_per_pkt),
            screend_per_pkt: scale(base.screend_per_pkt),
            poll_wakeup: scale(base.poll_wakeup),
            poll_callback: scale(base.poll_callback),
            poll_loop_check: scale(base.poll_loop_check),
            ctx_switch: scale(base.ctx_switch),
            clock_tick_handler: scale(base.clock_tick_handler),
            housekeeping_per_tick: scale(base.housekeeping_per_tick),
            user_chunk: base.user_chunk,
            app_per_pkt: scale(base.app_per_pkt),
            ..base
        }
    }

    /// The cycle-limiter period in cycles.
    pub fn cycle_limit_period(&self) -> Cycles {
        self.clock_tick_interval * u64::from(self.cycle_limit_period_ticks)
    }

    /// The scheduler quantum in cycles.
    pub fn quantum(&self) -> Cycles {
        self.clock_tick_interval * u64::from(self.quantum_ticks)
    }

    /// Analytic per-packet forwarding cost on the *unmodified* kernel path
    /// (excluding interrupt dispatch amortization): a sanity anchor used by
    /// calibration tests, not by the simulation itself.
    pub fn analytic_unmodified_fwd_cost(&self) -> Cycles {
        self.rx_device_per_pkt
            + self.queue_op * 2
            + self.ip_forward_per_pkt
            + self.tx_start_per_pkt
            + self.tx_done_per_pkt
    }

    /// Analytic MLFRR (pkts/s) implied by
    /// [`CostModel::analytic_unmodified_fwd_cost`].
    pub fn analytic_unmodified_mlfrr(&self) -> f64 {
        self.freq.as_hz() as f64 / self.analytic_unmodified_fwd_cost().raw() as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_anchors() {
        let c = CostModel::calibrated();
        // ~216 us/packet -> ~4630 pkts/s, the paper's "peaked at 4700".
        let mlfrr = c.analytic_unmodified_mlfrr();
        assert!(
            (4_000.0..5_500.0).contains(&mlfrr),
            "analytic MLFRR {mlfrr} out of the paper's band"
        );
        // screend halves-and-more the peak: 1/(fwd+screend) ~ 2000.
        let with_screend = c.freq.as_hz() as f64
            / (c.analytic_unmodified_fwd_cost() + c.screend_per_pkt).raw() as f64;
        assert!(
            (1_500.0..2_500.0).contains(&with_screend),
            "screend peak {with_screend}"
        );
    }

    #[test]
    fn clock_geometry() {
        let c = CostModel::calibrated();
        assert_eq!(
            c.clock_tick_interval,
            Cycles::new(100_000),
            "1 ms at 100 MHz"
        );
        assert_eq!(c.cycle_limit_period(), Cycles::new(1_000_000), "10 ms");
        assert_eq!(
            c.quantum(),
            c.cycle_limit_period(),
            "paper: quantum == period"
        );
    }

    #[test]
    fn housekeeping_overhead_leaves_94_percent() {
        let c = CostModel::calibrated();
        let per_tick = (c.clock_tick_handler + c.housekeeping_per_tick).raw() as f64;
        let overhead = per_tick / c.clock_tick_interval.raw() as f64;
        // ~5-6% system overhead at idle: the paper saw a 94% user share.
        assert!((0.04..0.07).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn scaled_costs_shrink_proportionally() {
        let fast = CostModel::scaled(2.0);
        let base = CostModel::calibrated();
        assert_eq!(
            fast.ip_forward_per_pkt.raw(),
            base.ip_forward_per_pkt.raw() / 2
        );
        assert_eq!(fast.screend_per_pkt.raw(), base.screend_per_pkt.raw() / 2);
        assert_eq!(fast.ipi.raw(), base.ipi.raw() / 2);
        assert_eq!(fast.smp_queue_lock.raw(), base.smp_queue_lock.raw() / 2);
        // Clock geometry stays in wall-clock terms.
        assert_eq!(fast.clock_tick_interval, base.clock_tick_interval);
        assert_eq!(fast.quantum(), base.quantum());
        // The analytic MLFRR doubles.
        let ratio = fast.analytic_unmodified_mlfrr() / base.analytic_unmodified_mlfrr();
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
        assert_eq!(
            CostModel::scaled(1.0).analytic_unmodified_fwd_cost(),
            base.analytic_unmodified_fwd_cost()
        );
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn scaled_rejects_nonpositive() {
        let _ = CostModel::scaled(0.0);
    }

    #[test]
    fn stub_is_much_cheaper_than_device_work() {
        let c = CostModel::calibrated();
        // The whole point of §6.4: the modified handler does almost nothing.
        assert!(c.intr_stub.raw() * 5 <= c.rx_device_per_pkt.raw());
    }
}
