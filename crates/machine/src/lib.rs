#![warn(missing_docs)]

//! A deterministic machine model with interrupt priority levels: one
//! preemptive CPU by default, N of them when clustered.
//!
//! Receive livelock is a *scheduling* pathology: it needs nothing more than
//! a finite CPU, fixed interrupt priorities, preemption, and queues. This
//! crate models exactly that, in the 4.2BSD shape the paper describes:
//!
//! - [`ipl`] — interrupt priority levels (`SPLIMP`, `SPLNET`, ...): device
//!   interrupts preempt software interrupts preempt threads.
//! - [`intr`] — the interrupt controller: per-source IPL, enable flags and
//!   pending latches, "take the highest-priority pending interrupt above the
//!   current IPL".
//! - [`thread`] — a priority scheduler with round-robin and quantum for the
//!   kernel's polling thread and user processes (screend, compute-bound).
//! - [`cost`] — the cycle cost model, with a preset calibrated so the
//!   simulated router reproduces the paper's measured rates.
//! - [`nic`] — a LANCE-style network interface: bounded receive/transmit
//!   descriptor rings, autonomous (DMA) receive into the ring, interrupt
//!   enable flags, interrupt batching left to the driver.
//! - [`wire`] — Ethernet serialization (67.2 µs per minimum frame at
//!   10 Mbit/s, the paper's 14,880 pkts/s ceiling).
//! - [`cpu`] — the preemptive executor: kernel code runs as *chunks* of
//!   cycles issued by a [`cpu::Workload`]; higher-IPL interrupts arriving
//!   mid-chunk preempt it and resume it afterwards, nested arbitrarily
//!   deep, with full cycle accounting per context.
//! - [`cluster`] — the deterministic SMP interleaver: N per-CPU engines
//!   advanced in fixed round-robin time slices, with cross-CPU signals
//!   delivered only at slice boundaries so results stay bit-identical.
//! - [`ledger`] — the conserved CPU-cycle ledger: every executed cycle
//!   attributed to exactly one [`ledger::CpuClass`], with class totals
//!   summing exactly to elapsed time.
//! - [`fold`] — the optional `(cpu, class, stage)` fold of the same
//!   charges, rendered as `inferno`-compatible collapsed stacks for
//!   flamegraphs of simulated cycles.
//! - [`chrome`] — Chrome-trace / Perfetto JSON export of [`trace`]
//!   records, so an interleaving can be inspected visually.
//! - [`fault`] — deterministic, seeded fault-injection plans (lost and
//!   spurious interrupts, ring corruption, overrun storms, clock jitter,
//!   link flaps, packet mutation, consumer stalls/crashes), scheduled on
//!   virtual time so chaos runs replay exactly.
//!
//! The `livelock-kernel` crate implements the paper's unmodified and
//! modified kernels as [`cpu::Workload`]s on top of this machine.

pub mod chrome;
pub mod cluster;
pub mod cost;
pub mod cpu;
pub mod fault;
pub mod fold;
pub mod intr;
pub mod ipl;
pub mod ledger;
pub mod nic;
pub mod thread;
pub mod trace;
pub mod wire;

pub use chrome::{
    chrome_trace_json, chrome_trace_json_for_cpu, chrome_trace_json_with_markers, json_escape,
};
pub use cluster::Cluster;
pub use cost::CostModel;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fold::CycleFold;
pub use cpu::{Chunk, CpuId, CtxKind, Engine, Env, SchedulerKind, UsageReport, Workload};
pub use intr::{IntrController, IntrSrc};
pub use ipl::Ipl;
pub use ledger::{CpuClass, CycleLedger};
pub use nic::{rss_hash, rss_queue, Nic, NicConfig, RssSteering};
pub use thread::{Priority, Scheduler, ThreadId};
pub use trace::{Trace, TraceEvent, TraceRecord};
pub use wire::Wire;
