//! The wire model: Ethernet serialization timing and arrival pacing.
//!
//! A 10 Mbit/s Ethernet serializes one frame at a time; a minimum frame
//! occupies the wire for 67.2 µs, capping the packet rate at the paper's
//! "about 14,880 packets/second". The wire itself consumes no CPU — it is
//! the NIC's DMA engine's problem — so this model only computes occupancy
//! times and paces arrival schedules to physical feasibility.

use livelock_net::phy::LinkSpeed;
use livelock_sim::{Cycles, Freq};

/// One half-duplex wire segment.
#[derive(Clone, Copy, Debug)]
pub struct Wire {
    speed: LinkSpeed,
    freq: Freq,
    busy_until: Cycles,
    frames_carried: u64,
}

impl Wire {
    /// Creates an idle wire of the given speed, timed in CPU cycles at
    /// `freq`.
    pub fn new(speed: LinkSpeed, freq: Freq) -> Self {
        Wire {
            speed,
            freq,
            busy_until: Cycles::ZERO,
            frames_carried: 0,
        }
    }

    /// The paper's testbed wire: 10 Mbit/s Ethernet.
    pub fn ethernet_10m(freq: Freq) -> Self {
        Wire::new(LinkSpeed::ETHERNET_10M, freq)
    }

    /// Returns the link speed.
    pub fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Serialization time of a frame of `len` bytes, in cycles.
    pub fn frame_cycles(&self, len: usize) -> Cycles {
        self.speed.frame_cycles(len, self.freq)
    }

    /// Begins transmitting a frame at time `now`; returns the completion
    /// time. If the wire is still busy (back-to-back transmissions), the
    /// frame starts when the wire frees up.
    pub fn begin_tx(&mut self, now: Cycles, frame_len: usize) -> Cycles {
        let start = now.max(self.busy_until);
        let done = start + self.frame_cycles(frame_len);
        self.busy_until = done;
        self.frames_carried += 1;
        done
    }

    /// Returns `true` while a frame occupies the wire at time `now`.
    pub fn is_busy(&self, now: Cycles) -> bool {
        now < self.busy_until
    }

    /// Forces the wire busy until at least `until` (carrier loss: a link
    /// flap holds off transmission exactly as an endless frame would).
    /// Never shortens an in-progress transmission.
    pub fn force_carrier_loss(&mut self, until: Cycles) {
        self.busy_until = self.busy_until.max(until);
    }

    /// The time the wire becomes free.
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Total frames carried.
    pub fn frames_carried(&self) -> u64 {
        self.frames_carried
    }

    /// Paces a sorted arrival schedule to physical feasibility: consecutive
    /// frame *completion* times are spaced at least one frame time apart.
    /// The input times are interpreted (and returned) as arrival-complete
    /// times for frames of `frame_len` bytes.
    ///
    /// The experiment harness runs generated schedules through this, so a
    /// jittered generator can never offer more than wire rate.
    pub fn pace(&self, times: &mut [Cycles], frame_len: usize) {
        let gap = self.frame_cycles(frame_len);
        let mut min_next = Cycles::ZERO;
        for t in times.iter_mut() {
            if *t < min_next {
                *t = min_next;
            }
            min_next = *t + gap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const FREQ: Freq = Freq::mhz(100);

    #[test]
    fn min_frame_occupancy() {
        let w = Wire::ethernet_10m(FREQ);
        assert_eq!(w.frame_cycles(60), Cycles::new(6720), "67.2 us at 100 MHz");
    }

    #[test]
    fn begin_tx_when_idle() {
        let mut w = Wire::ethernet_10m(FREQ);
        let done = w.begin_tx(Cycles::new(1000), 60);
        assert_eq!(done, Cycles::new(7720));
        assert!(w.is_busy(Cycles::new(5000)));
        assert!(!w.is_busy(Cycles::new(7720)));
        assert_eq!(w.frames_carried(), 1);
    }

    #[test]
    fn back_to_back_transmissions_queue_on_the_wire() {
        let mut w = Wire::ethernet_10m(FREQ);
        let d1 = w.begin_tx(Cycles::ZERO, 60);
        let d2 = w.begin_tx(Cycles::new(100), 60);
        assert_eq!(d1, Cycles::new(6720));
        assert_eq!(d2, Cycles::new(13_440), "starts when the wire frees");
        assert_eq!(w.busy_until(), d2);
    }

    #[test]
    fn max_rate_matches_paper() {
        let mut w = Wire::ethernet_10m(FREQ);
        let mut now = Cycles::ZERO;
        for _ in 0..1000 {
            now = w.begin_tx(now, 60);
        }
        let secs = FREQ.secs_from_cycles(now);
        let rate = 1000.0 / secs;
        assert!((rate - 14_880.0).abs() < 10.0, "rate {rate}");
    }

    #[test]
    fn carrier_loss_defers_transmission() {
        let mut w = Wire::ethernet_10m(FREQ);
        w.force_carrier_loss(Cycles::new(10_000));
        assert!(w.is_busy(Cycles::new(5_000)));
        let done = w.begin_tx(Cycles::new(1_000), 60);
        assert_eq!(done, Cycles::new(16_720), "starts when carrier returns");
        // Never shortens: a later, earlier-ending loss is a no-op.
        w.force_carrier_loss(Cycles::new(12_000));
        assert_eq!(w.busy_until(), done);
    }

    #[test]
    fn pace_leaves_feasible_schedules_alone() {
        let w = Wire::ethernet_10m(FREQ);
        let mut times = vec![Cycles::new(0), Cycles::new(10_000), Cycles::new(20_000)];
        let orig = times.clone();
        w.pace(&mut times, 60);
        assert_eq!(times, orig);
    }

    #[test]
    fn pace_spreads_bursts() {
        let w = Wire::ethernet_10m(FREQ);
        let mut times = vec![Cycles::new(0); 5];
        w.pace(&mut times, 60);
        for (i, t) in times.iter().enumerate() {
            assert_eq!(*t, Cycles::new(6720 * i as u64));
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn paced_schedule_is_feasible_and_no_earlier(
            raw in proptest::collection::vec(0u64..10_000_000, 1..100)
        ) {
            let mut times: Vec<Cycles> = raw.iter().map(|&t| Cycles::new(t)).collect();
            times.sort();
            let before = times.clone();
            let w = Wire::ethernet_10m(FREQ);
            w.pace(&mut times, 60);
            let gap = w.frame_cycles(60);
            for pair in times.windows(2) {
                prop_assert!(pair[1] >= pair[0] + gap);
            }
            for (a, b) in before.iter().zip(&times) {
                prop_assert!(b >= a, "pacing never moves a frame earlier");
            }
        }
    }
}
