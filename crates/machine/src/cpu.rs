//! The preemptive per-CPU executor.
//!
//! One [`Engine`] models one CPU; the [`cluster`](crate::cluster) module
//! interleaves several of them into a deterministic SMP machine, each
//! tagged with a [`CpuId`].
//!
//! Kernel code is modelled as *chunks* of cycles issued by a [`Workload`]:
//! "IP-forward one packet" is one chunk, "reclaim one transmit descriptor"
//! is another. A chunk's side effects commit when it completes
//! ([`Workload::chunk_done`]); an interrupt whose IPL preempts the current
//! context pauses the chunk mid-flight and resumes it after the handler
//! returns, nesting arbitrarily deep — exactly the fixed-priority
//! preemption that produces receive livelock.
//!
//! Execution contexts, highest priority first:
//!
//! 1. **Interrupt frames** — pushed when the [`intr
//!    controller`](crate::intr::IntrController) delivers a source whose IPL
//!    preempts the current level; popped when the handler's
//!    [`Workload::next_chunk`] returns `None` (return-from-interrupt).
//! 2. **Threads** — scheduled by the [`thread
//!    scheduler`](crate::thread::Scheduler) at IPL 0, preempted at chunk
//!    boundaries by higher-priority wakeups or quantum expiry, and by
//!    interrupts anywhere.
//! 3. **Idle** — when nothing is runnable the engine calls
//!    [`Workload::on_idle`] once (the hook the paper uses to re-enable
//!    interrupts and clear the cycle-limit total) and then advances time to
//!    the next external event.
//!
//! All cycles are accounted per context class; [`UsageReport`] is how the
//! Figure 7-1 experiment measures the CPU share a user process received.

use livelock_sim::{CalendarQueue, Cycles, EventQueue, Scheduler as EventScheduler};

use crate::fold::CycleFold;
use crate::intr::{IntrController, IntrSrc};
use crate::ipl::Ipl;
use crate::ledger::{CpuClass, CycleLedger};
use crate::thread::{Scheduler, ThreadId, ThreadState};
use crate::trace::{Trace, TraceEvent};

/// Identifies one CPU in a machine topology.
///
/// The single-CPU experiments run everything on `CpuId(0)`; the SMP
/// cluster gives each executor its own id, which is threaded through
/// ledger snapshots, Chrome-trace track ids, telemetry series, and
/// fault targeting so per-CPU data never degenerates into bare `usize`
/// indexing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub usize);

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// An execution context the workload can be asked to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtxKind {
    /// An interrupt handler for this source.
    Intr(IntrSrc),
    /// A thread at IPL 0.
    Thread(ThreadId),
}

/// A unit of CPU work: `cycles` of execution, identified to the workload by
/// an opaque `tag` when it completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Cost in cycles. Zero-cost chunks complete immediately.
    pub cycles: Cycles,
    /// Workload-defined discriminator passed back to
    /// [`Workload::chunk_done`].
    pub tag: u64,
    /// Extra identical repetitions beyond this chunk — a *burst*. After
    /// each completion (and its [`Workload::chunk_done`]) the engine
    /// re-issues the same `(cycles, tag)` without calling
    /// [`Workload::next_chunk`] again, announcing each re-issue through
    /// [`Workload::chunk_start`]. The workload may only promise
    /// repetitions whose `next_chunk` answer is provably identical no
    /// matter what events, interrupts, or preemptions land between them;
    /// the engine still honors every preemption point in between, so the
    /// executed schedule is bit-identical to the unbatched one.
    pub reps: u32,
}

impl Chunk {
    /// Creates a chunk.
    pub fn new(cycles: Cycles, tag: u64) -> Self {
        Chunk {
            cycles,
            tag,
            reps: 0,
        }
    }

    /// This chunk, promised for `reps` extra identical repetitions.
    pub fn with_reps(self, reps: u32) -> Self {
        Chunk { reps, ..self }
    }
}

/// The simulated kernel: produces chunks for contexts, reacts to chunk
/// completions and external events.
pub trait Workload {
    /// External event payload (packet arrivals, wire completions, timers).
    type Event;

    /// Asks the context for its next chunk; `None` ends the context
    /// (return-from-interrupt, or thread yield — a thread that has no work
    /// must put itself to sleep with [`Env::sleep`] first, or it will be
    /// rescheduled immediately).
    fn next_chunk(&mut self, env: &mut Env<'_, Self::Event>, ctx: CtxKind) -> Option<Chunk>;

    /// A chunk completed; commit its side effects.
    fn chunk_done(&mut self, env: &mut Env<'_, Self::Event>, ctx: CtxKind, tag: u64);

    /// An external event fired.
    fn on_event(&mut self, env: &mut Env<'_, Self::Event>, event: Self::Event);

    /// The CPU went idle (no frames, no runnable threads, no deliverable
    /// interrupts). Called once per idle entry; must be idempotent and must
    /// not unconditionally create work.
    fn on_idle(&mut self, env: &mut Env<'_, Self::Event>) {
        let _ = env;
    }

    /// A burst repetition (see [`Chunk::reps`]) is about to start running,
    /// at exactly the instant `next_chunk` would have been called for it.
    /// This is where per-chunk issue bookkeeping goes — timestamping the
    /// next packet, for instance.
    ///
    /// Must be *observationally pure* towards the machine: no posting or
    /// acknowledging interrupts, no waking or sleeping threads, no
    /// scheduling events. The engine relies on that to skip the redundant
    /// re-check of those states between the issue and the run.
    fn chunk_start(&mut self, env: &mut Env<'_, Self::Event>, ctx: CtxKind, tag: u64) {
        let _ = (env, ctx, tag);
    }
}

/// Which event-scheduler backend an [`EnvState`] runs on.
///
/// Both backends dispatch in bit-identical order (ascending time, FIFO at
/// equal times); they differ only in speed. [`Calendar`](Self::Calendar)
/// is the default: amortized O(1) under the steady event densities the
/// router trials produce. [`Heap`](Self::Heap) is the reference binary
/// heap — O(log n), kept as the equivalence oracle and fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The reference binary-heap [`EventQueue`].
    Heap,
    /// The [`CalendarQueue`], the engine default.
    #[default]
    Calendar,
}

/// The event queue behind [`EnvState`]: one of the two [`SchedulerKind`]
/// backends, dispatched through the sim crate's
/// [`Scheduler`](livelock_sim::Scheduler) trait.
enum EvBackend<E> {
    Heap(EventQueue<E>),
    Calendar(CalendarQueue<E>),
}

/// Initial bucket width handed to a fresh calendar backend. Any positive
/// value is correct; the queue re-derives the width from the observed
/// median event spacing at its first resize (64 pending events), so this
/// only has to be in the right galaxy.
const CALENDAR_INITIAL_SPACING: Cycles = Cycles::new(1_024);

impl<E> EvBackend<E> {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Heap => EvBackend::Heap(EventQueue::new()),
            SchedulerKind::Calendar => {
                EvBackend::Calendar(CalendarQueue::new(CALENDAR_INITIAL_SPACING))
            }
        }
    }

    fn schedule(&mut self, at: Cycles, payload: E) {
        match self {
            EvBackend::Heap(q) => q.schedule(at, payload),
            EvBackend::Calendar(q) => q.schedule(at, payload),
        }
    }

    fn peek_time(&mut self) -> Option<Cycles> {
        match self {
            EvBackend::Heap(q) => EventScheduler::peek_time(q),
            EvBackend::Calendar(q) => EventScheduler::peek_time(q),
        }
    }

    fn pop_due_batch(&mut self, now: Cycles, out: &mut Vec<(Cycles, E)>) -> usize {
        match self {
            EvBackend::Heap(q) => q.pop_due_batch(now, out),
            EvBackend::Calendar(q) => q.pop_due_batch(now, out),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            EvBackend::Heap(q) => q.is_empty(),
            EvBackend::Calendar(q) => q.is_empty(),
        }
    }
}

/// Mutable machine state shared between the engine and the workload.
///
/// Construct it first, register interrupt sources and spawn threads, then
/// hand it to [`Engine::new`] together with the workload built around those
/// ids.
pub struct EnvState<E> {
    /// The interrupt controller.
    pub intr: IntrController,
    /// The thread scheduler.
    pub sched: Scheduler,
    now: Cycles,
    evq: EvBackend<E>,
    events_dispatched: u64,
    usage: Usage,
    cpu: CpuId,
}

#[derive(Clone, Debug, Default)]
struct Usage {
    intr_by_src: Vec<Cycles>,
    thread_by_id: Vec<Cycles>,
    sched_cycles: Cycles,
    idle_cycles: Cycles,
    ledger: CycleLedger,
    intr_class: Vec<CpuClass>,
    thread_class: Vec<CpuClass>,
    /// Optional `(cpu, class, stage)` fold of the same charges, for
    /// flamegraph export. `None` (the default) costs nothing; `Some`
    /// only adds bookkeeping at the commit points below, never a
    /// scheduling change, so enabling it cannot perturb a trial.
    fold: Option<CycleFold>,
    /// Mirror of [`EnvState::cpu`] so the fold can be charged here
    /// without widening every charge call.
    cpu: CpuId,
}

/// Fold stage tag for cycles spent outside any workload chunk (the
/// scheduler's context-switch overhead and the idle loop). Workload
/// chunk tags start at 1 by convention, so 0 is free.
const FOLD_TAG_EXEC: u64 = 0;

impl Usage {
    fn intr_class_of(&self, src: IntrSrc) -> CpuClass {
        self.intr_class
            .get(src.0)
            .copied()
            .unwrap_or(CpuClass::KernelOther)
    }

    fn thread_class_of(&self, tid: ThreadId) -> CpuClass {
        self.thread_class
            .get(tid.0)
            .copied()
            .unwrap_or(CpuClass::KernelOther)
    }

    fn charge_intr(&mut self, src: IntrSrc, tag: u64, cy: Cycles) {
        if self.intr_by_src.len() <= src.0 {
            self.intr_by_src.resize(src.0 + 1, Cycles::ZERO);
        }
        self.intr_by_src[src.0] += cy;
        let class = self.intr_class_of(src);
        self.ledger.charge(class, cy);
        if let Some(f) = &mut self.fold {
            f.charge(self.cpu, class, tag, cy);
        }
    }

    fn charge_thread(&mut self, tid: ThreadId, tag: u64, cy: Cycles) {
        if self.thread_by_id.len() <= tid.0 {
            self.thread_by_id.resize(tid.0 + 1, Cycles::ZERO);
        }
        self.thread_by_id[tid.0] += cy;
        let class = self.thread_class_of(tid);
        self.ledger.charge(class, cy);
        if let Some(f) = &mut self.fold {
            f.charge(self.cpu, class, tag, cy);
        }
    }

    fn charge_sched(&mut self, cy: Cycles) {
        self.sched_cycles += cy;
        self.ledger.charge(CpuClass::KernelOther, cy);
        if let Some(f) = &mut self.fold {
            f.charge(self.cpu, CpuClass::KernelOther, FOLD_TAG_EXEC, cy);
        }
    }

    fn charge_idle(&mut self, cy: Cycles) {
        self.idle_cycles += cy;
        self.ledger.charge(CpuClass::Idle, cy);
        if let Some(f) = &mut self.fold {
            f.charge(self.cpu, CpuClass::Idle, FOLD_TAG_EXEC, cy);
        }
    }
}

impl<E> EnvState<E> {
    /// Creates machine state with the given scheduler quantum, on the
    /// default (calendar) event-queue backend.
    pub fn new(quantum: Cycles) -> Self {
        Self::with_scheduler(quantum, SchedulerKind::default())
    }

    /// Creates machine state on an explicit event-queue backend.
    pub fn with_scheduler(quantum: Cycles, kind: SchedulerKind) -> Self {
        EnvState {
            intr: IntrController::new(),
            sched: Scheduler::new(quantum),
            now: Cycles::ZERO,
            evq: EvBackend::new(kind),
            events_dispatched: 0,
            usage: Usage::default(),
            cpu: CpuId(0),
        }
    }

    /// The CPU this state belongs to ([`CpuId(0)`](CpuId) outside an SMP
    /// cluster).
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Tags this state (its ledger, counters, and traces) as belonging to
    /// `cpu`. The SMP cluster calls this once per executor at build time.
    pub fn set_cpu(&mut self, cpu: CpuId) {
        self.cpu = cpu;
        self.usage.cpu = cpu;
    }

    /// Turns on the `(cpu, class, stage)` cycle fold for flamegraph
    /// export. Pure bookkeeping at the existing ledger commit points —
    /// no event, cost, or scheduling change — so a trial with the fold
    /// on is bit-identical to the same trial with it off.
    pub fn enable_fold(&mut self) {
        if self.usage.fold.is_none() {
            self.usage.fold = Some(CycleFold::new());
        }
    }

    /// The cycle fold, when [`enable_fold`](Self::enable_fold) was
    /// called before the engine ran.
    pub fn fold(&self) -> Option<&CycleFold> {
        self.usage.fold.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// External events delivered to the workload so far — the engine's
    /// unit of dispatch throughput (`events/sec` in the perf artifact).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Schedules an event at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: Cycles, event: E) {
        self.evq.schedule(at.max(self.now), event);
    }

    /// Schedules an event `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        self.evq.schedule(self.now + delay, event);
    }

    /// Cycles consumed so far by a thread.
    pub fn thread_cycles(&self, tid: ThreadId) -> Cycles {
        self.usage
            .thread_by_id
            .get(tid.0)
            .copied()
            .unwrap_or(Cycles::ZERO)
    }

    /// Cycles consumed so far by an interrupt source's handler.
    pub fn intr_cycles(&self, src: IntrSrc) -> Cycles {
        self.usage
            .intr_by_src
            .get(src.0)
            .copied()
            .unwrap_or(Cycles::ZERO)
    }

    /// Declares the [`CpuClass`] cycles in this source's handler are
    /// charged to. Unclassified sources default to
    /// [`CpuClass::KernelOther`]. Call at registration time, before the
    /// engine runs.
    pub fn set_intr_class(&mut self, src: IntrSrc, class: CpuClass) {
        if self.usage.intr_class.len() <= src.0 {
            self.usage
                .intr_class
                .resize(src.0 + 1, CpuClass::KernelOther);
        }
        self.usage.intr_class[src.0] = class;
    }

    /// Declares the [`CpuClass`] cycles in this thread are charged to.
    /// Unclassified threads default to [`CpuClass::KernelOther`].
    pub fn set_thread_class(&mut self, tid: ThreadId, class: CpuClass) {
        if self.usage.thread_class.len() <= tid.0 {
            self.usage
                .thread_class
                .resize(tid.0 + 1, CpuClass::KernelOther);
        }
        self.usage.thread_class[tid.0] = class;
    }

    /// The conserved per-class cycle ledger: Σ over classes equals
    /// elapsed virtual time, always.
    pub fn ledger(&self) -> CycleLedger {
        self.usage.ledger
    }
}

/// The workload's handle to the machine during a callback.
///
/// A thin wrapper over [`EnvState`] so the workload cannot touch the
/// engine's context stack, only the architectural state.
pub struct Env<'a, E> {
    st: &'a mut EnvState<E>,
}

impl<'a, E> Env<'a, E> {
    /// Current virtual time (the "cycle counter register" of paper §7).
    pub fn now(&self) -> Cycles {
        self.st.now
    }

    /// The CPU this callback is running on.
    pub fn cpu(&self) -> CpuId {
        self.st.cpu
    }

    /// Schedules an event at absolute time `at`.
    pub fn schedule_at(&mut self, at: Cycles, event: E) {
        self.st.schedule_at(at, event);
    }

    /// Schedules an event `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        self.st.schedule_in(delay, event);
    }

    /// Posts an interrupt request.
    pub fn post_intr(&mut self, src: IntrSrc) {
        self.st.intr.post(src);
    }

    /// Masks or unmasks an interrupt source.
    pub fn set_intr_enabled(&mut self, src: IntrSrc, enabled: bool) {
        self.st.intr.set_enabled(src, enabled);
    }

    /// Returns `true` when a request is latched for the source.
    pub fn intr_pending(&self, src: IntrSrc) -> bool {
        self.st.intr.is_pending(src)
    }

    /// Clears a latched request without delivering it.
    pub fn intr_ack(&mut self, src: IntrSrc) {
        self.st.intr.acknowledge(src);
    }

    /// Wakes a thread.
    pub fn wake(&mut self, tid: ThreadId) -> bool {
        self.st.sched.wake(tid)
    }

    /// Puts a thread to sleep (typically the current one, right before its
    /// `next_chunk` returns `None`).
    pub fn sleep(&mut self, tid: ThreadId) {
        self.st.sched.sleep(tid);
    }

    /// Returns a thread's state.
    pub fn thread_state(&self, tid: ThreadId) -> ThreadState {
        self.st.sched.state(tid)
    }

    /// Cycles consumed so far by a thread (for CPU-share measurements).
    pub fn thread_cycles(&self, tid: ThreadId) -> Cycles {
        self.st.thread_cycles(tid)
    }

    /// Snapshot of the conserved per-class cycle ledger (for telemetry
    /// samplers running inside workload callbacks).
    pub fn ledger(&self) -> CycleLedger {
        self.st.ledger()
    }

    /// Cumulative count of hardware interrupts taken (for telemetry
    /// samplers computing interrupt rates).
    pub fn intr_total_taken(&self) -> u64 {
        self.st.intr.total_taken()
    }
}

/// Why [`Engine::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exit {
    /// Virtual time reached the requested limit.
    HitLimit,
    /// No events remain and the machine is idle: nothing can ever happen
    /// again.
    Quiescent,
}

/// Cycle-accounting snapshot.
#[derive(Clone, Debug)]
pub struct UsageReport {
    /// Total cycles in interrupt handlers, per source index.
    pub intr_by_src: Vec<Cycles>,
    /// Total cycles per thread index.
    pub thread_by_id: Vec<Cycles>,
    /// Context-switch overhead cycles.
    pub sched_cycles: Cycles,
    /// Idle cycles.
    pub idle_cycles: Cycles,
    /// The conserved per-class ledger; its total equals `now`.
    pub ledger: CycleLedger,
    /// Virtual time at the snapshot.
    pub now: Cycles,
}

impl UsageReport {
    /// Total interrupt cycles across sources.
    pub fn total_intr(&self) -> Cycles {
        self.intr_by_src.iter().copied().sum()
    }

    /// Total thread cycles across threads.
    pub fn total_thread(&self) -> Cycles {
        self.thread_by_id.iter().copied().sum()
    }
}

#[derive(Clone, Copy, Debug)]
struct Progress {
    remaining: Cycles,
    /// Full cost of the chunk, kept so burst repetitions can re-arm.
    cost: Cycles,
    tag: u64,
    /// Identical repetitions still owed after this one (see
    /// [`Chunk::reps`]).
    reps: u32,
    /// A re-armed burst repetition that has not started running yet:
    /// [`Workload::chunk_start`] still has to fire, and (for threads) the
    /// preemption check `next_chunk` issue points get must still happen.
    fresh: bool,
}

impl Progress {
    fn from_chunk(c: Chunk) -> Self {
        Progress {
            remaining: c.cycles,
            cost: c.cycles,
            tag: c.tag,
            reps: c.reps,
            fresh: false,
        }
    }

    /// The re-armed successor repetition of a completed burst chunk.
    fn rearm(self) -> Option<Self> {
        (self.reps > 0).then(|| Progress {
            remaining: self.cost,
            cost: self.cost,
            tag: self.tag,
            reps: self.reps - 1,
            fresh: true,
        })
    }
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    src: IntrSrc,
    ipl: Ipl,
    progress: Option<Progress>,
}

/// The executor: owns the machine state and the workload, and advances
/// virtual time.
pub struct Engine<W: Workload> {
    st: EnvState<W::Event>,
    workload: W,
    frames: Vec<Frame>,
    cur_thread: Option<(ThreadId, Option<Progress>)>,
    last_thread: Option<ThreadId>,
    switch_remaining: Cycles,
    ctx_switch_cost: Cycles,
    idle_notified: bool,
    trace: Option<Trace>,
    /// Reused buffer for the batched due-event drain in `run_until`.
    due_batch: Vec<(Cycles, W::Event)>,
}

/// Iterations without time progress before the engine declares the
/// workload stuck (a debugging aid, far above any legitimate burst of
/// zero-cost work).
const SPIN_LIMIT: u64 = 10_000_000;

impl<W: Workload> Engine<W> {
    /// Creates an engine over pre-populated machine state.
    pub fn new(st: EnvState<W::Event>, workload: W, ctx_switch_cost: Cycles) -> Self {
        Engine {
            st,
            workload,
            frames: Vec::new(),
            cur_thread: None,
            last_thread: None,
            switch_remaining: Cycles::ZERO,
            ctx_switch_cost,
            idle_notified: false,
            trace: None,
            due_batch: Vec::new(),
        }
    }

    /// Enables scheduling-event tracing into a ring of `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, when tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(self.st.now, event);
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.st.now
    }

    /// Read access to the workload (for post-run measurement).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Mutable access to the workload (for between-run reconfiguration).
    pub fn workload_mut(&mut self) -> &mut W {
        &mut self.workload
    }

    /// Read access to the machine state.
    pub fn state(&self) -> &EnvState<W::Event> {
        &self.st
    }

    /// The current interrupt priority level.
    pub fn current_ipl(&self) -> Ipl {
        self.frames.last().map_or(Ipl::NONE, |f| f.ipl)
    }

    /// A cycle-accounting snapshot.
    pub fn usage(&self) -> UsageReport {
        debug_assert_eq!(
            self.st.usage.ledger.total(),
            self.st.now,
            "cycle ledger not conserved: class totals must sum to elapsed time"
        );
        if let Some(f) = &self.st.usage.fold {
            debug_assert_eq!(
                f.total(),
                self.st.now,
                "cycle fold not conserved: stack totals must sum to elapsed time"
            );
        }
        UsageReport {
            intr_by_src: self.st.usage.intr_by_src.clone(),
            thread_by_id: self.st.usage.thread_by_id.clone(),
            sched_cycles: self.st.usage.sched_cycles,
            idle_cycles: self.st.usage.idle_cycles,
            ledger: self.st.usage.ledger,
            now: self.st.now,
        }
    }

    /// Consumes the engine, returning the machine state and workload.
    pub fn into_parts(self) -> (EnvState<W::Event>, W) {
        (self.st, self.workload)
    }

    /// Schedules an external event from outside the workload (experiment
    /// drivers injecting packet arrivals, test harnesses).
    pub fn state_schedule(&mut self, at: Cycles, event: W::Event) {
        self.st.schedule_at(at, event);
    }

    fn env_call<R>(st: &mut EnvState<W::Event>, f: impl FnOnce(&mut Env<'_, W::Event>) -> R) -> R {
        let mut env = Env { st };
        f(&mut env)
    }

    /// Runs until virtual time `limit` or quiescence, whichever first.
    pub fn run_until(&mut self, limit: Cycles) -> Exit {
        let mut spins: u64 = 0;
        let mut last_now = self.st.now;
        loop {
            if self.st.now > last_now {
                last_now = self.st.now;
                spins = 0;
            } else {
                spins += 1;
                assert!(
                    spins < SPIN_LIMIT,
                    "workload makes no progress at t={} (zero-cost loop?)",
                    self.st.now
                );
            }

            if self.st.now >= limit {
                return Exit::HitLimit;
            }

            // 1. Deliver due events — the whole same-cycle burst in one
            // batched drain. Dispatch order is identical to popping one
            // event per loop iteration: handlers cannot advance time, so
            // nothing else runs between two due events either way, and
            // anything a handler schedules for `now` carries a later
            // sequence number than every event already drained, so it
            // pops (in order) on the next pass.
            // The cached peek is O(1) for both backends; the overwhelmingly
            // common loop iteration has nothing due and skips the drain
            // machinery entirely.
            if matches!(self.st.evq.peek_time(), Some(t) if t <= self.st.now) {
                let mut batch = std::mem::take(&mut self.due_batch);
                if self.st.evq.pop_due_batch(self.st.now, &mut batch) > 0 {
                    self.st.events_dispatched += batch.len() as u64;
                    for (_, ev) in batch.drain(..) {
                        self.record(TraceEvent::External);
                        let workload = &mut self.workload;
                        Self::env_call(&mut self.st, |env| workload.on_event(env, ev));
                    }
                    self.idle_notified = false;
                    self.due_batch = batch;
                    continue;
                }
                self.due_batch = batch;
            }

            // 2. Take a preempting interrupt.
            if let Some((src, ipl)) = self.st.intr.take(self.current_ipl()) {
                self.record(TraceEvent::IntrEnter(src));
                self.frames.push(Frame {
                    src,
                    ipl,
                    progress: None,
                });
                self.idle_notified = false;
                continue;
            }

            // 3. Run the top interrupt frame.
            if let Some(top) = self.frames.last_mut() {
                let src = top.src;
                if top.progress.is_none() {
                    let workload = &mut self.workload;
                    let chunk = Self::env_call(&mut self.st, |env| {
                        workload.next_chunk(env, CtxKind::Intr(src))
                    });
                    match chunk {
                        Some(c) => top.progress = Some(Progress::from_chunk(c)),
                        None => {
                            self.frames.pop();
                            self.record(TraceEvent::IntrExit(src));
                        }
                    }
                    continue;
                }
                self.step_intr_chunk(limit);
                continue;
            }

            // 4. Pay off any pending context-switch overhead.
            if !self.switch_remaining.is_zero() {
                self.step_switch_overhead(limit);
                continue;
            }

            // 5. Thread level.
            if let Some((tid, progress)) = self.cur_thread {
                // The workload may have put the current thread to sleep.
                if self.st.sched.running() != Some(tid) {
                    self.cur_thread = None;
                    continue;
                }
                // A chunk-issue boundary: either `next_chunk` is about to
                // be asked, or a re-armed burst repetition is about to
                // start. Both get exactly the same preemption check.
                let at_issue = match progress {
                    None => true,
                    Some(p) => p.fresh,
                };
                if at_issue && self.st.sched.should_preempt() {
                    self.st.sched.yield_current();
                    self.cur_thread = None;
                    continue;
                }
                if progress.is_none() {
                    let workload = &mut self.workload;
                    let chunk = Self::env_call(&mut self.st, |env| {
                        workload.next_chunk(env, CtxKind::Thread(tid))
                    });
                    match chunk {
                        Some(c) => self.cur_thread = Some((tid, Some(Progress::from_chunk(c)))),
                        None => {
                            if self.st.sched.running() == Some(tid) {
                                self.st.sched.yield_current();
                            }
                            self.cur_thread = None;
                        }
                    }
                    continue;
                }
                self.step_thread_chunk(tid, limit);
                continue;
            }
            if let Some(tid) = self.st.sched.pick() {
                if self.last_thread != Some(tid) {
                    self.switch_remaining = self.ctx_switch_cost;
                    self.record(TraceEvent::ThreadRun(tid));
                }
                self.last_thread = Some(tid);
                self.cur_thread = Some((tid, None));
                self.idle_notified = false;
                continue;
            }

            // 6. Idle.
            if !self.idle_notified {
                self.idle_notified = true;
                self.record(TraceEvent::Idle);
                let workload = &mut self.workload;
                Self::env_call(&mut self.st, |env| workload.on_idle(env));
                continue;
            }
            match self.st.evq.peek_time() {
                Some(t) if t <= limit => {
                    self.st.usage.charge_idle(t - self.st.now);
                    self.st.now = t;
                }
                Some(_) | None => {
                    self.st.usage.charge_idle(limit - self.st.now);
                    self.st.now = limit;
                    return if self.st.evq.is_empty() {
                        Exit::Quiescent
                    } else {
                        Exit::HitLimit
                    };
                }
            }
        }
    }

    /// Runs until no event, thread, or interrupt can ever run again.
    pub fn run_to_quiescence(&mut self) -> Exit {
        self.run_until(Cycles::MAX)
    }

    /// The stop time for a chunk step: the earliest of chunk completion,
    /// the next event, and the run limit. (`&mut` only because the
    /// calendar backend's peek maintains its min cache.)
    fn step_stop(&mut self, remaining: Cycles, limit: Cycles) -> (Cycles, bool) {
        let chunk_end = self.st.now + remaining;
        let mut stop = chunk_end.min(limit);
        if let Some(t) = self.st.evq.peek_time() {
            stop = stop.min(t.max(self.st.now));
        }
        (stop, stop == chunk_end)
    }

    fn step_intr_chunk(&mut self, limit: Cycles) {
        // The run loop only dispatches here with a frame carrying progress;
        // if that ever stops holding, a no-op step just sends the loop back
        // through the next-chunk path instead of killing the trial.
        let Some(f) = self.frames.last() else { return };
        let (src, mut progress) = match (f.src, f.progress) {
            (src, Some(p)) => (src, p),
            (_, None) => return,
        };
        let frame_idx = self.frames.len() - 1;
        if progress.fresh {
            // A burst repetition issues here — the exact instant
            // `next_chunk` would have been called for it. `chunk_start`
            // is observationally pure towards the machine, so the
            // interrupt/event checks the loop already ran this iteration
            // cannot have been invalidated.
            progress.fresh = false;
            self.frames[frame_idx].progress = Some(progress);
            let workload = &mut self.workload;
            Self::env_call(&mut self.st, |env| {
                workload.chunk_start(env, CtxKind::Intr(src), progress.tag)
            });
        }
        let (stop, completes) = self.step_stop(progress.remaining, limit);
        let ran = stop - self.st.now;
        self.st.usage.charge_intr(src, progress.tag, ran);
        self.st.now = stop;
        if completes {
            self.frames[frame_idx].progress = None;
            let workload = &mut self.workload;
            Self::env_call(&mut self.st, |env| {
                workload.chunk_done(env, CtxKind::Intr(src), progress.tag)
            });
            // Re-arm the next repetition of a burst; the loop still
            // honors due events and preempting interrupts before it runs.
            self.frames[frame_idx].progress = progress.rearm();
        } else {
            self.frames[frame_idx].progress = Some(Progress {
                remaining: progress.remaining - ran,
                ..progress
            });
        }
    }

    fn step_thread_chunk(&mut self, tid: ThreadId, limit: Cycles) {
        // Same contract as step_intr_chunk: dispatched only with progress
        // in hand, and a no-op step is harmless if the contract breaks.
        let Some(mut progress) = self.cur_thread.and_then(|(_, p)| p) else {
            return;
        };
        if progress.fresh {
            // Burst repetition issue point; the loop has already run this
            // boundary's preemption check (see `at_issue` in `run_until`).
            progress.fresh = false;
            self.cur_thread = Some((tid, Some(progress)));
            let workload = &mut self.workload;
            Self::env_call(&mut self.st, |env| {
                workload.chunk_start(env, CtxKind::Thread(tid), progress.tag)
            });
        }
        let (stop, completes) = self.step_stop(progress.remaining, limit);
        let ran = stop - self.st.now;
        self.st.usage.charge_thread(tid, progress.tag, ran);
        self.st.sched.charge_quantum(ran);
        self.st.now = stop;
        if completes {
            self.cur_thread = Some((tid, None));
            let workload = &mut self.workload;
            Self::env_call(&mut self.st, |env| {
                workload.chunk_done(env, CtxKind::Thread(tid), progress.tag)
            });
            self.cur_thread = Some((tid, progress.rearm()));
        } else {
            self.cur_thread = Some((
                tid,
                Some(Progress {
                    remaining: progress.remaining - ran,
                    ..progress
                }),
            ));
        }
    }

    fn step_switch_overhead(&mut self, limit: Cycles) {
        let (stop, completes) = self.step_stop(self.switch_remaining, limit);
        let ran = stop - self.st.now;
        self.st.usage.charge_sched(ran);
        self.st.now = stop;
        self.switch_remaining = if completes {
            Cycles::ZERO
        } else {
            self.switch_remaining - ran
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::Priority;

    /// A scriptable workload for engine tests.
    #[derive(Default)]
    struct Script {
        /// (ctx, chunk) queues: chunks handed out per context.
        intr_chunks: Vec<(IntrSrc, Vec<Chunk>)>,
        thread_chunks: Vec<(ThreadId, Vec<Chunk>)>,
        /// Log of (time, what) records.
        log: Vec<(u64, String)>,
        /// Threads that should sleep after draining their chunks.
        sleep_when_done: Vec<ThreadId>,
        idle_calls: u64,
    }

    #[derive(Debug)]
    enum Ev {
        Post(IntrSrc),
        Wake(ThreadId),
    }

    impl Script {
        fn log(&mut self, now: Cycles, s: impl Into<String>) {
            self.log.push((now.raw(), s.into()));
        }
    }

    impl Workload for Script {
        type Event = Ev;

        fn next_chunk(&mut self, env: &mut Env<'_, Ev>, ctx: CtxKind) -> Option<Chunk> {
            match ctx {
                CtxKind::Intr(src) => self
                    .intr_chunks
                    .iter_mut()
                    .find(|(s, _)| *s == src)
                    .and_then(|(_, q)| {
                        if q.is_empty() {
                            None
                        } else {
                            Some(q.remove(0))
                        }
                    }),
                CtxKind::Thread(tid) => {
                    let chunk = self
                        .thread_chunks
                        .iter_mut()
                        .find(|(t, _)| *t == tid)
                        .and_then(|(_, q)| {
                            if q.is_empty() {
                                None
                            } else {
                                Some(q.remove(0))
                            }
                        });
                    if chunk.is_none() && self.sleep_when_done.contains(&tid) {
                        env.sleep(tid);
                    }
                    chunk
                }
            }
        }

        fn chunk_done(&mut self, env: &mut Env<'_, Ev>, ctx: CtxKind, tag: u64) {
            let now = env.now();
            self.log(now, format!("done {ctx:?} tag={tag}"));
        }

        fn on_event(&mut self, env: &mut Env<'_, Ev>, event: Ev) {
            match event {
                Ev::Post(src) => env.post_intr(src),
                Ev::Wake(tid) => {
                    env.wake(tid);
                }
            }
        }

        fn on_idle(&mut self, _env: &mut Env<'_, Ev>) {
            self.idle_calls += 1;
        }
    }

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    #[test]
    fn single_interrupt_runs_to_completion() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        st.schedule_at(cy(100), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(500), 1), Chunk::new(cy(300), 2)])],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        assert_eq!(e.run_to_quiescence(), Exit::Quiescent);
        let log = &e.workload().log;
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 600, "first chunk ends at 100+500");
        assert_eq!(log[1].0, 900);
        assert_eq!(e.usage().intr_by_src[src.0], cy(800));
    }

    #[test]
    fn higher_ipl_preempts_mid_chunk_and_resumes() {
        let mut st = EnvState::new(cy(1_000_000));
        let soft = st.intr.register("softnet", Ipl::SOFTNET);
        let hard = st.intr.register("rx", Ipl::IMP);
        st.schedule_at(cy(0), Ev::Post(soft));
        st.schedule_at(cy(400), Ev::Post(hard));
        let wl = Script {
            intr_chunks: vec![
                (soft, vec![Chunk::new(cy(1000), 10)]),
                (hard, vec![Chunk::new(cy(200), 20)]),
            ],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        let log = &e.workload().log;
        // Hard handler finishes first (at 600), soft chunk resumes and ends
        // at 1000 + 200 of preemption = 1200.
        assert_eq!(log[0], (600, "done Intr(IntrSrc(1)) tag=20".to_string()));
        assert_eq!(log[1], (1200, "done Intr(IntrSrc(0)) tag=10".to_string()));
    }

    #[test]
    fn same_ipl_does_not_preempt() {
        let mut st = EnvState::new(cy(1_000_000));
        let a = st.intr.register("rx0", Ipl::IMP);
        let b = st.intr.register("rx1", Ipl::IMP);
        st.schedule_at(cy(0), Ev::Post(a));
        st.schedule_at(cy(100), Ev::Post(b));
        let wl = Script {
            intr_chunks: vec![
                (a, vec![Chunk::new(cy(1000), 1)]),
                (b, vec![Chunk::new(cy(100), 2)]),
            ],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        let log = &e.workload().log;
        assert_eq!(log[0].0, 1000, "a runs to completion");
        assert_eq!(log[1].0, 1100, "b runs after");
    }

    #[test]
    fn interrupt_preempts_thread_and_thread_resumes() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        let t = st.sched.spawn("worker", Priority::USER);
        st.sched.wake(t);
        st.schedule_at(cy(250), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(100), 9)])],
            thread_chunks: vec![(t, vec![Chunk::new(cy(1000), 5)])],
            sleep_when_done: vec![t],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        let log = &e.workload().log;
        assert_eq!(log[0].0, 350, "interrupt done");
        assert_eq!(log[1].0, 1100, "thread chunk stretched by 100");
        let u = e.usage();
        assert_eq!(u.thread_by_id[t.0], cy(1000));
        assert_eq!(u.intr_by_src[src.0], cy(100));
    }

    #[test]
    fn masked_interrupt_latches_until_enabled() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        st.intr.set_enabled(src, false);
        st.schedule_at(cy(0), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(10), 1)])],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_until(cy(500));
        assert!(e.workload().log.is_empty(), "masked: nothing ran");
        // Unmask mid-run; the latched request delivers.
        e.st.intr.set_enabled(src, true);
        e.run_until(cy(1000));
        assert_eq!(e.workload().log.len(), 1);
    }

    #[test]
    fn priority_preemption_at_chunk_boundary() {
        let mut st = EnvState::new(cy(1_000_000));
        let user = st.sched.spawn("user", Priority::USER);
        let kern = st.sched.spawn("kern", Priority::KERNEL);
        st.sched.wake(user);
        st.schedule_at(cy(150), Ev::Wake(kern));
        let wl = Script {
            thread_chunks: vec![
                (user, vec![Chunk::new(cy(100), 1), Chunk::new(cy(100), 2)]),
                (kern, vec![Chunk::new(cy(50), 3)]),
            ],
            sleep_when_done: vec![user, kern],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        let log = &e.workload().log;
        // user chunk1 done at 100; chunk2 runs 100..200; kern wakes at 150
        // but only preempts at the boundary (200), then runs 200..250.
        assert_eq!(log[0], (100, "done Thread(ThreadId(0)) tag=1".into()));
        assert_eq!(log[1], (200, "done Thread(ThreadId(0)) tag=2".into()));
        assert_eq!(log[2], (250, "done Thread(ThreadId(1)) tag=3".into()));
    }

    #[test]
    fn context_switch_cost_is_charged() {
        let mut st = EnvState::new(cy(1_000_000));
        let t = st.sched.spawn("worker", Priority::USER);
        st.sched.wake(t);
        let wl = Script {
            thread_chunks: vec![(t, vec![Chunk::new(cy(100), 1)])],
            sleep_when_done: vec![t],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(40));
        e.run_to_quiescence();
        assert_eq!(e.workload().log[0].0, 140, "40 switch + 100 work");
        assert_eq!(e.usage().sched_cycles, cy(40));
    }

    #[test]
    fn idle_hook_called_once_per_idle_entry() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        st.schedule_at(cy(1000), Ev::Post(src));
        st.schedule_at(cy(2000), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(10), 1), Chunk::new(cy(10), 2)])],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        // Idle entered: at t=0 (before first event), after each interrupt.
        let calls = e.workload().idle_calls;
        assert!((2..=4).contains(&calls), "idle calls = {calls}");
        assert_eq!(e.workload().log.len(), 2);
    }

    #[test]
    fn run_until_limit_pauses_mid_chunk_and_resumes() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        st.schedule_at(cy(0), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(1000), 1)])],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        assert_eq!(e.run_until(cy(400)), Exit::HitLimit);
        assert_eq!(e.now(), cy(400));
        assert!(e.workload().log.is_empty());
        assert_eq!(e.run_to_quiescence(), Exit::Quiescent);
        assert_eq!(e.workload().log[0].0, 1000);
    }

    #[test]
    fn idle_time_is_accounted() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        st.schedule_at(cy(500), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(100), 1)])],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_until(cy(1000));
        let u = e.usage();
        assert_eq!(u.idle_cycles, cy(900), "500 before + 400 after");
        assert_eq!(u.total_intr(), cy(100));
        assert_eq!(u.now, cy(1000));
    }

    #[test]
    fn ledger_conserves_and_classifies() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("rx", Ipl::IMP);
        st.set_intr_class(src, CpuClass::RxIntr);
        let t = st.sched.spawn("worker", Priority::USER);
        st.set_thread_class(t, CpuClass::UserProc);
        st.sched.wake(t);
        st.schedule_at(cy(250), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(100), 9)])],
            thread_chunks: vec![(t, vec![Chunk::new(cy(1000), 5)])],
            sleep_when_done: vec![t],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(40));
        e.run_until(cy(2_000));
        let u = e.usage();
        assert_eq!(u.ledger.get(CpuClass::RxIntr), cy(100));
        assert_eq!(u.ledger.get(CpuClass::UserProc), cy(1000));
        assert_eq!(u.ledger.get(CpuClass::KernelOther), cy(40), "switch cost");
        assert_eq!(u.ledger.get(CpuClass::Idle), u.idle_cycles);
        assert_eq!(u.ledger.total(), u.now, "conservation");
    }

    #[test]
    fn fold_conserves_and_tags_by_stage() {
        let mut st = EnvState::new(cy(1_000_000));
        st.enable_fold();
        let src = st.intr.register("rx", Ipl::IMP);
        st.set_intr_class(src, CpuClass::RxIntr);
        let t = st.sched.spawn("worker", Priority::USER);
        st.set_thread_class(t, CpuClass::UserProc);
        st.sched.wake(t);
        st.schedule_at(cy(250), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(100), 9)])],
            thread_chunks: vec![(t, vec![Chunk::new(cy(1000), 5)])],
            sleep_when_done: vec![t],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(40));
        e.run_until(cy(2_000));
        let u = e.usage();
        let fold = e.state().fold().expect("fold enabled");
        assert_eq!(fold.total(), u.now, "fold conserves elapsed time");
        let by_stack: Vec<_> = fold.iter().collect();
        assert!(by_stack
            .iter()
            .any(|&(cpu, class, tag, cy_)| cpu == CpuId(0)
                && class == CpuClass::RxIntr
                && tag == 9
                && cy_ == cy(100)));
        assert!(by_stack
            .iter()
            .any(|&(_, class, tag, cy_)| class == CpuClass::UserProc
                && tag == 5
                && cy_ == cy(1000)));
        // Switch overhead and idle land on the executor tag 0.
        assert!(by_stack
            .iter()
            .any(|&(_, class, tag, _)| class == CpuClass::KernelOther && tag == 0));
        assert!(by_stack
            .iter()
            .any(|&(_, class, tag, _)| class == CpuClass::Idle && tag == 0));
    }

    #[test]
    fn fold_off_by_default() {
        let st: EnvState<Ev> = EnvState::new(cy(1_000));
        assert!(st.fold().is_none());
    }

    #[test]
    fn unclassified_contexts_charge_kernel_other() {
        let mut st = EnvState::new(cy(1_000_000));
        let src = st.intr.register("mystery", Ipl::IMP);
        st.schedule_at(cy(0), Ev::Post(src));
        let wl = Script {
            intr_chunks: vec![(src, vec![Chunk::new(cy(77), 1)])],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        assert_eq!(e.usage().ledger.get(CpuClass::KernelOther), cy(77));
    }

    #[test]
    fn quiescent_with_no_work_at_all() {
        let st: EnvState<Ev> = EnvState::new(cy(1_000));
        let mut e = Engine::new(st, Script::default(), cy(0));
        assert_eq!(e.run_until(cy(5_000)), Exit::Quiescent);
        assert_eq!(e.now(), cy(5_000), "idles up to the limit");
    }

    #[test]
    fn nested_preemption_three_deep() {
        let mut st = EnvState::new(cy(1_000_000));
        let soft = st.intr.register("softnet", Ipl::SOFTNET);
        let imp = st.intr.register("rx", Ipl::IMP);
        let clock = st.intr.register("clock", Ipl::CLOCK);
        st.schedule_at(cy(0), Ev::Post(soft));
        st.schedule_at(cy(100), Ev::Post(imp));
        st.schedule_at(cy(150), Ev::Post(clock));
        let wl = Script {
            intr_chunks: vec![
                (soft, vec![Chunk::new(cy(1000), 1)]),
                (imp, vec![Chunk::new(cy(200), 2)]),
                (clock, vec![Chunk::new(cy(30), 3)]),
            ],
            ..Default::default()
        };
        let mut e = Engine::new(st, wl, cy(0));
        e.run_to_quiescence();
        let log = &e.workload().log;
        assert_eq!(log[0].0, 180, "clock at the top of the stack");
        assert_eq!(log[1].0, 330, "imp resumed, finished 100+200+30");
        assert_eq!(log[2].0, 1230, "softnet stretched by both preemptors");
        assert_eq!(e.usage().total_intr(), cy(1230));
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn spin_guard_catches_zero_cost_loops() {
        struct Spinner;
        impl Workload for Spinner {
            type Event = ();
            fn next_chunk(&mut self, _env: &mut Env<'_, ()>, _ctx: CtxKind) -> Option<Chunk> {
                Some(Chunk::new(Cycles::ZERO, 0))
            }
            fn chunk_done(&mut self, _env: &mut Env<'_, ()>, _ctx: CtxKind, _tag: u64) {}
            fn on_event(&mut self, _env: &mut Env<'_, ()>, _event: ()) {}
        }
        let mut st = EnvState::new(cy(1_000));
        let src = st.intr.register("x", Ipl::IMP);
        st.intr.post(src);
        // The handler never returns None and never costs cycles.
        let mut e = Engine::new(st, Spinner, cy(0));
        e.run_until(cy(10));
    }
}
