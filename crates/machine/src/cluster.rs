//! A deterministic SMP cluster: N per-CPU [`Engine`]s advanced in
//! round-robin time slices.
//!
//! Each CPU is a complete, independent executor — its own run queue,
//! event scheduler, interrupt controller, and conserved
//! [`CycleLedger`](crate::ledger::CycleLedger). The cluster advances them
//! through virtual time in fixed-size slices, always visiting CPUs in
//! ascending [`CpuId`] order within a slice. Because the interleaving is a
//! pure function of (slice size, CPU count) and each engine is itself
//! deterministic, a cluster run is bit-identical on every host and at any
//! `par_map` job count — the multi-CPU extension of the single-engine
//! determinism argument.
//!
//! Cross-CPU communication (IPI-style wakeups, work stealing) happens at
//! *slice boundaries only*: the `before_slice` hook passed to
//! [`Cluster::run_until`] runs just before each CPU's slice and is the one
//! sanctioned point where shared state may be turned into engine events.
//! That bounds cross-CPU signal latency at one slice (100 µs at the
//! default slice and calibrated clock) without ever letting two engines
//! interleave within a slice — which is what makes the schedule, and
//! therefore every counter, reproducible.

use livelock_sim::Cycles;

use crate::cpu::{CpuId, Engine, Workload};

/// Default interleaving slice: 10,000 cycles = 100 µs at the calibrated
/// 100 MHz clock. Small enough that cross-CPU wakeup latency is
/// negligible against the millisecond-scale clock tick, large enough that
/// a full trial costs only tens of thousands of slice switches.
pub const DEFAULT_SLICE: Cycles = Cycles::new(10_000);

/// N per-CPU engines advanced in deterministic round-robin time slices.
pub struct Cluster<W: Workload> {
    engines: Vec<Engine<W>>,
    slice: Cycles,
    now: Cycles,
}

impl<W: Workload> Cluster<W> {
    /// Builds a cluster over pre-constructed engines; `engines[k]` is CPU
    /// `k`. Every engine must start at the same virtual time (normally
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics on an empty engine list or a zero slice.
    pub fn new(engines: Vec<Engine<W>>, slice: Cycles) -> Self {
        assert!(!engines.is_empty(), "a cluster has at least one CPU");
        assert!(!slice.is_zero(), "slice must be positive");
        let now = engines[0].now();
        assert!(
            engines.iter().all(|e| e.now() == now),
            "all engines must start at the same virtual time"
        );
        Cluster { engines, slice, now }
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.engines.len()
    }

    /// Cluster virtual time: every engine has been advanced exactly this
    /// far after [`Cluster::run_until`] returns.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Read access to one CPU's engine.
    pub fn engine(&self, cpu: CpuId) -> &Engine<W> {
        &self.engines[cpu.0]
    }

    /// Mutable access to one CPU's engine (event injection, measurement).
    pub fn engine_mut(&mut self, cpu: CpuId) -> &mut Engine<W> {
        &mut self.engines[cpu.0]
    }

    /// All engines, in [`CpuId`] order.
    pub fn engines(&self) -> &[Engine<W>] {
        &self.engines
    }

    /// Consumes the cluster, returning the engines in [`CpuId`] order.
    pub fn into_engines(self) -> Vec<Engine<W>> {
        self.engines
    }

    /// Advances every CPU to exactly `limit`, interleaving them in
    /// `slice`-sized rounds: within each round, CPUs run in ascending id
    /// order, and `before_slice(cpu, engine)` runs immediately before each
    /// engine's turn — the hook where pending cross-CPU signals (IPI
    /// flags, steal buffers) become engine events.
    ///
    /// Like [`Engine::run_until`], this always lands `now` exactly on
    /// `limit` (idle engines coast), so ledger windows snapshotted at two
    /// `run_until` boundaries conserve exactly on every CPU.
    pub fn run_until(
        &mut self,
        limit: Cycles,
        mut before_slice: impl FnMut(CpuId, &mut Engine<W>),
    ) {
        while self.now < limit {
            let boundary = (self.now + self.slice).min(limit);
            for (k, engine) in self.engines.iter_mut().enumerate() {
                before_slice(CpuId(k), engine);
                engine.run_until(boundary);
            }
            self.now = boundary;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Chunk, CtxKind, Env, EnvState};
    use crate::ipl::Ipl;

    /// A self-clocking workload: every event runs one fixed-cost handler
    /// chunk and schedules the next event `period` later, `count` times.
    struct Ticker {
        src: crate::intr::IntrSrc,
        period: Cycles,
        cost: Cycles,
        remaining: u32,
        in_handler: bool,
        done_at: Vec<u64>,
    }

    impl Workload for Ticker {
        type Event = ();

        fn next_chunk(&mut self, env: &mut Env<'_, ()>, _ctx: CtxKind) -> Option<Chunk> {
            if self.in_handler {
                self.in_handler = false;
                env.intr_ack(self.src);
                return None;
            }
            self.in_handler = true;
            Some(Chunk::new(self.cost, 1))
        }

        fn chunk_done(&mut self, env: &mut Env<'_, ()>, _ctx: CtxKind, _tag: u64) {
            self.done_at.push(env.now().raw());
            if self.remaining > 0 {
                self.remaining -= 1;
                env.schedule_in(self.period, ());
            }
        }

        fn on_event(&mut self, env: &mut Env<'_, ()>, _event: ()) {
            env.post_intr(self.src);
        }
    }

    fn ticker_engine(cpu: CpuId, period: u64, cost: u64, count: u32) -> Engine<Ticker> {
        let mut st = EnvState::new(Cycles::new(1_000_000));
        st.set_cpu(cpu);
        let src = st.intr.register("tick", Ipl::IMP);
        st.schedule_at(Cycles::new(period), ());
        let wl = Ticker {
            src,
            period: Cycles::new(period),
            cost: Cycles::new(cost),
            remaining: count,
            in_handler: false,
            done_at: Vec::new(),
        };
        Engine::new(st, wl, Cycles::ZERO)
    }

    #[test]
    fn cluster_of_one_matches_a_bare_engine() {
        let mut solo = ticker_engine(CpuId(0), 700, 90, 20);
        solo.run_until(Cycles::new(50_000));

        let mut c = Cluster::new(vec![ticker_engine(CpuId(0), 700, 90, 20)], DEFAULT_SLICE);
        c.run_until(Cycles::new(50_000), |_, _| {});

        let e = c.engine(CpuId(0));
        assert_eq!(e.workload().done_at, solo.workload().done_at);
        assert_eq!(e.now(), solo.now());
        assert_eq!(e.usage().ledger, solo.usage().ledger);
    }

    #[test]
    fn slice_size_is_invisible_to_independent_cpus() {
        let run = |slice: u64| {
            let engines = vec![
                ticker_engine(CpuId(0), 700, 90, 30),
                ticker_engine(CpuId(1), 450, 120, 30),
            ];
            let mut c = Cluster::new(engines, Cycles::new(slice));
            c.run_until(Cycles::new(60_000), |_, _| {});
            c.into_engines()
                .into_iter()
                .map(|e| e.workload().done_at.clone())
                .collect::<Vec<_>>()
        };
        let coarse = run(50_000);
        for slice in [128, 1_000, 10_000] {
            assert_eq!(run(slice), coarse, "slice {slice}");
        }
    }

    #[test]
    fn every_engine_lands_exactly_on_the_limit() {
        let engines = vec![
            ticker_engine(CpuId(0), 700, 90, 3),
            ticker_engine(CpuId(1), 450, 120, 3),
            ticker_engine(CpuId(2), 999, 1, 0),
        ];
        let mut c = Cluster::new(engines, DEFAULT_SLICE);
        let limit = Cycles::new(123_456);
        c.run_until(limit, |_, _| {});
        assert_eq!(c.now(), limit);
        for e in c.engines() {
            assert_eq!(e.now(), limit, "idle engines coast to the boundary");
            // Per-CPU ledger conservation: every cycle accounted.
            assert_eq!(e.usage().ledger.total(), limit);
        }
    }

    #[test]
    fn before_slice_visits_cpus_in_ascending_order() {
        let engines = vec![
            ticker_engine(CpuId(0), 700, 90, 2),
            ticker_engine(CpuId(1), 450, 120, 2),
        ];
        let mut c = Cluster::new(engines, Cycles::new(1_000));
        let mut visits = Vec::new();
        c.run_until(Cycles::new(3_000), |cpu, e| visits.push((cpu.0, e.now().raw())));
        // Three slices x two CPUs, ascending within each slice, and the
        // hook sees the engine still at the *previous* boundary.
        assert_eq!(
            visits,
            vec![(0, 0), (1, 0), (0, 1_000), (1, 1_000), (0, 2_000), (1, 2_000)]
        );
    }

    #[test]
    fn before_slice_can_deliver_cross_cpu_events() {
        // Use the hook the way the SMP kernel does: turn a shared flag
        // into an engine event at the slice boundary.
        use std::cell::Cell;
        use std::rc::Rc;
        let flag = Rc::new(Cell::new(false));
        let engines = vec![
            ticker_engine(CpuId(0), 10_000_000, 1, 0), // effectively idle
            ticker_engine(CpuId(1), 700, 90, 5),
        ];
        let mut c = Cluster::new(engines, Cycles::new(1_000));
        let f = flag.clone();
        c.run_until(Cycles::new(10_000), move |cpu, e| {
            if cpu == CpuId(1) && e.now() == Cycles::new(2_000) {
                f.set(true);
            }
            if cpu == CpuId(0) && f.get() && e.workload().done_at.is_empty() {
                let at = e.now();
                e.state_schedule(at, ());
            }
        });
        // CPU 0 saw the injected wakeup on the slice after the flag rose.
        let done = &c.engine(CpuId(0)).workload().done_at;
        assert_eq!(done.len(), 1);
        assert!(done[0] >= 3_000, "delivered at the next boundary: {done:?}");
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn empty_cluster_is_rejected() {
        let _ = Cluster::<Ticker>::new(Vec::new(), DEFAULT_SLICE);
    }
}
