//! Deterministic, seeded fault injection plans.
//!
//! A [`FaultPlan`] is a list of faults scheduled on *virtual time*: every
//! entry says "at cycle T, inject fault K". The kernel under test turns
//! each entry into an event on its ordinary calendar, so an injected run
//! is exactly as deterministic as a clean one — same plan, same seed,
//! same interleaving, same counters. The plan itself carries no state and
//! draws no randomness while the simulation runs; [`FaultPlan::storm`]
//! spends its RNG entirely at construction time.
//!
//! The kinds cover the failure modes the paper's safety nets exist for:
//! lost and spurious interrupts (the latch/enable protocol), receive-ring
//! descriptor corruption and overrun storms (cheap-drop attribution),
//! clock jitter (the feedback timeout runs off the tick), link flaps
//! (carrier loss on the wire model), in-flight packet mutation (checksum
//! and header validation), and a stalling or crashing user-mode consumer
//! (the watermark feedback's high-water inhibit and its timeout net).

use livelock_sim::{Cycles, Rng};

use crate::cpu::CpuId;

/// One injectable fault.
///
/// Interface indices follow the paper's two-interface router convention:
/// interface 0 receives the offered load, interface 1 transmits it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The next receive interrupt the NIC would post is silently dropped
    /// (a lost edge: work sits latched in the ring with no wakeup).
    LostRxIntr {
        /// Interface whose next receive interrupt is lost.
        iface: usize,
    },
    /// A receive interrupt fires with no frame in the ring (shared-line
    /// noise; handlers must tolerate finding nothing to do).
    SpuriousRxIntr {
        /// Interface that takes the spurious interrupt.
        iface: usize,
    },
    /// The next transmit-done interrupt is silently dropped, leaving
    /// descriptors unreclaimed until something else kicks the driver.
    LostTxIntr {
        /// Interface whose next transmit interrupt is lost.
        iface: usize,
    },
    /// A transmit interrupt fires with nothing to reclaim.
    SpuriousTxIntr {
        /// Interface that takes the spurious interrupt.
        iface: usize,
    },
    /// DMA scribbles over the next received frame's IP header; the
    /// header checksum catches it downstream.
    RxDescriptorCorrupt {
        /// Interface whose next frame is corrupted.
        iface: usize,
    },
    /// A burst of back-to-back minimum-size frames slams the receive
    /// ring faster than the wire could legally deliver them (the
    /// overrun case the ring's cheap drop exists for).
    RxOverrunStorm {
        /// Interface receiving the burst.
        iface: usize,
        /// Number of frames in the burst.
        frames: u16,
    },
    /// The next clock tick arrives early or late by this many cycles
    /// (the feedback timeout and cycle-limit periods run off the tick).
    ClockJitter {
        /// Signed skew applied to the next tick interval.
        skew_cycles: i64,
    },
    /// Carrier drops on the interface's wire: arriving frames are lost
    /// before the NIC sees them and transmission stalls until the link
    /// returns.
    LinkFlap {
        /// Interface whose link goes down.
        iface: usize,
        /// How long the link stays down.
        down_cycles: u64,
    },
    /// A single bit of the next received frame's IP header flips in
    /// transit; the IPv4 header checksum must catch it.
    PacketBitFlip {
        /// Interface whose next frame is damaged.
        iface: usize,
    },
    /// The next received frame is truncated mid-header (a runt).
    PacketTruncate {
        /// Interface whose next frame is truncated.
        iface: usize,
    },
    /// The next received frame's version/IHL byte is mangled, feeding
    /// the header parser (and any filter engine behind it) garbage.
    PacketMalformHeader {
        /// Interface whose next frame is mangled.
        iface: usize,
    },
    /// The screend process stops being scheduled for this many clock
    /// ticks (a stuck consumer: its queue backs up, the watermark
    /// feedback inhibits input, and only the timeout net resumes it).
    ScreendStall {
        /// Ticks the process stays stalled.
        ticks: u32,
    },
    /// The screend process dies, losing every packet queued to it, and
    /// restarts after a backoff of this many ticks.
    ScreendCrash {
        /// Ticks before the restarted process runs again.
        restart_ticks: u32,
    },
}

impl FaultKind {
    /// Short stable name for markers, tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LostRxIntr { .. } => "lost-rx-intr",
            FaultKind::SpuriousRxIntr { .. } => "spurious-rx-intr",
            FaultKind::LostTxIntr { .. } => "lost-tx-intr",
            FaultKind::SpuriousTxIntr { .. } => "spurious-tx-intr",
            FaultKind::RxDescriptorCorrupt { .. } => "rx-descriptor-corrupt",
            FaultKind::RxOverrunStorm { .. } => "rx-overrun-storm",
            FaultKind::ClockJitter { .. } => "clock-jitter",
            FaultKind::LinkFlap { .. } => "link-flap",
            FaultKind::PacketBitFlip { .. } => "packet-bit-flip",
            FaultKind::PacketTruncate { .. } => "packet-truncate",
            FaultKind::PacketMalformHeader { .. } => "packet-malform-header",
            FaultKind::ScreendStall { .. } => "screend-stall",
            FaultKind::ScreendCrash { .. } => "screend-crash",
        }
    }
}

/// One scheduled fault: inject `kind` when virtual time reaches `at`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection time, in cycles.
    pub at: Cycles,
    /// What to inject.
    pub kind: FaultKind,
}

/// A schedule of faults, sorted by injection time.
///
/// An empty plan is the default and injects nothing: a kernel built with
/// it schedules no fault events, draws no randomness, and runs
/// byte-identically to one built without a plan at all.
///
/// A plan also names the CPU it targets. On a single-CPU machine the
/// target is always [`CpuId(0)`](CpuId); an SMP trial injects the plan
/// only into the targeted CPU's kernel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    target: CpuId,
}

/// Mean faults per unit of storm intensity (see [`FaultPlan::storm`]).
const STORM_EVENTS_PER_UNIT: f64 = 48.0;

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Adds one fault, keeping the plan sorted by time.
    pub fn push(&mut self, at: Cycles, kind: FaultKind) -> &mut Self {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
        self
    }

    /// The scheduled faults, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The CPU this plan targets ([`CpuId(0)`](CpuId) by default).
    pub fn target(&self) -> CpuId {
        self.target
    }

    /// Retargets the plan at `cpu` (builder style).
    pub fn on_cpu(mut self, cpu: CpuId) -> Self {
        self.target = cpu;
        self
    }

    /// Generates a seeded fault storm: roughly
    /// `48 * intensity` faults of every kind, uniformly spread over
    /// `[start, end)`, on the two-interface router topology (receive
    /// faults on interface 0, transmit faults on interface 1). The same
    /// `(seed, intensity, window)` always yields the same plan; an
    /// intensity of `0.0` yields an empty plan.
    pub fn storm(seed: u64, intensity: f64, start: Cycles, end: Cycles) -> Self {
        assert!(intensity >= 0.0, "intensity must be non-negative");
        assert!(end > start, "storm window must be nonempty");
        let n = (STORM_EVENTS_PER_UNIT * intensity).round() as usize;
        let mut rng = Rng::seed_from(seed);
        let mut plan = FaultPlan::new();
        let span = (end - start).raw();
        for _ in 0..n {
            let at = start + Cycles::new(rng.next_below(span));
            let kind = match rng.next_below(13) {
                0 => FaultKind::LostRxIntr { iface: 0 },
                1 => FaultKind::SpuriousRxIntr { iface: 0 },
                2 => FaultKind::LostTxIntr { iface: 1 },
                3 => FaultKind::SpuriousTxIntr { iface: 1 },
                4 => FaultKind::RxDescriptorCorrupt { iface: 0 },
                5 => FaultKind::RxOverrunStorm {
                    iface: 0,
                    frames: rng.range_inclusive(8, 40) as u16,
                },
                6 => FaultKind::ClockJitter {
                    // Up to half a tick early or late at the calibrated
                    // 100 MHz / 1 ms tick.
                    skew_cycles: rng.range_inclusive(0, 100_000) as i64 - 50_000,
                },
                7 => FaultKind::LinkFlap {
                    iface: 0,
                    // 0.5 - 2 ms of carrier loss at 100 MHz.
                    down_cycles: rng.range_inclusive(50_000, 200_000),
                },
                8 => FaultKind::PacketBitFlip { iface: 0 },
                9 => FaultKind::PacketTruncate { iface: 0 },
                10 => FaultKind::PacketMalformHeader { iface: 0 },
                11 => FaultKind::ScreendStall {
                    ticks: rng.range_inclusive(2, 6) as u32,
                },
                _ => FaultKind::ScreendCrash {
                    restart_ticks: rng.range_inclusive(2, 8) as u32,
                },
            };
            plan.push(at, kind);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn push_keeps_time_order() {
        let mut p = FaultPlan::new();
        p.push(Cycles::new(300), FaultKind::SpuriousRxIntr { iface: 0 });
        p.push(Cycles::new(100), FaultKind::LostRxIntr { iface: 0 });
        p.push(Cycles::new(200), FaultKind::ClockJitter { skew_cycles: 5 });
        let times: Vec<u64> = p.events().iter().map(|e| e.at.raw()).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let mut p = FaultPlan::new();
        p.push(Cycles::new(100), FaultKind::LostRxIntr { iface: 0 });
        p.push(Cycles::new(100), FaultKind::LostTxIntr { iface: 1 });
        assert_eq!(
            p.events()[0].kind,
            FaultKind::LostRxIntr { iface: 0 },
            "first pushed first"
        );
    }

    #[test]
    fn storm_is_deterministic() {
        let a = FaultPlan::storm(42, 1.0, Cycles::new(0), Cycles::new(1_000_000));
        let b = FaultPlan::storm(42, 1.0, Cycles::new(0), Cycles::new(1_000_000));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn storm_scales_with_intensity() {
        let lo = FaultPlan::storm(7, 0.5, Cycles::new(0), Cycles::new(1_000_000));
        let hi = FaultPlan::storm(7, 4.0, Cycles::new(0), Cycles::new(1_000_000));
        assert!(hi.len() > lo.len());
        assert_eq!(
            FaultPlan::storm(7, 0.0, Cycles::new(0), Cycles::new(1_000_000)).len(),
            0,
            "zero intensity is an empty plan"
        );
    }

    #[test]
    fn storm_stays_inside_the_window() {
        let p = FaultPlan::storm(9, 4.0, Cycles::new(500), Cycles::new(9_000));
        for e in p.events() {
            assert!(e.at >= Cycles::new(500) && e.at < Cycles::new(9_000));
        }
        // Sorted by construction.
        assert!(p.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::storm(1, 2.0, Cycles::new(0), Cycles::new(1_000_000));
        let b = FaultPlan::storm(2, 2.0, Cycles::new(0), Cycles::new(1_000_000));
        assert_ne!(a, b);
    }

    #[test]
    fn plans_target_cpu0_unless_retargeted() {
        let p = FaultPlan::storm(42, 1.0, Cycles::new(0), Cycles::new(1_000_000));
        assert_eq!(p.target(), CpuId(0));
        let p = p.on_cpu(CpuId(2));
        assert_eq!(p.target(), CpuId(2));
        // Retargeting changes identity (it selects a different kernel).
        assert_ne!(
            p,
            FaultPlan::storm(42, 1.0, Cycles::new(0), Cycles::new(1_000_000))
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::LostRxIntr { iface: 0 }.label(), "lost-rx-intr");
        assert_eq!(
            FaultKind::ScreendCrash { restart_ticks: 3 }.label(),
            "screend-crash"
        );
    }
}
