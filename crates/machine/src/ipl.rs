//! Interrupt priority levels, in the 4.2BSD naming the paper uses.
//!
//! "Device interrupts normally have a fixed Interrupt Priority Level (IPL),
//! and preempt all tasks running at a lower priority; interrupts do not
//! preempt tasks running at the same IPL" (paper §4.1).

use core::fmt;

/// An interrupt priority level. Higher values preempt lower ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipl(u8);

impl Ipl {
    /// Base level: threads and user processes (spl0).
    pub const NONE: Ipl = Ipl(0);
    /// Low-priority software clock processing (SPLSOFTCLOCK).
    pub const SOFTCLOCK: Ipl = Ipl(1);
    /// The network software interrupt, where 4.2BSD runs the IP layer
    /// (SPLNET).
    pub const SOFTNET: Ipl = Ipl(2);
    /// Network device interrupts (SPLIMP) — the level whose absolute
    /// priority causes receive livelock.
    pub const IMP: Ipl = Ipl(4);
    /// The hardware clock (SPLCLOCK); "clock interrupts typically preempt
    /// device interrupt processing" (paper §5.1).
    pub const CLOCK: Ipl = Ipl(6);
    /// Block-everything level (SPLHIGH).
    pub const HIGH: Ipl = Ipl(7);

    /// Creates a custom level.
    pub const fn new(level: u8) -> Self {
        Ipl(level)
    }

    /// Returns the raw level.
    pub const fn level(self) -> u8 {
        self.0
    }

    /// Returns `true` if work at `self` preempts work at `running`.
    /// Equal levels do not preempt each other.
    pub const fn preempts(self, running: Ipl) -> bool {
        self.0 > running.0
    }
}

impl fmt::Display for Ipl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ipl::NONE => f.write_str("spl0"),
            Ipl::SOFTCLOCK => f.write_str("splsoftclock"),
            Ipl::SOFTNET => f.write_str("splnet"),
            Ipl::IMP => f.write_str("splimp"),
            Ipl::CLOCK => f.write_str("splclock"),
            Ipl::HIGH => f.write_str("splhigh"),
            Ipl(n) => write!(f, "spl{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering() {
        // The orderings §4 and §6.3 rely on.
        assert!(
            Ipl::IMP.preempts(Ipl::SOFTNET),
            "SPLIMP > SPLNET causes livelock"
        );
        assert!(Ipl::SOFTNET.preempts(Ipl::NONE));
        assert!(
            Ipl::CLOCK.preempts(Ipl::IMP),
            "clock preempts device interrupts"
        );
        assert!(Ipl::HIGH.preempts(Ipl::CLOCK));
    }

    #[test]
    fn equal_levels_do_not_preempt() {
        assert!(!Ipl::IMP.preempts(Ipl::IMP));
        assert!(!Ipl::NONE.preempts(Ipl::NONE));
    }

    #[test]
    fn lower_never_preempts_higher() {
        assert!(!Ipl::SOFTNET.preempts(Ipl::IMP));
        assert!(!Ipl::NONE.preempts(Ipl::SOFTCLOCK));
    }

    #[test]
    fn display_names() {
        assert_eq!(Ipl::IMP.to_string(), "splimp");
        assert_eq!(Ipl::SOFTNET.to_string(), "splnet");
        assert_eq!(Ipl::NONE.to_string(), "spl0");
        assert_eq!(Ipl::new(3).to_string(), "spl3");
    }

    #[test]
    fn ord_matches_level() {
        assert!(Ipl::HIGH > Ipl::CLOCK);
        assert!(Ipl::CLOCK > Ipl::IMP);
        assert!(Ipl::IMP > Ipl::SOFTNET);
        assert!(Ipl::SOFTNET > Ipl::SOFTCLOCK);
        assert!(Ipl::SOFTCLOCK > Ipl::NONE);
    }
}
