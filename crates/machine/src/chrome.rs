//! Chrome-trace / Perfetto JSON export for machine traces.
//!
//! Serializes a [`Trace`](crate::trace::Trace)'s records into the Trace
//! Event Format (the `{"traceEvents": [...]}` JSON consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)), so a
//! livelock interleaving can be *looked at*: interrupt frames render as a
//! nesting flame track, thread occupancy as duration slices, idle entries
//! and external events as instant markers.
//!
//! Mapping, one process group per CPU (`pid = cpu + 1`, so the
//! single-CPU trace stays on `pid` 1):
//!
//! - `IntrEnter`/`IntrExit` → `"B"`/`"E"` begin/end pairs on the
//!   *interrupts* track (`tid` 1). Interrupt frames strictly nest (IPL
//!   stack discipline), which is exactly the nesting `B`/`E` requires.
//!   A ring-truncated head (an exit whose enter was evicted) is skipped;
//!   frames still open at the end are closed at the final timestamp so
//!   the array is always balanced.
//! - `ThreadRun` → an `"X"` complete event on the *threads* track
//!   (`tid` 2) lasting until the next scheduling record ends the thread's
//!   occupancy.
//! - `Idle` / `External` → `"i"` instant events on the *markers* track
//!   (`tid` 3).
//!
//! Timestamps are microseconds (`ts` floats), converted from cycles with
//! the machine's [`Freq`]. Output is deterministic: same records, same
//! JSON bytes.

use livelock_sim::{Cycles, Freq};

use crate::cpu::CpuId;
use crate::intr::IntrSrc;
use crate::thread::ThreadId;
use crate::trace::{TraceEvent, TraceRecord};

/// Escapes a string for inclusion in a JSON string literal (everything
/// between, not including, the quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The Chrome-trace `pid` a CPU's tracks render under: CPU *k* is process
/// `k + 1`, so the single-CPU trace keeps its historical `pid` 1 and an
/// SMP trace shows one process group per CPU.
fn pid_of(cpu: CpuId) -> u32 {
    cpu.0 as u32 + 1
}

const TID_INTR: u32 = 1;
const TID_THREAD: u32 = 2;
const TID_MARKER: u32 = 3;

fn ts_micros(freq: Freq, at: Cycles) -> f64 {
    freq.nanos_from_cycles(at).as_micros_f64()
}

fn push_event(out: &mut Vec<String>, name: &str, ph: char, ts: f64, pid: u32, tid: u32, extra: &str) {
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}{extra}}}",
        json_escape(name)
    ));
}

/// Renders trace records as a Chrome-trace JSON document.
///
/// `intr_name` and `thread_name` supply human-readable labels (typically
/// [`IntrController::name_of`](crate::intr::IntrController::name_of) and
/// [`Scheduler::name`](crate::thread::Scheduler::name)); `freq` converts
/// cycle timestamps to microseconds.
pub fn chrome_trace_json(
    records: &[TraceRecord],
    freq: Freq,
    intr_name: impl FnMut(IntrSrc) -> String,
    thread_name: impl FnMut(ThreadId) -> String,
) -> String {
    chrome_trace_json_with_markers(records, freq, intr_name, thread_name, &[])
}

/// Like [`chrome_trace_json`], with extra named instant markers merged
/// onto the *markers* track — the fault-injection layer uses this to make
/// every injected fault and recovery action visible next to the
/// interleaving it perturbed. Markers are emitted in slice order after
/// the record-derived events; output stays deterministic.
pub fn chrome_trace_json_with_markers(
    records: &[TraceRecord],
    freq: Freq,
    intr_name: impl FnMut(IntrSrc) -> String,
    thread_name: impl FnMut(ThreadId) -> String,
    markers: &[(Cycles, String)],
) -> String {
    chrome_trace_json_for_cpu(CpuId(0), records, freq, intr_name, thread_name, markers)
}

/// Like [`chrome_trace_json_with_markers`], with the emitting CPU's
/// [`CpuId`] selecting the Chrome-trace process group (`pid = cpu + 1`):
/// merged per-CPU traces from an SMP cluster render side by side without
/// track collisions. `CpuId(0)` reproduces the single-CPU output byte for
/// byte.
pub fn chrome_trace_json_for_cpu(
    cpu: CpuId,
    records: &[TraceRecord],
    freq: Freq,
    mut intr_name: impl FnMut(IntrSrc) -> String,
    mut thread_name: impl FnMut(ThreadId) -> String,
    markers: &[(Cycles, String)],
) -> String {
    let pid = pid_of(cpu);
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 8);
    for (tid, label) in [
        (TID_INTR, "interrupts"),
        (TID_THREAD, "threads"),
        (TID_MARKER, "markers"),
    ] {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }

    // Open interrupt frames, for nesting checks and final balancing.
    let mut open: Vec<IntrSrc> = Vec::new();
    let last_ts = records.last().map_or(0.0, |r| ts_micros(freq, r.at));
    for (i, rec) in records.iter().enumerate() {
        let ts = ts_micros(freq, rec.at);
        match rec.event {
            TraceEvent::IntrEnter(src) => {
                open.push(src);
                push_event(&mut events, &intr_name(src), 'B', ts, pid, TID_INTR, "");
            }
            TraceEvent::IntrExit(src) => {
                // A ring-truncated head can exit a frame whose enter was
                // evicted; emitting the E would unbalance the track.
                if open.last() == Some(&src) {
                    open.pop();
                    push_event(&mut events, &intr_name(src), 'E', ts, pid, TID_INTR, "");
                }
            }
            TraceEvent::ThreadRun(t) => {
                // The slice lasts until the next record that ends this
                // thread's occupancy of the CPU (another switch or idle).
                let end = records[i + 1..]
                    .iter()
                    .find(|r| {
                        matches!(r.event, TraceEvent::ThreadRun(_) | TraceEvent::Idle)
                    })
                    .map_or(last_ts, |r| ts_micros(freq, r.at));
                let dur = (end - ts).max(0.0);
                push_event(
                    &mut events,
                    &thread_name(t),
                    'X',
                    ts,
                    pid,
                    TID_THREAD,
                    &format!(",\"dur\":{dur}"),
                );
            }
            TraceEvent::Idle => {
                push_event(&mut events, "idle", 'i', ts, pid, TID_MARKER, ",\"s\":\"t\"");
            }
            TraceEvent::External => {
                push_event(&mut events, "external", 'i', ts, pid, TID_MARKER, ",\"s\":\"t\"");
            }
        }
    }
    // Close frames still open at the end of the trace window.
    while let Some(src) = open.pop() {
        push_event(&mut events, &intr_name(src), 'E', last_ts, pid, TID_INTR, "");
    }
    for (at, name) in markers {
        let ts = ts_micros(freq, *at);
        push_event(&mut events, name, 'i', ts, pid, TID_MARKER, ",\"s\":\"t\"");
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: Cycles::new(at),
            event,
        }
    }

    fn names() -> (
        impl FnMut(IntrSrc) -> String,
        impl FnMut(ThreadId) -> String,
    ) {
        (
            |s: IntrSrc| format!("src{}", s.0),
            |t: ThreadId| format!("thread{}", t.0),
        )
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn begin_end_pairs_balance() {
        let freq = Freq::mhz(100);
        let records = vec![
            rec(0, TraceEvent::IntrEnter(IntrSrc(0))),
            rec(100, TraceEvent::IntrEnter(IntrSrc(1))),
            rec(200, TraceEvent::IntrExit(IntrSrc(1))),
            rec(300, TraceEvent::IntrExit(IntrSrc(0))),
        ];
        let json = chrome_trace_json(&records, freq, names().0, names().1);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn unclosed_frames_are_closed_at_the_end() {
        let freq = Freq::mhz(100);
        let records = vec![
            rec(0, TraceEvent::IntrEnter(IntrSrc(0))),
            rec(500, TraceEvent::External),
        ];
        let json = chrome_trace_json(&records, freq, names().0, names().1);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    fn truncated_head_exit_is_skipped() {
        let freq = Freq::mhz(100);
        // The ring evicted the matching IntrEnter.
        let records = vec![
            rec(0, TraceEvent::IntrExit(IntrSrc(7))),
            rec(100, TraceEvent::Idle),
        ];
        let json = chrome_trace_json(&records, freq, names().0, names().1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 0);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
    }

    #[test]
    fn fault_markers_land_on_the_marker_track() {
        let freq = Freq::mhz(1);
        let records = vec![
            rec(0, TraceEvent::IntrEnter(IntrSrc(0))),
            rec(100, TraceEvent::IntrExit(IntrSrc(0))),
        ];
        let markers = vec![
            (Cycles::new(50), "fault: lost-rx-intr".to_string()),
            (Cycles::new(90), "recover: screend-restart".to_string()),
        ];
        let json =
            chrome_trace_json_with_markers(&records, freq, names().0, names().1, &markers);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
        assert!(json.contains("\"name\":\"fault: lost-rx-intr\""));
        assert!(json.contains("\"name\":\"recover: screend-restart\""));
        // Without markers the output is byte-identical to the plain form.
        let plain = chrome_trace_json(&records, freq, names().0, names().1);
        let empty =
            chrome_trace_json_with_markers(&records, freq, names().0, names().1, &[]);
        assert_eq!(plain, empty);
    }

    #[test]
    fn thread_slice_duration_spans_to_next_switch() {
        let freq = Freq::mhz(1); // 1 cycle == 1 us
        let records = vec![
            rec(0, TraceEvent::ThreadRun(ThreadId(0))),
            rec(250, TraceEvent::ThreadRun(ThreadId(1))),
            rec(400, TraceEvent::Idle),
        ];
        let json = chrome_trace_json(&records, freq, names().0, names().1);
        assert!(json.contains("\"name\":\"thread0\""));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"dur\":150"));
    }
}
