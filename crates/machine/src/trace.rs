//! A bounded execution trace of machine-level scheduling events.
//!
//! Understanding *why* a kernel livelocks requires seeing the interleaving:
//! which interrupt preempted what, when the polling thread last ran, how
//! long the CPU sat in handlers. The engine can record its scheduling
//! decisions into this bounded ring buffer; tests assert on interleavings
//! and humans read the rendered log.
//!
//! Tracing is off by default and costs nothing when disabled.

use std::collections::VecDeque;

use livelock_sim::Cycles;

use crate::intr::IntrSrc;
use crate::thread::ThreadId;

/// One scheduling event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An interrupt handler was entered.
    IntrEnter(IntrSrc),
    /// An interrupt handler returned.
    IntrExit(IntrSrc),
    /// A thread was switched onto the CPU.
    ThreadRun(ThreadId),
    /// The CPU entered the idle loop.
    Idle,
    /// An external event was delivered to the workload.
    External,
}

/// A `(time, event)` record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: Cycles,
    /// What happened.
    pub event: TraceEvent,
}

/// A bounded ring buffer of [`TraceRecord`]s.
#[derive(Clone, Debug)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping the most recent `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            records: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, at: Cycles, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes ownership of the retained records, oldest first, leaving the
    /// trace empty.
    ///
    /// The eviction count ([`dropped`](Trace::dropped)) is reset too, so a
    /// caller that drains periodically sees per-interval truncation, not a
    /// lifetime total.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.dropped = 0;
        self.records.drain(..).collect()
    }

    /// Renders the trace as one line per record, for debugging output.
    ///
    /// When the capacity bound has evicted records, a leading note says how
    /// many earlier records are missing.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped", self.dropped);
        }
        for r in &self.records {
            let what = match r.event {
                TraceEvent::IntrEnter(s) => format!("intr-enter src{}", s.0),
                TraceEvent::IntrExit(s) => format!("intr-exit  src{}", s.0),
                TraceEvent::ThreadRun(t) => format!("thread-run t{}", t.0),
                TraceEvent::Idle => "idle".to_string(),
                TraceEvent::External => "external".to_string(),
            };
            let _ = writeln!(out, "{:>14} {}", r.at.raw(), what);
        }
        out
    }

    /// Counts records matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut t = Trace::new(8);
        t.push(Cycles::new(1), TraceEvent::IntrEnter(IntrSrc(0)));
        t.push(Cycles::new(5), TraceEvent::IntrExit(IntrSrc(0)));
        t.push(Cycles::new(6), TraceEvent::ThreadRun(ThreadId(2)));
        assert_eq!(t.len(), 3);
        let recs: Vec<_> = t.records().collect();
        assert_eq!(recs[0].at, Cycles::new(1));
        assert_eq!(recs[2].event, TraceEvent::ThreadRun(ThreadId(2)));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..10u64 {
            t.push(Cycles::new(i), TraceEvent::Idle);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.records().next().unwrap().at, Cycles::new(7));
    }

    #[test]
    fn render_and_count() {
        let mut t = Trace::new(8);
        t.push(Cycles::new(1), TraceEvent::IntrEnter(IntrSrc(3)));
        t.push(Cycles::new(2), TraceEvent::External);
        t.push(Cycles::new(3), TraceEvent::Idle);
        let s = t.render();
        assert!(s.contains("intr-enter src3"));
        assert!(s.contains("external"));
        assert!(s.contains("idle"));
        assert_eq!(s.lines().count(), 3);
        assert_eq!(t.count_matching(|e| matches!(e, TraceEvent::Idle)), 1);
    }

    #[test]
    fn drain_returns_owned_records_and_empties_the_trace() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.push(Cycles::new(i), TraceEvent::Idle);
        }
        let recs = t.drain();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].at, Cycles::new(2), "oldest retained record first");
        assert_eq!(recs[2].at, Cycles::new(4));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0, "drain resets the eviction count");
        // The trace is reusable after a drain.
        t.push(Cycles::new(9), TraceEvent::External);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_notes_truncation_when_records_were_evicted() {
        let mut t = Trace::new(2);
        t.push(Cycles::new(1), TraceEvent::Idle);
        t.push(Cycles::new(2), TraceEvent::Idle);
        assert!(
            !t.render().contains("dropped"),
            "no note while nothing has been evicted"
        );
        t.push(Cycles::new(3), TraceEvent::Idle);
        let s = t.render();
        assert!(s.starts_with("... 1 earlier records dropped\n"));
        assert_eq!(s.lines().count(), 3, "note plus the two retained records");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::new(0);
    }
}
