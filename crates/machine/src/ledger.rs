//! The conserved CPU-cycle ledger: every executed cycle attributed to
//! exactly one execution class.
//!
//! The paper's accounting argument (§6.2, Figure 6-1) is that under
//! overload the unmodified kernel spends ~100% of the CPU in
//! receive-interrupt context while useful output drops to zero. The
//! [`UsageReport`](crate::cpu::UsageReport) already splits cycles by
//! interrupt source and thread id, but those are *machine* identities;
//! this module adds the *semantic* classification the paper reasons in
//! ([`CpuClass`]) and a [`CycleLedger`] with a telescoping invariant:
//! the per-class totals sum **exactly** to elapsed virtual time. Nothing
//! is sampled and nothing is estimated — the executor charges the ledger
//! at the same four sites where it already commits cycle progress, so
//! conservation holds by construction and is asserted in debug builds.

use livelock_sim::Cycles;

/// The execution class a cycle is charged to. One and only one class per
/// cycle; the mapping from machine identities (interrupt sources, thread
/// ids) to classes is declared at registration time via
/// [`EnvState::set_intr_class`](crate::cpu::EnvState::set_intr_class) and
/// [`EnvState::set_thread_class`](crate::cpu::EnvState::set_thread_class).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuClass {
    /// Receive-interrupt handlers (device RX, the livelock driver).
    RxIntr,
    /// Transmit-completion interrupt handlers.
    TxIntr,
    /// The hardware clock interrupt.
    ClockIntr,
    /// The network software interrupt (`softnet`, IP forwarding in the
    /// unmodified kernel).
    SoftIntNet,
    /// The modified kernel's polling thread.
    PollThread,
    /// The user-mode `screend` packet-filter process.
    Screend,
    /// Other user processes (the UDP server, the Figure 7-1 compute job).
    UserProc,
    /// Everything else in the kernel: context-switch overhead, softclock,
    /// unclassified handlers and threads.
    KernelOther,
    /// The idle loop.
    Idle,
}

impl CpuClass {
    /// Number of classes.
    pub const COUNT: usize = 9;

    /// All classes, in ledger index order.
    pub const ALL: [CpuClass; CpuClass::COUNT] = [
        CpuClass::RxIntr,
        CpuClass::TxIntr,
        CpuClass::ClockIntr,
        CpuClass::SoftIntNet,
        CpuClass::PollThread,
        CpuClass::Screend,
        CpuClass::UserProc,
        CpuClass::KernelOther,
        CpuClass::Idle,
    ];

    /// The ledger slot for this class (its position in [`CpuClass::ALL`]).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short stable label, used as CSV column name and trace track name.
    pub const fn label(self) -> &'static str {
        match self {
            CpuClass::RxIntr => "rx_intr",
            CpuClass::TxIntr => "tx_intr",
            CpuClass::ClockIntr => "clock_intr",
            CpuClass::SoftIntNet => "softint_net",
            CpuClass::PollThread => "poll_thread",
            CpuClass::Screend => "screend",
            CpuClass::UserProc => "user_proc",
            CpuClass::KernelOther => "kernel_other",
            CpuClass::Idle => "idle",
        }
    }
}

/// Conserved per-class cycle totals.
///
/// The invariant — Σ over classes == elapsed cycles — is the same
/// telescoping discipline as the kernel's `stage_residencies`: because
/// every charge site in the executor routes through exactly one class,
/// the sum cannot drift from virtual time.
///
/// # Examples
///
/// ```
/// use livelock_machine::{CpuClass, CycleLedger};
/// use livelock_sim::Cycles;
///
/// let mut l = CycleLedger::new();
/// l.charge(CpuClass::RxIntr, Cycles::new(750));
/// l.charge(CpuClass::Idle, Cycles::new(250));
/// assert_eq!(l.total(), Cycles::new(1000));
/// assert!((l.share(CpuClass::RxIntr) - 0.75).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleLedger {
    by_class: [Cycles; CpuClass::COUNT],
}

impl CycleLedger {
    /// Creates an empty ledger.
    pub const fn new() -> Self {
        CycleLedger {
            by_class: [Cycles::ZERO; CpuClass::COUNT],
        }
    }

    /// Charges `cy` cycles to `class`.
    pub fn charge(&mut self, class: CpuClass, cy: Cycles) {
        self.by_class[class.index()] += cy;
    }

    /// Cycles charged to `class` so far.
    pub fn get(&self, class: CpuClass) -> Cycles {
        self.by_class[class.index()]
    }

    /// Sum over all classes. Equals elapsed virtual time when the ledger
    /// is charged by the executor.
    pub fn total(&self) -> Cycles {
        self.by_class.iter().copied().sum()
    }

    /// Fraction of the total charged to `class` (0.0 on an empty ledger).
    pub fn share(&self, class: CpuClass) -> f64 {
        self.get(class).fraction_of(self.total())
    }

    /// Per-class shares in [`CpuClass::ALL`] order; sums to 1.0 (or all
    /// zeros on an empty ledger).
    pub fn shares(&self) -> [f64; CpuClass::COUNT] {
        let total = self.total();
        let mut out = [0.0; CpuClass::COUNT];
        for (slot, cy) in out.iter_mut().zip(self.by_class) {
            *slot = cy.fraction_of(total);
        }
        out
    }

    /// The ledger of cycles accumulated since `earlier` (a snapshot of
    /// this ledger at a previous time): pointwise difference. Used for
    /// measurement-window deltas.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not an earlier snapshot of
    /// this ledger (any class would go negative).
    pub fn since(&self, earlier: &CycleLedger) -> CycleLedger {
        let mut out = CycleLedger::new();
        for (i, slot) in out.by_class.iter_mut().enumerate() {
            *slot = self.by_class[i] - earlier.by_class[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    #[test]
    fn index_matches_all_order() {
        for (i, c) in CpuClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = CpuClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CpuClass::COUNT);
    }

    #[test]
    fn charges_accumulate_and_conserve() {
        let mut l = CycleLedger::new();
        l.charge(CpuClass::RxIntr, cy(100));
        l.charge(CpuClass::RxIntr, cy(50));
        l.charge(CpuClass::UserProc, cy(30));
        l.charge(CpuClass::Idle, cy(20));
        assert_eq!(l.get(CpuClass::RxIntr), cy(150));
        assert_eq!(l.total(), cy(200));
        let shares = l.shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "shares sum to 1, got {sum}");
    }

    #[test]
    fn empty_ledger_has_zero_shares() {
        let l = CycleLedger::new();
        assert_eq!(l.total(), Cycles::ZERO);
        assert_eq!(l.share(CpuClass::Idle), 0.0);
        assert!(l.shares().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn since_is_pointwise_difference() {
        let mut a = CycleLedger::new();
        a.charge(CpuClass::RxIntr, cy(100));
        let snapshot = a;
        a.charge(CpuClass::RxIntr, cy(40));
        a.charge(CpuClass::Idle, cy(60));
        let d = a.since(&snapshot);
        assert_eq!(d.get(CpuClass::RxIntr), cy(40));
        assert_eq!(d.get(CpuClass::Idle), cy(60));
        assert_eq!(d.total(), cy(100));
    }
}
