//! The interrupt controller: per-source priority, enable masks, pending
//! latches.
//!
//! Semantics mirror real hardware: posting a disabled source *latches* the
//! request (it is delivered when the source is re-enabled), and the CPU
//! takes the highest-IPL enabled pending source whose level preempts the
//! current one. Latch-while-masked is what makes the modified kernel's
//! "re-enable interrupts only when no work is pending" protocol race-free.

use livelock_sim::Counter;

use crate::ipl::Ipl;

/// Identifies a registered interrupt source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntrSrc(pub usize);

#[derive(Clone, Debug)]
struct Source {
    name: &'static str,
    ipl: Ipl,
    enabled: bool,
    pending: bool,
    posted: Counter,
    taken: Counter,
}

/// The machine's interrupt controller.
///
/// # Examples
///
/// ```
/// use livelock_machine::intr::IntrController;
/// use livelock_machine::ipl::Ipl;
///
/// let mut ic = IntrController::new();
/// let rx = ic.register("rx0", Ipl::IMP);
/// ic.post(rx);
/// // A CPU running at spl0 takes it; one running at splimp does not.
/// assert_eq!(ic.take(Ipl::IMP), None);
/// assert_eq!(ic.take(Ipl::NONE), Some((rx, Ipl::IMP)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct IntrController {
    sources: Vec<Source>,
    /// Bit `i` set ⟺ `sources[i]` is pending *and* enabled, i.e. deliverable
    /// at a low enough IPL. The executor polls [`IntrController::take`] /
    /// [`IntrController::any_takeable`] at every chunk boundary, and the
    /// common answer is "nothing": a single zero-test covers it. Caps the
    /// controller at 64 sources (the machine registers a handful).
    ready: u64,
}

impl IntrController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        IntrController::default()
    }

    /// Registers an interrupt source at the given IPL, enabled.
    pub fn register(&mut self, name: &'static str, ipl: Ipl) -> IntrSrc {
        assert!(self.sources.len() < 64, "at most 64 interrupt sources");
        self.sources.push(Source {
            name,
            ipl,
            enabled: true,
            pending: false,
            posted: Counter::new(),
            taken: Counter::new(),
        });
        IntrSrc(self.sources.len() - 1)
    }

    /// Posts (asserts) an interrupt request. Latched even while the source
    /// is disabled; coalesces with an already-pending request, as interrupt
    /// lines do.
    pub fn post(&mut self, src: IntrSrc) {
        let s = &mut self.sources[src.0];
        s.posted.inc();
        s.pending = true;
        if s.enabled {
            self.ready |= 1 << src.0;
        }
    }

    /// Enables or disables delivery for a source. Disabling does not clear
    /// a pending request.
    pub fn set_enabled(&mut self, src: IntrSrc, enabled: bool) {
        let s = &mut self.sources[src.0];
        s.enabled = enabled;
        if enabled && s.pending {
            self.ready |= 1 << src.0;
        } else {
            self.ready &= !(1 << src.0);
        }
    }

    /// Returns `true` when the source's delivery is enabled.
    pub fn is_enabled(&self, src: IntrSrc) -> bool {
        self.sources[src.0].enabled
    }

    /// Returns `true` when a request is latched for the source.
    pub fn is_pending(&self, src: IntrSrc) -> bool {
        self.sources[src.0].pending
    }

    /// Clears a latched request without delivering it (used by handlers
    /// that poll their device and notice the cause is already serviced).
    pub fn acknowledge(&mut self, src: IntrSrc) {
        self.sources[src.0].pending = false;
        self.ready &= !(1 << src.0);
    }

    /// Delivers the highest-IPL enabled pending source that preempts
    /// `current_ipl`, clearing its latch. Ties are broken by registration
    /// order (lower index first), deterministically.
    pub fn take(&mut self, current_ipl: Ipl) -> Option<(IntrSrc, Ipl)> {
        if self.ready == 0 {
            return None;
        }
        // Walk only the ready bits (ascending index), keeping the first
        // source seen at each strictly-higher IPL: highest IPL wins, ties
        // go to the lower registration index.
        let mut best: Option<usize> = None;
        let mut bits = self.ready;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let s = &self.sources[i];
            if s.ipl.preempts(current_ipl) {
                match best {
                    Some(b) if self.sources[b].ipl >= s.ipl => {}
                    _ => best = Some(i),
                }
            }
        }
        let i = best?;
        let s = &mut self.sources[i];
        s.pending = false;
        s.taken.inc();
        self.ready &= !(1 << i);
        Some((IntrSrc(i), s.ipl))
    }

    /// Returns `true` if [`IntrController::take`] would deliver something.
    pub fn any_takeable(&self, current_ipl: Ipl) -> bool {
        if self.ready == 0 {
            return false;
        }
        let mut bits = self.ready;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.sources[i].ipl.preempts(current_ipl) {
                return true;
            }
        }
        false
    }

    /// Returns the source's IPL.
    pub fn ipl_of(&self, src: IntrSrc) -> Ipl {
        self.sources[src.0].ipl
    }

    /// Returns the source's diagnostic name.
    pub fn name_of(&self, src: IntrSrc) -> &'static str {
        self.sources[src.0].name
    }

    /// Number of times the source was posted.
    pub fn posted_count(&self, src: IntrSrc) -> u64 {
        self.sources[src.0].posted.get()
    }

    /// Number of times the source was delivered to the CPU.
    pub fn taken_count(&self, src: IntrSrc) -> u64 {
        self.sources[src.0].taken.get()
    }

    /// Total interrupts delivered across all sources.
    pub fn total_taken(&self) -> u64 {
        self.sources.iter().map(|s| s.taken.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (IntrController, IntrSrc, IntrSrc, IntrSrc) {
        let mut ic = IntrController::new();
        let rx = ic.register("rx0", Ipl::IMP);
        let soft = ic.register("softnet", Ipl::SOFTNET);
        let clock = ic.register("clock", Ipl::CLOCK);
        (ic, rx, soft, clock)
    }

    #[test]
    fn takes_highest_ipl_first() {
        let (mut ic, rx, soft, clock) = setup();
        ic.post(soft);
        ic.post(clock);
        ic.post(rx);
        assert_eq!(ic.take(Ipl::NONE), Some((clock, Ipl::CLOCK)));
        assert_eq!(ic.take(Ipl::NONE), Some((rx, Ipl::IMP)));
        assert_eq!(ic.take(Ipl::NONE), Some((soft, Ipl::SOFTNET)));
        assert_eq!(ic.take(Ipl::NONE), None);
    }

    #[test]
    fn respects_current_ipl() {
        let (mut ic, rx, soft, _) = setup();
        ic.post(rx);
        ic.post(soft);
        // At SPLIMP, neither an IMP nor a SOFTNET source preempts.
        assert_eq!(ic.take(Ipl::IMP), None);
        assert!(ic.any_takeable(Ipl::NONE));
        assert!(!ic.any_takeable(Ipl::IMP));
        // Dropping to SPLNET lets the IMP source in, not the SOFTNET one.
        assert_eq!(ic.take(Ipl::SOFTNET), Some((rx, Ipl::IMP)));
        assert_eq!(ic.take(Ipl::SOFTNET), None);
    }

    #[test]
    fn latch_while_disabled() {
        let (mut ic, rx, _, _) = setup();
        ic.set_enabled(rx, false);
        ic.post(rx);
        assert!(ic.is_pending(rx));
        assert_eq!(ic.take(Ipl::NONE), None, "masked");
        ic.set_enabled(rx, true);
        assert_eq!(
            ic.take(Ipl::NONE),
            Some((rx, Ipl::IMP)),
            "delivered on unmask"
        );
        assert!(!ic.is_pending(rx));
    }

    #[test]
    fn posts_coalesce() {
        let (mut ic, rx, _, _) = setup();
        ic.post(rx);
        ic.post(rx);
        ic.post(rx);
        assert_eq!(ic.posted_count(rx), 3);
        assert!(ic.take(Ipl::NONE).is_some());
        assert_eq!(ic.take(Ipl::NONE), None, "one delivery for many posts");
        assert_eq!(ic.taken_count(rx), 1);
    }

    #[test]
    fn same_ipl_ties_break_by_registration_order() {
        let mut ic = IntrController::new();
        let a = ic.register("rx0", Ipl::IMP);
        let b = ic.register("rx1", Ipl::IMP);
        ic.post(b);
        ic.post(a);
        assert_eq!(ic.take(Ipl::NONE), Some((a, Ipl::IMP)));
        assert_eq!(ic.take(Ipl::NONE), Some((b, Ipl::IMP)));
    }

    #[test]
    fn acknowledge_clears_without_delivery() {
        let (mut ic, rx, _, _) = setup();
        ic.post(rx);
        ic.acknowledge(rx);
        assert_eq!(ic.take(Ipl::NONE), None);
        assert_eq!(ic.taken_count(rx), 0);
    }

    #[test]
    fn metadata_accessors() {
        let (ic, rx, soft, _) = setup();
        assert_eq!(ic.ipl_of(rx), Ipl::IMP);
        assert_eq!(ic.name_of(soft), "softnet");
        assert!(ic.is_enabled(rx));
    }

    #[test]
    fn ready_tracking_survives_mask_latch_ack_interleavings() {
        let (mut ic, rx, soft, _) = setup();
        // Latched-while-masked then acknowledged: enabling must NOT deliver.
        ic.set_enabled(rx, false);
        ic.post(rx);
        ic.acknowledge(rx);
        ic.set_enabled(rx, true);
        assert!(!ic.any_takeable(Ipl::NONE));
        assert_eq!(ic.take(Ipl::NONE), None);
        // Re-disabling an armed source hides it; re-enabling restores it.
        ic.post(soft);
        ic.set_enabled(soft, false);
        assert!(!ic.any_takeable(Ipl::NONE));
        ic.set_enabled(soft, true);
        assert_eq!(ic.take(Ipl::NONE), Some((soft, Ipl::SOFTNET)));
    }

    #[test]
    fn total_taken_sums() {
        let (mut ic, rx, soft, _) = setup();
        ic.post(rx);
        ic.take(Ipl::NONE);
        ic.post(soft);
        ic.take(Ipl::NONE);
        assert_eq!(ic.total_taken(), 2);
    }
}
