//! A LANCE-style network interface model.
//!
//! The NIC receives frames autonomously (DMA) into a bounded receive
//! descriptor ring — when the ring is full, frames are "dropped by the
//! interface before the system has wasted any resources" (§6.4), which is
//! exactly the cheap early drop the paper's design exploits. On the
//! transmit side, packets move from the host into a bounded transmit ring,
//! are serialized one at a time onto the wire, and their descriptors must be
//! reclaimed by the driver (`tx_done` work) before the slots can be reused —
//! the resource whose exhaustion causes transmit starvation (§4.4, §6.6).

use livelock_net::packet::Packet;
use livelock_net::queue::{DropTailQueue, Enqueued};
use std::collections::VecDeque;

use crate::cpu::CpuId;

/// RSS-style 5-tuple flow hash: FNV-1a over (src ip, dst ip, protocol,
/// src port, dst port). Deterministic — no per-boot secret key — so the
/// same flow always lands on the same receive queue, which is exactly the
/// cache-affinity property hardware RSS provides.
pub fn rss_hash(src_ip: u32, dst_ip: u32, proto: u8, src_port: u16, dst_port: u16) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for b in src_ip.to_be_bytes() {
        eat(b);
    }
    for b in dst_ip.to_be_bytes() {
        eat(b);
    }
    eat(proto);
    for b in src_port.to_be_bytes() {
        eat(b);
    }
    for b in dst_port.to_be_bytes() {
        eat(b);
    }
    h
}

/// The receive queue a 5-tuple hashes to, out of `nqueues`.
pub fn rss_queue(src_ip: u32, dst_ip: u32, proto: u8, src_port: u16, dst_port: u16, nqueues: usize) -> usize {
    assert!(nqueues > 0, "a NIC has at least one receive queue");
    (rss_hash(src_ip, dst_ip, proto, src_port, dst_port) % nqueues as u64) as usize
}

/// Static receive-side-scaling plan for a multiqueue NIC: how many RX
/// queues exist and which CPU each queue raises its interrupt on.
///
/// The default assignment is the identity (queue *q* interrupts CPU *q*),
/// which is what the SMP experiments use; [`RssSteering::assign`] supports
/// asymmetric mappings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RssSteering {
    assigned: Vec<CpuId>,
}

impl RssSteering {
    /// A steering plan with `nqueues` queues, queue *q* assigned to CPU *q*.
    ///
    /// # Panics
    ///
    /// Panics when `nqueues` is zero.
    pub fn identity(nqueues: usize) -> Self {
        assert!(nqueues > 0, "a NIC has at least one receive queue");
        RssSteering {
            assigned: (0..nqueues).map(CpuId).collect(),
        }
    }

    /// Number of receive queues.
    pub fn nqueues(&self) -> usize {
        self.assigned.len()
    }

    /// Reassigns queue `q`'s interrupt to `cpu`.
    pub fn assign(&mut self, q: usize, cpu: CpuId) {
        self.assigned[q] = cpu;
    }

    /// The queue this 5-tuple's flow hashes to.
    pub fn queue_of(&self, src_ip: u32, dst_ip: u32, proto: u8, src_port: u16, dst_port: u16) -> usize {
        rss_queue(src_ip, dst_ip, proto, src_port, dst_port, self.nqueues())
    }

    /// The CPU queue `q` raises its receive interrupt on.
    pub fn cpu_of(&self, q: usize) -> CpuId {
        self.assigned[q]
    }
}

/// Static configuration for one NIC.
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    /// Receive descriptor ring capacity.
    pub rx_ring: usize,
    /// Transmit descriptor ring capacity.
    pub tx_ring: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        // Period-typical LANCE rings.
        NicConfig {
            rx_ring: 32,
            tx_ring: 32,
        }
    }
}

/// One network interface: receive ring, transmit ring, interrupt-enable
/// flags, and counters (`Ipkts`/`Opkts`, as `netstat` reports them).
#[derive(Clone, Debug)]
pub struct Nic {
    name: &'static str,
    rx_ring: DropTailQueue<Packet>,
    /// Per-priority receive rings (index = priority, 0 highest), present
    /// only when the host enabled classified admission. `None` keeps the
    /// single classless `rx_ring` — the bit-identical legacy layout.
    rx_class_rings: Option<Vec<DropTailQueue<Packet>>>,
    /// Packets in the transmit ring, not yet on the wire.
    tx_queued: VecDeque<Packet>,
    /// A frame is currently being serialized onto the wire.
    tx_inflight: bool,
    /// Frames fully transmitted whose descriptors the driver has not yet
    /// reclaimed. They still occupy ring slots.
    tx_unreclaimed: usize,
    tx_ring_cap: usize,
    rx_intr_enabled: bool,
    tx_intr_enabled: bool,
    ipkts: u64,
    opkts: u64,
    tx_ring_rejects: u64,
}

impl Nic {
    /// Creates a NIC with both interrupt directions enabled.
    pub fn new(name: &'static str, config: NicConfig) -> Self {
        Nic {
            name,
            rx_ring: DropTailQueue::new("rx-ring", config.rx_ring),
            rx_class_rings: None,
            tx_queued: VecDeque::with_capacity(config.tx_ring),
            tx_inflight: false,
            tx_unreclaimed: 0,
            tx_ring_cap: config.tx_ring,
            rx_intr_enabled: true,
            tx_intr_enabled: true,
            ipkts: 0,
            opkts: 0,
            tx_ring_rejects: 0,
        }
    }

    /// Returns the interface's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    // --- Receive side ---

    /// A frame finished arriving on the wire; DMA places it in the receive
    /// ring. Returns whether the ring accepted it (a full ring drops the
    /// frame at zero host cost). The caller decides whether to post an
    /// interrupt, based on [`Nic::rx_intr_enabled`].
    pub fn rx_arrive(&mut self, pkt: Packet) -> Enqueued {
        let r = self.rx_ring.enqueue(pkt);
        if r.is_ok() {
            self.ipkts += 1;
        }
        r
    }

    /// The driver pulls the oldest received frame out of the ring.
    pub fn rx_take(&mut self) -> Option<Packet> {
        self.rx_ring.dequeue()
    }

    // --- Per-priority receive rings (classified admission) ---

    /// Diagnostic names for the per-priority rings, highest priority
    /// first. Bounds the supported ring count.
    const CLASS_RING_NAMES: [&'static str; 3] = ["rx-ring-p0", "rx-ring-p1", "rx-ring-p2"];

    /// Splits the receive side into `n` per-priority rings (1..=3, index
    /// 0 = highest priority), each with the configured ring's capacity —
    /// the hardware analogue of a multiqueue NIC whose queues are keyed
    /// by a priority field instead of an RSS hash. Frames already in the
    /// classless ring stay there; callers enable class rings before
    /// traffic starts.
    pub fn enable_class_rings(&mut self, n: usize) {
        let n = n.clamp(1, Self::CLASS_RING_NAMES.len());
        let cap = self.rx_ring.capacity();
        self.rx_class_rings = Some(
            Self::CLASS_RING_NAMES[..n]
                .iter()
                .map(|name| DropTailQueue::new(name, cap))
                .collect(),
        );
    }

    /// Whether per-priority receive rings are enabled.
    pub fn class_rings_enabled(&self) -> bool {
        self.rx_class_rings.is_some()
    }

    /// Number of per-priority rings (0 when classless).
    pub fn class_ring_count(&self) -> usize {
        self.rx_class_rings.as_ref().map_or(0, Vec::len)
    }

    /// DMA places a classified frame in its priority ring (out-of-range
    /// priorities land in the lowest ring). Falls back to the classless
    /// ring when class rings are off. Returns whether the ring accepted
    /// the frame.
    pub fn rx_arrive_classed(&mut self, pkt: Packet, priority: usize) -> Enqueued {
        let Some(rings) = &mut self.rx_class_rings else {
            return self.rx_arrive(pkt);
        };
        let i = priority.min(rings.len() - 1);
        let r = rings[i].enqueue(pkt);
        if r.is_ok() {
            self.ipkts += 1;
        }
        r
    }

    /// The driver pulls the oldest frame from priority ring `priority`.
    pub fn rx_take_class(&mut self, priority: usize) -> Option<Packet> {
        self.rx_class_rings.as_mut()?.get_mut(priority)?.dequeue()
    }

    /// Mutable access to the oldest frame in priority ring `priority`
    /// (the classed twin of [`Nic::rx_peek_mut`]).
    pub fn rx_peek_class_mut(&mut self, priority: usize) -> Option<&mut Packet> {
        self.rx_class_rings.as_mut()?.get_mut(priority)?.peek_mut()
    }

    /// Frames waiting in priority ring `priority` (0 when out of range
    /// or classless).
    pub fn rx_pending_class(&self, priority: usize) -> usize {
        self.rx_class_rings
            .as_ref()
            .and_then(|r| r.get(priority))
            .map_or(0, DropTailQueue::len)
    }

    /// Mutable access to the oldest ring frame without taking it — lets the
    /// host stamp the packet when it starts processing, before the chunk
    /// that consumes it completes.
    pub fn rx_peek_mut(&mut self) -> Option<&mut Packet> {
        self.rx_ring.peek_mut()
    }

    /// Number of frames waiting in the receive ring (summed across the
    /// per-priority rings when classified admission is on).
    pub fn rx_pending(&self) -> usize {
        match &self.rx_class_rings {
            Some(rings) => rings.iter().map(DropTailQueue::len).sum(),
            None => self.rx_ring.len(),
        }
    }

    /// Whether the receive ring has no free descriptor — the next
    /// [`Nic::rx_arrive`] would drop. The SMP steal path checks this
    /// before DMA to divert the frame instead of losing it. With class
    /// rings on, true only when every priority ring is full.
    pub fn rx_ring_is_full(&self) -> bool {
        match &self.rx_class_rings {
            Some(rings) => rings.iter().all(DropTailQueue::is_full),
            None => self.rx_ring.is_full(),
        }
    }

    /// Frames dropped because the receive ring was full (summed across
    /// the per-priority rings when classified admission is on).
    pub fn rx_ring_drops(&self) -> u64 {
        self.rx_ring.drops()
            + self
                .rx_class_rings
                .as_ref()
                .map_or(0, |rings| rings.iter().map(DropTailQueue::drops).sum())
    }

    /// Total frames accepted into the receive ring (`Ipkts`).
    pub fn ipkts(&self) -> u64 {
        self.ipkts
    }

    /// Receive interrupt enable flag.
    pub fn rx_intr_enabled(&self) -> bool {
        self.rx_intr_enabled
    }

    /// Sets the receive interrupt enable flag (the modified driver clears
    /// this in its interrupt stub and restores it from the polling thread).
    pub fn set_rx_intr_enabled(&mut self, enabled: bool) {
        self.rx_intr_enabled = enabled;
    }

    // --- Transmit side ---

    /// Free transmit ring slots (total minus queued, in-flight and
    /// unreclaimed descriptors).
    pub fn tx_slots_free(&self) -> usize {
        self.tx_ring_cap
            - self.tx_queued.len()
            - usize::from(self.tx_inflight)
            - self.tx_unreclaimed
    }

    /// The driver submits a packet to the transmit ring.
    ///
    /// Returns `Enqueued::Dropped` (and counts a reject) when no descriptor
    /// is free; the caller should leave the packet on its output queue.
    pub fn tx_submit(&mut self, pkt: Packet) -> Enqueued {
        if self.tx_slots_free() == 0 {
            self.tx_ring_rejects += 1;
            return Enqueued::Dropped;
        }
        self.tx_queued.push_back(pkt);
        Enqueued::Ok
    }

    /// The wire asks for the next frame to serialize. Returns `None` when
    /// the ring is empty or a frame is already in flight.
    pub fn tx_begin(&mut self) -> Option<Packet> {
        if self.tx_inflight {
            return None;
        }
        let pkt = self.tx_queued.pop_front()?;
        self.tx_inflight = true;
        Some(pkt)
    }

    /// The wire finished serializing the in-flight frame: count it
    /// transmitted (`Opkts`) and leave its descriptor awaiting reclaim.
    ///
    /// # Panics
    ///
    /// Panics if no frame was in flight.
    pub fn tx_complete(&mut self) {
        assert!(self.tx_inflight, "tx_complete without a frame in flight");
        self.tx_inflight = false;
        self.tx_unreclaimed += 1;
        self.opkts += 1;
    }

    /// The driver reclaims one completed descriptor (`tx_done` work).
    /// Returns `false` when nothing awaited reclaim.
    pub fn tx_reclaim_one(&mut self) -> bool {
        if self.tx_unreclaimed == 0 {
            return false;
        }
        self.tx_unreclaimed -= 1;
        true
    }

    /// Descriptors transmitted but not yet reclaimed.
    pub fn tx_unreclaimed(&self) -> usize {
        self.tx_unreclaimed
    }

    /// Packets queued in the transmit ring (not yet on the wire).
    pub fn tx_queued(&self) -> usize {
        self.tx_queued.len()
    }

    /// Returns `true` while a frame is being serialized.
    pub fn tx_inflight(&self) -> bool {
        self.tx_inflight
    }

    /// Total frames fully transmitted (`Opkts` — the paper's measurement
    /// counter).
    pub fn opkts(&self) -> u64 {
        self.opkts
    }

    /// Submissions rejected for lack of a free descriptor.
    pub fn tx_ring_rejects(&self) -> u64 {
        self.tx_ring_rejects
    }

    /// Transmit interrupt enable flag.
    pub fn tx_intr_enabled(&self) -> bool {
        self.tx_intr_enabled
    }

    /// Sets the transmit interrupt enable flag.
    pub fn set_tx_intr_enabled(&mut self, enabled: bool) {
        self.tx_intr_enabled = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_net::packet::PacketId;

    fn pkt(n: u64) -> Packet {
        Packet::from_frame(PacketId(n), vec![0u8; 60])
    }

    fn nic() -> Nic {
        Nic::new(
            "ln0",
            NicConfig {
                rx_ring: 4,
                tx_ring: 3,
            },
        )
    }

    #[test]
    fn rx_ring_bounds_and_counts() {
        let mut n = nic();
        for i in 0..6 {
            n.rx_arrive(pkt(i));
        }
        assert_eq!(n.rx_pending(), 4);
        assert_eq!(n.ipkts(), 4);
        assert_eq!(n.rx_ring_drops(), 2);
        assert_eq!(n.rx_take().unwrap().id, PacketId(0), "FIFO");
        assert_eq!(n.rx_pending(), 3);
    }

    #[test]
    fn tx_full_lifecycle() {
        let mut n = nic();
        assert_eq!(n.tx_slots_free(), 3);
        assert!(n.tx_submit(pkt(1)).is_ok());
        assert!(n.tx_submit(pkt(2)).is_ok());
        assert_eq!(n.tx_slots_free(), 1);

        let on_wire = n.tx_begin().unwrap();
        assert_eq!(on_wire.id, PacketId(1));
        assert!(n.tx_inflight());
        assert!(n.tx_begin().is_none(), "one frame on the wire at a time");
        assert_eq!(n.tx_slots_free(), 1, "in-flight frame still owns a slot");

        n.tx_complete();
        assert_eq!(n.opkts(), 1);
        assert_eq!(n.tx_unreclaimed(), 1);
        assert_eq!(n.tx_slots_free(), 1, "unreclaimed descriptor owns the slot");

        assert!(n.tx_reclaim_one());
        assert_eq!(n.tx_slots_free(), 2);
        assert!(!n.tx_reclaim_one(), "nothing else to reclaim");
    }

    #[test]
    fn tx_starvation_without_reclaim() {
        // The §4.4 condition: descriptors never reclaimed -> ring fills ->
        // submissions fail even though the wire is idle.
        let mut n = nic();
        for i in 0..3 {
            assert!(n.tx_submit(pkt(i)).is_ok());
        }
        assert_eq!(n.tx_submit(pkt(9)), Enqueued::Dropped);
        for _ in 0..3 {
            n.tx_begin().unwrap();
            n.tx_complete();
        }
        assert_eq!(n.tx_queued(), 0);
        assert!(!n.tx_inflight());
        assert_eq!(n.tx_unreclaimed(), 3);
        assert_eq!(n.tx_slots_free(), 0);
        assert_eq!(n.tx_submit(pkt(10)), Enqueued::Dropped, "starved");
        assert_eq!(n.tx_ring_rejects(), 2);
        // Reclaiming frees the ring again.
        while n.tx_reclaim_one() {}
        assert_eq!(n.tx_slots_free(), 3);
        assert!(n.tx_submit(pkt(11)).is_ok());
    }

    #[test]
    #[should_panic(expected = "without a frame in flight")]
    fn tx_complete_requires_inflight() {
        nic().tx_complete();
    }

    #[test]
    fn intr_enable_flags() {
        let mut n = nic();
        assert!(n.rx_intr_enabled());
        assert!(n.tx_intr_enabled());
        n.set_rx_intr_enabled(false);
        n.set_tx_intr_enabled(false);
        assert!(!n.rx_intr_enabled());
        assert!(!n.tx_intr_enabled());
    }

    #[test]
    fn ring_overflow_recycles_pooled_frames() {
        use livelock_net::pool::FramePool;
        let pool = FramePool::new(64, 8);
        let mut n = nic(); // rx_ring = 4
        for i in 0..6 {
            let p = Packet::from_frame(PacketId(i), pool.take(60));
            n.rx_arrive(p);
        }
        // Four accepted frames hold buffers; the two overflow drops
        // returned theirs to the pool immediately.
        assert_eq!(n.rx_ring_drops(), 2);
        assert_eq!(pool.outstanding(), 4);
        assert_eq!(pool.stats().recycled, 2);
        // Draining the ring returns the rest.
        while n.rx_take().is_some() {}
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.stats().recycled, 6);
    }

    #[test]
    fn default_config_is_period_typical() {
        let c = NicConfig::default();
        assert_eq!(c.rx_ring, 32);
        assert_eq!(c.tx_ring, 32);
    }

    #[test]
    fn rx_ring_full_flag_tracks_occupancy() {
        let mut n = nic(); // rx_ring = 4
        for i in 0..3 {
            n.rx_arrive(pkt(i));
        }
        assert!(!n.rx_ring_is_full());
        n.rx_arrive(pkt(3));
        assert!(n.rx_ring_is_full());
        n.rx_take();
        assert!(!n.rx_ring_is_full());
    }

    #[test]
    fn class_rings_partition_the_receive_side() {
        let mut n = nic(); // rx_ring = 4 -> each class ring gets 4 slots
        assert!(!n.class_rings_enabled());
        n.enable_class_rings(3);
        assert!(n.class_rings_enabled());
        assert_eq!(n.class_ring_count(), 3);
        // Fill priority 2 past capacity; priorities 0 and 1 stay open.
        for i in 0..6 {
            n.rx_arrive_classed(pkt(i), 2);
        }
        assert!(n.rx_arrive_classed(pkt(10), 0).is_ok());
        assert!(n.rx_arrive_classed(pkt(11), 1).is_ok());
        assert_eq!(n.rx_pending_class(0), 1);
        assert_eq!(n.rx_pending_class(1), 1);
        assert_eq!(n.rx_pending_class(2), 4);
        assert_eq!(n.rx_pending(), 6);
        assert_eq!(n.rx_ring_drops(), 2, "only the bulk ring overflowed");
        assert_eq!(n.ipkts(), 6);
        assert!(!n.rx_ring_is_full(), "higher-priority rings still open");
        // Out-of-range priorities land in the lowest ring (already full).
        assert_eq!(n.rx_arrive_classed(pkt(12), 9), Enqueued::Dropped);
        // Per-ring FIFO, selectable by priority.
        assert_eq!(n.rx_take_class(0).unwrap().id, PacketId(10));
        assert_eq!(n.rx_peek_class_mut(2).unwrap().id, PacketId(0));
        assert_eq!(n.rx_take_class(2).unwrap().id, PacketId(0));
        assert!(n.rx_take_class(0).is_none());
    }

    #[test]
    fn rss_hash_is_deterministic_and_flow_stable() {
        let h = rss_hash(0x0a00_0002, 0x0a01_0063, 17, 5001, 9);
        assert_eq!(h, rss_hash(0x0a00_0002, 0x0a01_0063, 17, 5001, 9));
        // Different flows (almost surely) hash differently.
        assert_ne!(h, rss_hash(0x0a00_0002, 0x0a01_0063, 17, 5002, 9));
        // Queue choice is hash mod nqueues, stable per flow.
        for nq in [1usize, 2, 4] {
            let q = rss_queue(0x0a00_0002, 0x0a01_0063, 17, 5001, 9, nq);
            assert!(q < nq);
            assert_eq!(q, (h % nq as u64) as usize);
        }
    }

    #[test]
    fn rss_spreads_ports_across_queues() {
        // A modest port range must not degenerate onto one queue.
        let mut hits = [0usize; 4];
        for port in 5000u16..5064 {
            hits[rss_queue(0x0a00_0002, 0x0a01_0063, 17, port, 9, 4)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "some queue starved: {hits:?}");
    }

    #[test]
    fn steering_identity_and_reassignment() {
        let mut s = RssSteering::identity(4);
        assert_eq!(s.nqueues(), 4);
        for q in 0..4 {
            assert_eq!(s.cpu_of(q), CpuId(q));
        }
        let q = s.queue_of(0x0a00_0002, 0x0a01_0063, 17, 5001, 9);
        assert!(q < 4);
        s.assign(3, CpuId(0));
        assert_eq!(s.cpu_of(3), CpuId(0));
    }
}
