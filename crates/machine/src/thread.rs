//! A priority thread scheduler with round-robin and a time quantum.
//!
//! The simulated machine runs a handful of schedulable contexts at IPL 0:
//! the modified kernel's network polling thread (kernel priority), the
//! `screend` process and the compute-bound user process (timeshare
//! priority). Higher priority always wins; equal priorities round-robin,
//! rotated when the running thread yields, sleeps, or exhausts its quantum.

use std::collections::VecDeque;

use livelock_sim::Cycles;

/// Identifies a spawned thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

/// A scheduling priority; higher values run first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// Kernel threads (the network polling thread).
    pub const KERNEL: Priority = Priority(100);
    /// Ordinary timeshare user processes (screend, compute-bound jobs).
    pub const USER: Priority = Priority(50);
}

/// Thread lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run (queued).
    Runnable,
    /// Currently selected by the CPU.
    Running,
    /// Blocked awaiting a wakeup.
    Sleeping,
}

#[derive(Clone, Debug)]
struct Thread {
    name: &'static str,
    priority: Priority,
    state: ThreadState,
}

/// The run-queue scheduler.
///
/// # Examples
///
/// ```
/// use livelock_machine::thread::{Priority, Scheduler};
/// use livelock_sim::Cycles;
///
/// let mut s = Scheduler::new(Cycles::new(1_000_000));
/// let poll = s.spawn("netpoll", Priority::KERNEL);
/// let user = s.spawn("compute", Priority::USER);
/// s.wake(poll);
/// s.wake(user);
/// assert_eq!(s.pick(), Some(poll), "kernel priority first");
/// s.sleep(poll);
/// assert_eq!(s.pick(), Some(user));
/// ```
#[derive(Clone, Debug)]
pub struct Scheduler {
    threads: Vec<Thread>,
    /// Runnable queues indexed by raw priority; only a few levels are used.
    queues: Vec<VecDeque<ThreadId>>,
    /// Bit `p` (word `p / 64`, bit `p % 64`) set ⟺ `queues[p]` is nonempty.
    /// Lets [`Scheduler::pick`] / [`Scheduler::should_preempt`] — called at
    /// every chunk boundary — test word-at-a-time instead of scanning 256
    /// queues.
    nonempty: [u64; 4],
    running: Option<ThreadId>,
    quantum: Cycles,
    run_in_quantum: Cycles,
    switches: u64,
}

impl Scheduler {
    /// Creates a scheduler with the given time quantum (the paper's system
    /// used 10 ms).
    pub fn new(quantum: Cycles) -> Self {
        Scheduler {
            threads: Vec::new(),
            queues: vec![VecDeque::new(); 256],
            nonempty: [0; 4],
            running: None,
            quantum,
            run_in_quantum: Cycles::ZERO,
            switches: 0,
        }
    }

    fn mark_queued(&mut self, prio: usize) {
        self.nonempty[prio / 64] |= 1 << (prio % 64);
    }

    fn sync_mark(&mut self, prio: usize) {
        if self.queues[prio].is_empty() {
            self.nonempty[prio / 64] &= !(1 << (prio % 64));
        }
    }

    /// Highest priority with a queued runnable thread, if any.
    fn top_queued(&self) -> Option<usize> {
        for (w, &bits) in self.nonempty.iter().enumerate().rev() {
            if bits != 0 {
                return Some(w * 64 + 63 - bits.leading_zeros() as usize);
            }
        }
        None
    }

    /// Spawns a thread in the sleeping state; call [`Scheduler::wake`] to
    /// make it runnable.
    pub fn spawn(&mut self, name: &'static str, priority: Priority) -> ThreadId {
        self.threads.push(Thread {
            name,
            priority,
            state: ThreadState::Sleeping,
        });
        ThreadId(self.threads.len() - 1)
    }

    /// Makes a sleeping thread runnable; no-op for runnable/running threads.
    /// Returns `true` when the thread transitioned to runnable.
    pub fn wake(&mut self, tid: ThreadId) -> bool {
        let t = &mut self.threads[tid.0];
        if t.state != ThreadState::Sleeping {
            return false;
        }
        t.state = ThreadState::Runnable;
        let prio = t.priority.0 as usize;
        self.queues[prio].push_back(tid);
        self.mark_queued(prio);
        true
    }

    /// Puts a thread to sleep. If it was queued runnable it is removed; the
    /// running thread may also put itself to sleep (the CPU then calls
    /// [`Scheduler::pick`] for a successor).
    pub fn sleep(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.0];
        match t.state {
            ThreadState::Sleeping => {}
            ThreadState::Runnable => {
                let prio = t.priority.0 as usize;
                self.queues[prio].retain(|&x| x != tid);
                t.state = ThreadState::Sleeping;
                self.sync_mark(prio);
            }
            ThreadState::Running => {
                t.state = ThreadState::Sleeping;
                if self.running == Some(tid) {
                    self.running = None;
                }
            }
        }
    }

    /// The running thread voluntarily yields: it goes to the back of its
    /// priority queue and the CPU should [`Scheduler::pick`] again.
    pub fn yield_current(&mut self) {
        if let Some(tid) = self.running.take() {
            let t = &mut self.threads[tid.0];
            t.state = ThreadState::Runnable;
            let prio = t.priority.0 as usize;
            self.queues[prio].push_back(tid);
            self.mark_queued(prio);
        }
    }

    /// Selects the next thread to run (highest priority, round-robin within
    /// a level) and marks it running. Returns `None` when nothing is
    /// runnable. Any previously running thread must have been yielded or
    /// slept first.
    pub fn pick(&mut self) -> Option<ThreadId> {
        assert!(
            self.running.is_none(),
            "pick() with a thread still running; yield or sleep it first"
        );
        let prio = self.top_queued()?;
        // simlint: allow(panic-freedom): top_queued returned prio, so its occupancy bit is set and sync_mark keeps bits in lockstep with queue emptiness
        let tid = self.queues[prio].pop_front().expect("bit set, queue empty");
        self.sync_mark(prio);
        self.threads[tid.0].state = ThreadState::Running;
        self.running = Some(tid);
        self.run_in_quantum = Cycles::ZERO;
        self.switches += 1;
        Some(tid)
    }

    /// Returns the running thread, if any.
    pub fn running(&self) -> Option<ThreadId> {
        self.running
    }

    /// Charges `cycles` of execution to the running thread's quantum.
    pub fn charge_quantum(&mut self, cycles: Cycles) {
        self.run_in_quantum += cycles;
    }

    /// Should the CPU preempt the running thread at this (chunk) boundary?
    ///
    /// True when a strictly higher-priority thread is runnable, or when the
    /// quantum is exhausted and an equal-priority thread is waiting.
    pub fn should_preempt(&self) -> bool {
        let Some(tid) = self.running else {
            return false;
        };
        let prio = self.threads[tid.0].priority.0 as usize;
        match self.top_queued() {
            Some(top) if top > prio => true,
            Some(top) => {
                self.run_in_quantum >= self.quantum && top == prio
            }
            None => false,
        }
    }

    /// Returns `true` when any thread (besides the running one) is queued.
    pub fn any_runnable(&self) -> bool {
        self.nonempty.iter().any(|&w| w != 0)
    }

    /// Returns the thread's current state.
    pub fn state(&self, tid: ThreadId) -> ThreadState {
        self.threads[tid.0].state
    }

    /// Returns the thread's priority.
    pub fn priority(&self, tid: ThreadId) -> Priority {
        self.threads[tid.0].priority
    }

    /// Returns the thread's diagnostic name.
    pub fn name(&self, tid: ThreadId) -> &'static str {
        self.threads[tid.0].name
    }

    /// Returns the number of spawned threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Returns `true` when no threads were spawned.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Returns how many times a thread was selected to run.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(Cycles::new(1000))
    }

    #[test]
    fn spawn_starts_sleeping() {
        let mut s = sched();
        let t = s.spawn("a", Priority::USER);
        assert_eq!(s.state(t), ThreadState::Sleeping);
        assert_eq!(s.pick(), None);
        assert_eq!(s.name(t), "a");
        assert_eq!(s.priority(t), Priority::USER);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn priority_order() {
        let mut s = sched();
        let user = s.spawn("user", Priority::USER);
        let kern = s.spawn("kern", Priority::KERNEL);
        s.wake(user);
        s.wake(kern);
        assert_eq!(s.pick(), Some(kern));
        s.sleep(kern);
        assert_eq!(s.pick(), Some(user));
    }

    #[test]
    fn round_robin_within_priority() {
        let mut s = sched();
        let a = s.spawn("a", Priority::USER);
        let b = s.spawn("b", Priority::USER);
        s.wake(a);
        s.wake(b);
        assert_eq!(s.pick(), Some(a));
        s.yield_current();
        assert_eq!(s.pick(), Some(b));
        s.yield_current();
        assert_eq!(s.pick(), Some(a));
    }

    #[test]
    fn wake_is_idempotent() {
        let mut s = sched();
        let a = s.spawn("a", Priority::USER);
        assert!(s.wake(a));
        assert!(!s.wake(a), "already runnable");
        assert_eq!(s.pick(), Some(a));
        assert!(!s.wake(a), "already running");
        s.yield_current();
        assert_eq!(s.pick(), Some(a), "not queued twice");
        s.sleep(a);
        assert_eq!(s.pick(), None);
    }

    #[test]
    fn sleep_dequeues_runnable_thread() {
        let mut s = sched();
        let a = s.spawn("a", Priority::USER);
        let b = s.spawn("b", Priority::USER);
        s.wake(a);
        s.wake(b);
        s.sleep(a);
        assert_eq!(s.pick(), Some(b));
        s.yield_current();
        assert_eq!(s.pick(), Some(b), "a stays asleep");
    }

    #[test]
    fn preemption_on_higher_priority_wake() {
        let mut s = sched();
        let user = s.spawn("user", Priority::USER);
        let kern = s.spawn("kern", Priority::KERNEL);
        s.wake(user);
        assert_eq!(s.pick(), Some(user));
        assert!(!s.should_preempt());
        s.wake(kern);
        assert!(s.should_preempt());
        s.yield_current();
        assert_eq!(s.pick(), Some(kern));
        // The lower-priority thread does not trigger preemption.
        assert!(!s.should_preempt());
    }

    #[test]
    fn quantum_preemption_needs_a_peer() {
        let mut s = sched();
        let a = s.spawn("a", Priority::USER);
        s.wake(a);
        s.pick();
        s.charge_quantum(Cycles::new(5000));
        assert!(!s.should_preempt(), "alone at its level: keeps running");
        let b = s.spawn("b", Priority::USER);
        s.wake(b);
        assert!(s.should_preempt(), "quantum spent and a peer waits");
    }

    #[test]
    fn quantum_resets_on_pick() {
        let mut s = sched();
        let a = s.spawn("a", Priority::USER);
        let b = s.spawn("b", Priority::USER);
        s.wake(a);
        s.wake(b);
        s.pick();
        s.charge_quantum(Cycles::new(400));
        assert!(!s.should_preempt(), "quantum not yet exhausted");
        s.charge_quantum(Cycles::new(700));
        assert!(s.should_preempt());
        s.yield_current();
        s.pick();
        assert!(!s.should_preempt(), "fresh quantum");
    }

    #[test]
    #[should_panic(expected = "still running")]
    fn double_pick_panics() {
        let mut s = sched();
        let a = s.spawn("a", Priority::USER);
        s.wake(a);
        s.pick();
        s.pick();
    }

    #[test]
    fn any_runnable_and_switches() {
        let mut s = sched();
        assert!(!s.any_runnable());
        let a = s.spawn("a", Priority::USER);
        s.wake(a);
        assert!(s.any_runnable());
        s.pick();
        assert!(!s.any_runnable(), "running thread is not queued");
        assert_eq!(s.switch_count(), 1);
    }
}
