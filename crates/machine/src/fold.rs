//! Collapsed-stack folding of the cycle ledger: `(cpu, class, stage)`
//! cycle totals that render directly as `inferno`-compatible folded
//! text (`cpu0;rx_intr;rx_pkt 12345` — one line per stack, semicolon
//! frames, space, sample count).
//!
//! The fold rides the exact same commit points as the [`CycleLedger`]
//! (crate::ledger::CycleLedger): the executor charges it when it
//! retires a chunk, tagged with the chunk's workload `tag` — the
//! *stage* dimension the kernel already threads through every chunk it
//! issues. Because folding only ever adds a third key to charges that
//! already happen, enabling it perturbs nothing: no event is
//! rescheduled, no cost changes, and a trial with folding on is
//! bit-identical (asserted in tests) to the same trial with it off.
//!
//! The canonical view is keyed `(cpu, class, stage)`, so iteration
//! order — and therefore the folded text — is deterministic and
//! byte-identical across `--jobs` counts and scheduler backends.
//!
//! Charging sits on the executor's hottest path (every retired chunk),
//! so the table is two-tier: a flat dense array covers the one CPU and
//! the small workload tags an engine actually charges (one add and an
//! index, no search), and a `BTreeMap` spill absorbs the rare rest
//! (foreign CPUs after a merge, out-of-range tags). Both tiers fold
//! into one canonical map for iteration, comparison and rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cpu::CpuId;
use crate::ledger::CpuClass;
use livelock_sim::Cycles;

/// Workload tags below this go to the dense tier (the kernel's stage
/// tags are small consecutive integers; tag 0 is the executor's own
/// out-of-chunk time).
const DENSE_TAGS: usize = 32;

/// Cycle totals keyed by `(cpu, class, stage-tag)`.
///
/// `stage` is the workload-defined chunk tag (`Chunk::tag`); tag `0`
/// covers cycles the executor spends outside any workload chunk
/// (scheduling overhead and the idle loop). The workload crate owns
/// the tag→label mapping; rendering takes it as a closure so this
/// crate stays ignorant of kernel stage names.
///
/// # Examples
///
/// ```
/// use livelock_machine::{CpuClass, CpuId, CycleFold};
/// use livelock_sim::Cycles;
///
/// let mut f = CycleFold::new();
/// f.charge(CpuId(0), CpuClass::RxIntr, 2, Cycles::new(750));
/// f.charge(CpuId(0), CpuClass::Idle, 0, Cycles::new(250));
/// let txt = f.folded(|tag| if tag == 2 { "rx_pkt" } else { "(none)" });
/// assert_eq!(txt, "cpu0;rx_intr;rx_pkt 750\ncpu0;idle;(none) 250\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CycleFold {
    /// The CPU the dense tier belongs to: that of the first charge
    /// (an engine's fold only ever charges its own CPU).
    dense_cpu: Option<usize>,
    /// `class.index() * DENSE_TAGS + tag` cycle totals for `dense_cpu`.
    dense: Vec<Cycles>,
    /// Everything else: foreign CPUs (merged-in per-CPU folds) and
    /// tags ≥ [`DENSE_TAGS`].
    spill: BTreeMap<(usize, usize, u64), Cycles>,
}

impl CycleFold {
    /// Creates an empty fold.
    pub fn new() -> Self {
        CycleFold::default()
    }

    /// Charges `cy` cycles to the stack `(cpu, class, tag)`.
    pub fn charge(&mut self, cpu: CpuId, class: CpuClass, tag: u64, cy: Cycles) {
        if cy == Cycles::ZERO {
            return;
        }
        if (tag as usize) < DENSE_TAGS && self.dense_cpu.map_or(true, |c| c == cpu.0) {
            if self.dense_cpu.is_none() {
                self.dense_cpu = Some(cpu.0);
                self.dense = vec![Cycles::ZERO; CpuClass::COUNT * DENSE_TAGS];
            }
            self.dense[class.index() * DENSE_TAGS + tag as usize] += cy;
        } else {
            *self
                .spill
                .entry((cpu.0, class.index(), tag))
                .or_insert(Cycles::ZERO) += cy;
        }
    }

    /// The canonical `(cpu, class, tag) -> cycles` view: both tiers
    /// folded into one ordered map (zero entries omitted).
    fn canonical(&self) -> BTreeMap<(usize, usize, u64), Cycles> {
        let mut out = self.spill.clone();
        if let Some(cpu) = self.dense_cpu {
            for (i, &cy) in self.dense.iter().enumerate() {
                if cy != Cycles::ZERO {
                    let key = (cpu, i / DENSE_TAGS, (i % DENSE_TAGS) as u64);
                    *out.entry(key).or_insert(Cycles::ZERO) += cy;
                }
            }
        }
        out
    }

    /// Sum over all stacks; equals the ledger total (and therefore
    /// elapsed virtual time) when charged by the executor.
    pub fn total(&self) -> Cycles {
        self.dense.iter().copied().sum::<Cycles>() + self.spill.values().copied().sum::<Cycles>()
    }

    /// Number of distinct `(cpu, class, stage)` stacks.
    pub fn len(&self) -> usize {
        self.canonical().len()
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.spill.is_empty() && self.dense.iter().all(|&cy| cy == Cycles::ZERO)
    }

    /// Merges another fold into this one (pointwise sum). Commutative
    /// and associative, so per-CPU folds can merge in any order.
    pub fn merge(&mut self, other: &CycleFold) {
        for (CpuId(cpu), class, tag, cy) in other.iter() {
            // simlint: allow(ledger-discipline): CycleFold::charge, not the ledger's
            self.charge(CpuId(cpu), class, tag, cy);
        }
    }

    /// Iterates stacks in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (CpuId, CpuClass, u64, Cycles)> {
        self.canonical()
            .into_iter()
            .map(|((cpu, class, tag), cy)| (CpuId(cpu), CpuClass::ALL[class], tag, cy))
    }

    /// Renders the fold as `inferno`-style collapsed stacks, one line
    /// per `(cpu, class, stage)` with the cycle count as the sample
    /// weight. `tag_label` maps workload chunk tags to frame names;
    /// labels are sanitized (`;` and whitespace replaced) so the
    /// folded grammar can't be corrupted by a label.
    pub fn folded(&self, tag_label: impl Fn(u64) -> &'static str) -> String {
        let mut out = String::new();
        for (cpu, class, tag, cy) in self.iter() {
            let label = tag_label(tag);
            let _ = write!(out, "cpu{};{};", cpu.0, class.label());
            for ch in label.chars() {
                out.push(match ch {
                    ';' | ' ' | '\t' | '\n' => '_',
                    c => c,
                });
            }
            let _ = writeln!(out, " {}", cy.raw());
        }
        out
    }
}

/// Equality is over the canonical view: where a charge landed (dense
/// tier vs spill) is an implementation detail, not part of the value.
impl PartialEq for CycleFold {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for CycleFold {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn label(tag: u64) -> &'static str {
        match tag {
            0 => "(exec)",
            2 => "rx_pkt",
            4 => "softnet_pkt",
            _ => "other",
        }
    }

    #[test]
    fn charges_accumulate_per_stack() {
        let mut f = CycleFold::new();
        f.charge(CpuId(0), CpuClass::RxIntr, 2, cy(100));
        f.charge(CpuId(0), CpuClass::RxIntr, 2, cy(50));
        f.charge(CpuId(0), CpuClass::SoftIntNet, 4, cy(30));
        assert_eq!(f.len(), 2);
        assert_eq!(f.total(), cy(180));
    }

    #[test]
    fn zero_charges_create_no_stacks() {
        let mut f = CycleFold::new();
        f.charge(CpuId(0), CpuClass::Idle, 0, Cycles::ZERO);
        assert!(f.is_empty());
        assert_eq!(f.folded(label), "");
    }

    #[test]
    fn folded_text_is_sorted_and_stable() {
        let mut f = CycleFold::new();
        f.charge(CpuId(1), CpuClass::SoftIntNet, 4, cy(7));
        f.charge(CpuId(0), CpuClass::RxIntr, 2, cy(9));
        f.charge(CpuId(0), CpuClass::Idle, 0, cy(3));
        let txt = f.folded(label);
        assert_eq!(
            txt,
            "cpu0;rx_intr;rx_pkt 9\ncpu0;idle;(exec) 3\ncpu1;softint_net;softnet_pkt 7\n"
        );
    }

    #[test]
    fn labels_are_sanitized() {
        let mut f = CycleFold::new();
        f.charge(CpuId(0), CpuClass::UserProc, 99, cy(1));
        let txt = f.folded(|_| "a;b c");
        assert_eq!(txt, "cpu0;user_proc;a_b_c 1\n");
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = CycleFold::new();
        a.charge(CpuId(0), CpuClass::RxIntr, 2, cy(10));
        a.charge(CpuId(1), CpuClass::Idle, 0, cy(5));
        let mut b = CycleFold::new();
        b.charge(CpuId(0), CpuClass::RxIntr, 2, cy(4));
        b.charge(CpuId(1), CpuClass::UserProc, 15, cy(6));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), cy(25));
    }
}
