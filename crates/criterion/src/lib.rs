#![warn(missing_docs)]

//! An offline, dependency-free subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment for this repository has no network access to a
//! crates.io registry, so the real `criterion` crate cannot be resolved.
//! This crate re-implements the surface the workspace's `[[bench]]`
//! targets use — [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups with `sample_size`/`throughput`, `bench_function`,
//! and [`black_box`] — on top of plain [`std::time::Instant`] timing.
//!
//! Statistical rigor is deliberately modest compared to real criterion
//! (no outlier analysis, no HTML reports): each benchmark runs one warm-up
//! iteration plus `sample_size` timed iterations and prints the minimum,
//! median and mean wall-clock time, with element throughput when
//! configured.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(&mut self, id: impl AsRef<str>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut samples = b.samples;
        assert!(
            !samples.is_empty(),
            "bench_function closure must call Bencher::iter"
        );
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(
                "  ({:.0} elem/s)",
                n as f64 / median.as_secs_f64().max(1e-12)
            ),
            Throughput::Bytes(n) => format!(
                "  ({:.1} MiB/s)",
                n as f64 / 1048576.0 / median.as_secs_f64().max(1e-12)
            ),
        });
        println!(
            "{}/{}: median {:?}  mean {:?}  min {:?}  [{} samples]{}",
            self.name,
            id.as_ref(),
            median,
            mean,
            min,
            samples.len(),
            rate.unwrap_or_default()
        );
    }

    /// Explicitly ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        g.finish();
    }

    #[test]
    #[should_panic(expected = "must call Bencher::iter")]
    fn missing_iter_detected() {
        let mut c = Criterion::default();
        c.benchmark_group("stub").bench_function("noop", |_| {});
    }
}
