#![warn(missing_docs)]

//! Byte-level network substrate for the receive-livelock reproduction.
//!
//! The paper's router-under-test forwards real IP/UDP packets between two
//! Ethernets. To keep the per-packet code paths honest (parse, validate,
//! decrement TTL, fix the checksum, route, re-encapsulate) this crate
//! implements the wire formats and forwarding data structures from scratch:
//!
//! - [`ethernet`], [`arp`], [`ipv4`], [`udp`], [`icmp`] — header
//!   encode/decode with real byte layouts and checksums ([`checksum`]).
//! - [`packet`] — the packet buffer carried through the simulated kernel,
//!   with provenance timestamps for latency measurement.
//! - [`pool`] — a freelist slab of recycled frame buffers, so steady-state
//!   forwarding allocates no heap memory per packet (the mbuf-cluster
//!   analogue).
//! - [`queue`] — bounded drop-tail queues (`ipintrq`, interface output
//!   queues, the screend queue) with drop accounting and watermark queries.
//! - [`red`] — Random Early Detection admission (the §8-cited drop-policy
//!   alternative), usable in front of any bounded queue.
//! - [`route`] — a longest-prefix-match routing table (binary trie).
//! - [`arp::ArpCache`] — next-hop resolution, including the paper's
//!   "phantom" ARP entry trick.
//! - [`filter`] — a screend-style first-match packet filter rule engine.
//! - [`classify`] — deterministic, order-independent 5-tuple →
//!   priority-class mapping (control / realtime / bulk) for the
//!   priority-aware receive path.
//! - [`tcp`] — TCP header codec (§7.1's end-system transport discussion).
//! - [`frag`] — IPv4 fragmentation and bounded, timeout-governed
//!   reassembly (§5.3's "fragment must be queued" case).
//! - [`gen`] — deterministic traffic generators (constant-rate with jitter,
//!   Poisson, bursty on/off, trace replay).
//! - [`mutate`] — deterministic in-flight frame damage (bit flips, DMA
//!   scribbles, runts, mangled headers) for fault injection, each aimed at
//!   a specific validation layer.
//! - [`phy`] — physical-layer constants (Ethernet serialization times; the
//!   14,880 pkts/s maximum rate the paper cites).

pub mod arp;
pub mod checksum;
pub mod classify;
pub mod ethernet;
pub mod filter;
pub mod frag;
pub mod gen;
pub mod icmp;
pub mod ipv4;
pub mod mutate;
pub mod packet;
pub mod phy;
pub mod pool;
pub mod queue;
pub mod red;
pub mod route;
pub mod tcp;
pub mod udp;

pub use arp::ArpCache;
pub use classify::{Classifier, MatchRule, TrafficClass};
pub use ethernet::{EtherType, EthernetHeader, MacAddr};
pub use filter::{Action, Filter, Rule};
pub use ipv4::Ipv4Header;
pub use mutate::Mutation;
pub use packet::{FlowKey, Packet, PacketId, StageStamps};
pub use pool::{FrameBuf, FramePool, PoolStats};
pub use queue::DropTailQueue;
pub use route::RouteTable;
pub use udp::UdpHeader;

/// Errors produced while parsing or building packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the header demands.
    Truncated,
    /// A checksum failed verification.
    BadChecksum,
    /// A version, type or length field holds an unsupported value.
    Malformed,
    /// The TTL reached zero during forwarding.
    TtlExpired,
    /// No route matched the destination.
    NoRoute,
    /// The next hop could not be resolved to a link-layer address.
    NoArpEntry,
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            NetError::Truncated => "buffer truncated",
            NetError::BadChecksum => "bad checksum",
            NetError::Malformed => "malformed header",
            NetError::TtlExpired => "TTL expired",
            NetError::NoRoute => "no route to destination",
            NetError::NoArpEntry => "no ARP entry for next hop",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for NetError {}
