//! IPv4 fragmentation and reassembly.
//!
//! The paper notes that even a process-to-completion kernel must sometimes
//! queue an incoming packet: "when an IP fragment is received and its
//! companion fragments are not yet available" (§5.3). The reassembly
//! buffer is a bounded, timeout-governed resource — exactly the kind of
//! queue the feedback mechanisms watch — so the substrate implements it
//! for real: RFC 791 fragmentation on output and hole-free reassembly on
//! input, with resource caps and expiry.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use livelock_sim::Cycles;

use crate::ipv4::{Ipv4Header, IPV4_HEADER_LEN};
use crate::NetError;

/// The more-fragments flag bit in `flags_frag`.
const MF: u16 = 0x2000;
/// The don't-fragment flag bit.
const DF: u16 = 0x4000;
/// Mask of the 13-bit fragment offset (in 8-byte units).
const OFFSET_MASK: u16 = 0x1fff;

/// Splits an encoded IPv4 datagram (header + payload) into fragments that
/// fit `mtu` bytes each (header included). Returns the original datagram
/// when it already fits.
///
/// # Errors
///
/// - Propagates header parse failures.
/// - [`NetError::Malformed`] when the datagram has the don't-fragment bit
///   set but does not fit, or when `mtu` cannot hold a header plus one
///   8-byte payload unit.
pub fn fragment(dgram: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>, NetError> {
    let hdr = Ipv4Header::parse(dgram)?;
    if dgram.len() < hdr.total_len as usize {
        return Err(NetError::Truncated);
    }
    if dgram.len() <= mtu {
        return Ok(vec![dgram.to_vec()]);
    }
    if hdr.flags_frag & DF != 0 {
        return Err(NetError::Malformed);
    }
    if mtu < IPV4_HEADER_LEN + 8 {
        return Err(NetError::Malformed);
    }
    let payload = &dgram[IPV4_HEADER_LEN..hdr.total_len as usize];
    // Payload bytes per fragment, rounded down to an 8-byte multiple.
    let unit = (mtu - IPV4_HEADER_LEN) / 8 * 8;
    let base_offset_units = hdr.flags_frag & OFFSET_MASK;
    let had_mf = hdr.flags_frag & MF != 0;

    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < payload.len() {
        let end = (pos + unit).min(payload.len());
        let last = end == payload.len();
        let mut fh = hdr;
        fh.total_len = (IPV4_HEADER_LEN + end - pos) as u16;
        let offset_units = base_offset_units + (pos / 8) as u16;
        fh.flags_frag = offset_units | if last && !had_mf { 0 } else { MF };
        fh.header_checksum = fh.compute_checksum();
        let mut frag = vec![0u8; IPV4_HEADER_LEN + end - pos];
        fh.encode(&mut frag)?;
        frag[IPV4_HEADER_LEN..].copy_from_slice(&payload[pos..end]);
        out.push(frag);
        pos = end;
    }
    Ok(out)
}

/// A reassembly key: the RFC 791 tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    ident: u16,
}

#[derive(Debug)]
struct Pending {
    /// Received (start, end) byte ranges of the payload, merged.
    ranges: Vec<(usize, usize)>,
    /// Payload bytes assembled so far (sparse; holes are zero).
    data: Vec<u8>,
    /// Total payload length, known once the final fragment arrives.
    total: Option<usize>,
    /// Header of the first fragment (offset 0), used for the reassembled
    /// datagram.
    first_header: Option<Ipv4Header>,
    /// When this reassembly gives up.
    deadline: Cycles,
}

impl Pending {
    fn new(deadline: Cycles) -> Self {
        Pending {
            ranges: Vec::new(),
            data: Vec::new(),
            total: None,
            first_header: None,
            deadline,
        }
    }

    fn add_range(&mut self, start: usize, end: usize) {
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
    }

    fn complete(&self) -> bool {
        match (self.total, self.first_header.as_ref(), self.ranges.first()) {
            (Some(total), Some(_), Some(&(0, end))) => end >= total && self.ranges.len() == 1,
            _ => false,
        }
    }

    /// Consumes a complete reassembly and encodes the joined datagram.
    /// Returns `None` when the entry is not actually complete, so the
    /// caller never has to assert invariants that would panic a trial.
    fn finish(self) -> Option<Vec<u8>> {
        let total = self.total?;
        let mut fh = self.first_header?;
        if self.data.len() < total {
            return None;
        }
        fh.total_len = (IPV4_HEADER_LEN + total) as u16;
        fh.flags_frag = 0;
        fh.header_checksum = fh.compute_checksum();
        let mut out = vec![0u8; IPV4_HEADER_LEN + total];
        fh.encode(&mut out).ok()?;
        out[IPV4_HEADER_LEN..].copy_from_slice(&self.data[..total]);
        Some(out)
    }
}

/// Outcome of offering a datagram to the reassembler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reassembly {
    /// The datagram was not fragmented; use it as-is.
    NotFragmented,
    /// Fragment stored; companions still missing.
    Incomplete,
    /// All fragments arrived: here is the reassembled datagram.
    Complete(Vec<u8>),
    /// The reassembly buffer is full; the fragment was dropped.
    BufferFull,
}

/// A bounded, timeout-governed IPv4 reassembler.
///
/// # Examples
///
/// ```
/// use livelock_net::frag::{fragment, Reassembler, Reassembly};
/// use livelock_net::ipv4::Ipv4Header;
/// use livelock_sim::Cycles;
/// use std::net::Ipv4Addr;
///
/// let hdr = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 2), 17, 32, 100);
/// let mut dgram = vec![0u8; 120];
/// hdr.encode(&mut dgram).unwrap();
/// let frags = fragment(&dgram, 60).unwrap();
/// assert!(frags.len() > 1);
///
/// let mut r = Reassembler::new(16, Cycles::new(1_000_000));
/// let mut done = None;
/// for f in &frags {
///     if let Reassembly::Complete(d) = r.offer(f, Cycles::new(0)) {
///         done = Some(d);
///     }
/// }
/// assert_eq!(done.unwrap(), dgram);
/// ```
#[derive(Debug)]
pub struct Reassembler {
    pending: BTreeMap<Key, Pending>,
    max_pending: usize,
    timeout: Cycles,
    expired: u64,
    dropped_full: u64,
}

impl Reassembler {
    /// Creates a reassembler holding at most `max_pending` concurrent
    /// datagrams, each expiring `timeout` cycles after its first fragment.
    pub fn new(max_pending: usize, timeout: Cycles) -> Self {
        Reassembler {
            pending: BTreeMap::new(),
            max_pending,
            timeout,
            expired: 0,
            dropped_full: 0,
        }
    }

    /// Offers an encoded IP datagram at time `now`.
    ///
    /// # Errors
    ///
    /// Propagates header parse errors ([`NetError`]).
    pub fn offer(&mut self, dgram: &[u8], now: Cycles) -> Reassembly {
        let Ok(hdr) = Ipv4Header::parse(dgram) else {
            return Reassembly::NotFragmented;
        };
        let offset_units = hdr.flags_frag & OFFSET_MASK;
        let mf = hdr.flags_frag & MF != 0;
        if offset_units == 0 && !mf {
            return Reassembly::NotFragmented;
        }

        if dgram.len() < hdr.total_len as usize {
            // Truncated on the wire: not reassemblable.
            return Reassembly::NotFragmented;
        }

        let key = Key {
            src: hdr.src,
            dst: hdr.dst,
            protocol: hdr.protocol,
            ident: hdr.ident,
        };
        let pending_now = self.pending.len();
        let entry = match self.pending.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                if pending_now >= self.max_pending {
                    self.dropped_full += 1;
                    return Reassembly::BufferFull;
                }
                v.insert(Pending::new(now + self.timeout))
            }
        };

        let start = offset_units as usize * 8;
        let payload = &dgram[IPV4_HEADER_LEN..hdr.total_len as usize];
        let end = start + payload.len();
        if entry.data.len() < end {
            entry.data.resize(end, 0);
        }
        entry.data[start..end].copy_from_slice(payload);
        entry.add_range(start, end);
        if !mf {
            entry.total = Some(end);
        }
        if start == 0 {
            entry.first_header = Some(hdr);
        }

        if !entry.complete() {
            return Reassembly::Incomplete;
        }
        match self.pending.remove(&key).and_then(Pending::finish) {
            Some(out) => Reassembly::Complete(out),
            None => Reassembly::Incomplete,
        }
    }

    /// Discards reassemblies whose deadline passed; returns how many.
    pub fn expire(&mut self, now: Cycles) -> usize {
        let before = self.pending.len();
        self.pending.retain(|_, p| p.deadline > now);
        let n = before - self.pending.len();
        self.expired += n as u64;
        n
    }

    /// Number of in-progress reassemblies.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Fragments rejected because the buffer was full.
    pub fn dropped_full(&self) -> u64 {
        self.dropped_full
    }

    /// Reassemblies abandoned by timeout.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::proto;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn dgram(payload_len: usize, ident: u16) -> Vec<u8> {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2),
            proto::UDP,
            32,
            payload_len as u16,
        );
        h.ident = ident;
        h.header_checksum = h.compute_checksum();
        let mut d = vec![0u8; IPV4_HEADER_LEN + payload_len];
        h.encode(&mut d).unwrap();
        for (i, b) in d[IPV4_HEADER_LEN..].iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        d
    }

    #[test]
    fn small_datagram_is_not_fragmented() {
        let d = dgram(40, 1);
        let frags = fragment(&d, 1500).unwrap();
        assert_eq!(frags, vec![d]);
    }

    #[test]
    fn fragments_are_valid_and_sized() {
        let d = dgram(1000, 2);
        let frags = fragment(&d, 576).unwrap();
        assert!(frags.len() >= 2);
        for (i, f) in frags.iter().enumerate() {
            assert!(f.len() <= 576);
            let h = Ipv4Header::parse(f).expect("each fragment has a valid header");
            let is_last = i == frags.len() - 1;
            assert_eq!(h.flags_frag & MF != 0, !is_last);
            if !is_last {
                assert_eq!(
                    (f.len() - IPV4_HEADER_LEN) % 8,
                    0,
                    "non-final multiple of 8"
                );
            }
        }
    }

    #[test]
    fn dont_fragment_is_honoured() {
        let mut d = dgram(1000, 3);
        let mut h = Ipv4Header::parse(&d).unwrap();
        h.flags_frag |= DF;
        h.header_checksum = h.compute_checksum();
        h.encode(&mut d).unwrap();
        assert_eq!(fragment(&d, 576), Err(NetError::Malformed));
    }

    #[test]
    fn tiny_mtu_rejected() {
        let d = dgram(100, 4);
        assert_eq!(fragment(&d, 24), Err(NetError::Malformed));
    }

    #[test]
    fn reassembly_in_order() {
        let d = dgram(900, 5);
        let frags = fragment(&d, 256).unwrap();
        let mut r = Reassembler::new(8, Cycles::new(1_000));
        let mut result = None;
        for f in &frags {
            match r.offer(f, Cycles::new(0)) {
                Reassembly::Complete(out) => result = Some(out),
                Reassembly::Incomplete => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(result.unwrap(), d);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_out_of_order_and_duplicates() {
        let d = dgram(900, 6);
        let mut frags = fragment(&d, 256).unwrap();
        frags.reverse();
        let dup = frags[1].clone();
        frags.insert(2, dup);
        let mut r = Reassembler::new(8, Cycles::new(1_000));
        let mut result = None;
        for f in &frags {
            if let Reassembly::Complete(out) = r.offer(f, Cycles::new(0)) {
                result = Some(out);
            }
        }
        assert_eq!(result.unwrap(), d);
    }

    #[test]
    fn unfragmented_passthrough() {
        let d = dgram(40, 7);
        let mut r = Reassembler::new(8, Cycles::new(1_000));
        assert_eq!(r.offer(&d, Cycles::new(0)), Reassembly::NotFragmented);
    }

    #[test]
    fn interleaved_datagrams_do_not_mix() {
        let a = dgram(600, 10);
        let b = dgram(600, 11);
        let fa = fragment(&a, 256).unwrap();
        let fb = fragment(&b, 256).unwrap();
        let mut r = Reassembler::new(8, Cycles::new(1_000));
        let mut done = Vec::new();
        for (x, y) in fa.iter().zip(&fb) {
            if let Reassembly::Complete(out) = r.offer(x, Cycles::new(0)) {
                done.push(out);
            }
            if let Reassembly::Complete(out) = r.offer(y, Cycles::new(0)) {
                done.push(out);
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.contains(&a));
        assert!(done.contains(&b));
    }

    #[test]
    fn fragmenting_truncated_datagram_errors() {
        let d = dgram(600, 31);
        assert_eq!(fragment(&d[..200], 64), Err(NetError::Truncated));
    }

    #[test]
    fn truncated_fragment_does_not_panic() {
        // A fragment whose IP total_len exceeds the delivered bytes (a
        // valid header over a truncated buffer) must be rejected cleanly.
        let d = dgram(600, 30);
        let frags = fragment(&d, 256).unwrap();
        let cut = &frags[0][..frags[0].len() - 10];
        let mut r = Reassembler::new(4, Cycles::new(100));
        assert_eq!(r.offer(cut, Cycles::ZERO), Reassembly::NotFragmented);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn buffer_cap_and_accounting() {
        let mut r = Reassembler::new(2, Cycles::new(1_000));
        for ident in 0..5u16 {
            let d = dgram(600, 100 + ident);
            let frags = fragment(&d, 256).unwrap();
            let _ = r.offer(&frags[0], Cycles::new(0));
        }
        assert_eq!(r.pending(), 2);
        assert_eq!(r.dropped_full(), 3);
    }

    #[test]
    fn expiry_discards_stale_reassemblies() {
        let mut r = Reassembler::new(8, Cycles::new(100));
        let d = dgram(600, 20);
        let frags = fragment(&d, 256).unwrap();
        let _ = r.offer(&frags[0], Cycles::new(0));
        assert_eq!(r.expire(Cycles::new(50)), 0);
        assert_eq!(r.expire(Cycles::new(100)), 1);
        assert_eq!(r.expired(), 1);
        assert_eq!(r.pending(), 0);
        // A late companion fragment restarts rather than completes.
        assert_eq!(r.offer(&frags[1], Cycles::new(200)), Reassembly::Incomplete);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn fragment_reassemble_round_trip(
            payload_len in 9usize..3000,
            mtu in 68usize..1500,
            shuffle_seed in any::<u64>(),
        ) {
            let d = dgram(payload_len, 42);
            let mut frags = fragment(&d, mtu).unwrap();
            // Deterministic shuffle.
            let mut rng = livelock_sim::Rng::seed_from(shuffle_seed);
            for i in (1..frags.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                frags.swap(i, j);
            }
            let mut r = Reassembler::new(4, Cycles::new(1_000));
            let mut result = None;
            for f in &frags {
                match r.offer(f, Cycles::new(0)) {
                    Reassembly::Complete(out) => result = Some(out),
                    Reassembly::Incomplete | Reassembly::NotFragmented => {}
                    Reassembly::BufferFull => prop_assert!(false, "single datagram overflows"),
                }
            }
            if frags.len() == 1 {
                prop_assert!(result.is_none(), "single packet is NotFragmented");
            } else {
                prop_assert_eq!(result.expect("reassembled"), d);
            }
        }
    }
}
