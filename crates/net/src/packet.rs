//! The packet buffer carried through the simulated kernel.
//!
//! A [`Packet`] owns a full Ethernet frame as wire bytes plus simulation
//! metadata: a unique id and provenance timestamps used for latency
//! accounting. Helper constructors build complete, checksummed
//! UDP-in-IPv4-in-Ethernet frames like the paper's load generator.

use std::net::Ipv4Addr;

use livelock_sim::Cycles;

use crate::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::icmp::IcmpMessage;
use crate::ipv4::{self, Ipv4Header, IPV4_HEADER_LEN};
use crate::pool::{FrameBuf, FramePool};
use crate::udp::{self, UdpHeader, UDP_HEADER_LEN};
use crate::NetError;

/// Minimum Ethernet frame length (without FCS), per IEEE 802.3.
pub const MIN_FRAME_LEN: usize = 60;
/// Maximum Ethernet frame length (without FCS).
pub const MAX_FRAME_LEN: usize = 1514;

/// A unique, monotonically assigned packet identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// The 5-tuple identifying a transport flow — the same fields (in the
/// same order) the multiqueue NIC's RSS hash consumes, so one key
/// serves both queue steering and per-flow accounting.
///
/// Plain `Copy` data: carrying it inline in a [`Packet`] costs nothing
/// on the zero-allocation forwarding path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// IPv4 source address, native-endian `u32` (as `Ipv4Addr::to_bits`).
    pub src_ip: u32,
    /// IPv4 destination address, native-endian `u32`.
    pub dst_ip: u32,
    /// IP protocol number (`ipv4::proto::*`).
    pub proto: u8,
    /// Transport source port (0 for protocols without ports).
    pub src_port: u16,
    /// Transport destination port (0 for protocols without ports).
    pub dst_port: u16,
}

/// Per-packet lifecycle timestamps, one per stage boundary of the receive
/// path. Stamps live inline in the [`Packet`] (plain `Copy` data, no heap),
/// so recording them costs nothing on the zero-allocation forwarding path.
///
/// Every field starts at `Cycles::MAX` ("never") and is written at most
/// once as the packet crosses that boundary. Consecutive boundaries
/// telescope: the per-stage residencies derived from them sum exactly to
/// the packet's total sojourn time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageStamps {
    /// Driver/poller started on the frame (it leaves the RX ring at the
    /// end of that processing chunk).
    pub ring_deq: Cycles,
    /// IP forwarding began (head of ipintrq under interrupts; same as
    /// `ring_deq` for a process-to-completion polled path).
    pub fwd_start: Cycles,
    /// IP forwarding finished: routing decision made, packet handed to the
    /// next queue (output, screend, or socket).
    pub fwd_done: Cycles,
    /// Enqueued on the screend or socket queue (`Cycles::MAX` when the
    /// path has neither).
    pub sq_enq: Cycles,
    /// Dequeued from the screend or socket queue (filter verdict reached /
    /// application consumed the datagram).
    pub sq_deq: Cycles,
    /// Enqueued on the output interface queue.
    pub out_enq: Cycles,
    /// Frame began serializing onto the output wire.
    pub tx_start: Cycles,
}

impl StageStamps {
    /// All stamps unset.
    pub const UNSET: StageStamps = StageStamps {
        ring_deq: Cycles::MAX,
        fwd_start: Cycles::MAX,
        fwd_done: Cycles::MAX,
        sq_enq: Cycles::MAX,
        sq_deq: Cycles::MAX,
        out_enq: Cycles::MAX,
        tx_start: Cycles::MAX,
    };

    /// Returns `true` if `stamp` has been written.
    pub fn is_set(stamp: Cycles) -> bool {
        stamp != Cycles::MAX
    }
}

impl Default for StageStamps {
    fn default() -> Self {
        StageStamps::UNSET
    }
}

/// A packet travelling through the simulation.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Unique id, assigned by the creator.
    pub id: PacketId,
    /// Full Ethernet frame bytes (headers + payload, no FCS). Either a
    /// plain heap buffer or one on loan from a [`FramePool`], recycled
    /// automatically when the packet dies.
    pub frame: FrameBuf,
    /// Time the frame finished arriving on the input wire (set by the wire
    /// model; `Cycles::MAX` until then).
    pub arrived_at: Cycles,
    /// Time the packet was taken off the receive ring by the host.
    pub dequeued_at: Cycles,
    /// Lifecycle stage-boundary timestamps for latency accounting.
    pub stamps: StageStamps,
    /// The transport 5-tuple, parsed once at RX-arrival by the kernel
    /// when per-flow observability is on (`None` otherwise, and for
    /// non-IP or portless frames). Cached here so drop and delivery
    /// sites never re-parse the frame.
    pub flow: Option<FlowKey>,
    /// The priority class the admission path assigned (`None` until the
    /// kernel's classifier runs, and always `None` when classification
    /// is off). Read-only outside the classifier/admission modules —
    /// simlint's `class-discipline` rule confines [`Packet::set_class`].
    pub class: Option<crate::classify::TrafficClass>,
}

impl Packet {
    /// Wraps frame bytes (a plain `Vec<u8>` or a pooled [`FrameBuf`]),
    /// padding to the Ethernet minimum.
    pub fn from_frame(id: PacketId, frame: impl Into<FrameBuf>) -> Self {
        let mut frame = frame.into();
        if frame.len() < MIN_FRAME_LEN {
            frame.resize(MIN_FRAME_LEN, 0);
        }
        Packet {
            id,
            frame,
            arrived_at: Cycles::MAX,
            dequeued_at: Cycles::MAX,
            stamps: StageStamps::UNSET,
            flow: None,
            class: None,
        }
    }

    /// Assigns the packet's priority class. Only the kernel's
    /// classifier/admission-gate module may call this (enforced by the
    /// simlint `class-discipline` rule): a class assigned anywhere else
    /// would bypass the per-class arrival accounting.
    pub fn set_class(&mut self, class: crate::classify::TrafficClass) {
        self.class = Some(class);
    }

    /// Parses the transport 5-tuple from the frame bytes: `None` for
    /// non-IPv4 frames, malformed headers, or truncated transport
    /// headers; ports are 0 for protocols other than UDP/TCP.
    ///
    /// This reads the wire bytes every call — the kernel parses once at
    /// arrival and caches the result in [`Packet::flow`].
    pub fn flow_key(&self) -> Option<FlowKey> {
        // Parse the IPv4 header once and bound the datagram from its
        // total-length field directly — going through `ip_datagram()`
        // here would parse (and checksum) the same header a second time,
        // and this runs on every arrival when per-flow metrics are on.
        let ip = self.ipv4().ok()?;
        let end = ETHERNET_HEADER_LEN + ip.total_len as usize;
        if self.frame.len() < end {
            return None;
        }
        let seg = &self.frame[ETHERNET_HEADER_LEN + IPV4_HEADER_LEN..end];
        let (src_port, dst_port) = match ip.protocol {
            ipv4::proto::UDP => {
                let udp = udp::UdpHeader::parse(seg).ok()?;
                (udp.src_port, udp.dst_port)
            }
            ipv4::proto::TCP => {
                let tcp = crate::tcp::TcpHeader::parse(seg).ok()?;
                (tcp.src_port, tcp.dst_port)
            }
            _ => (0, 0),
        };
        Some(FlowKey {
            src_ip: ip.src.into(),
            dst_ip: ip.dst.into(),
            proto: ip.protocol,
            src_port,
            dst_port,
        })
    }

    /// Builds a complete UDP/IPv4/Ethernet frame with valid checksums.
    ///
    /// This is the datagram shape the paper's source host generated:
    /// `udp_ipv4(.., payload = &[0; 4])` yields a minimum-size frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_ipv4(
        id: PacketId,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        ttl: u8,
        payload: &[u8],
    ) -> Self {
        let udp_len = UDP_HEADER_LEN + payload.len();
        let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + udp_len;
        let mut frame = vec![0u8; total.max(MIN_FRAME_LEN)];
        let encoded = encode_udp_frame(
            &mut frame, src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, ttl, payload,
        );
        debug_assert!(encoded.is_ok(), "buffer sized for all headers");
        Packet::from_frame(id, frame)
    }

    /// Like [`Packet::udp_ipv4`], but the frame buffer comes from `pool`
    /// (and returns to it when the packet dies).
    #[allow(clippy::too_many_arguments)]
    pub fn udp_ipv4_in(
        pool: &FramePool,
        id: PacketId,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        ttl: u8,
        payload: &[u8],
    ) -> Self {
        let udp_len = UDP_HEADER_LEN + payload.len();
        let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + udp_len;
        let mut frame = pool.take(total.max(MIN_FRAME_LEN));
        let encoded = encode_udp_frame(
            &mut frame, src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, ttl, payload,
        );
        debug_assert!(encoded.is_ok(), "buffer sized for all headers");
        Packet::from_frame(id, frame)
    }

    /// Builds a complete ICMP/IPv4/Ethernet frame with valid checksums
    /// (used by the router to originate Time Exceeded / Destination
    /// Unreachable errors).
    pub fn icmp_ipv4(
        id: PacketId,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ttl: u8,
        msg: &IcmpMessage,
    ) -> Self {
        let icmp_len = msg.encoded_len();
        let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + icmp_len;
        let mut frame = vec![0u8; total.max(MIN_FRAME_LEN)];
        let encoded =
            encode_icmp_frame(&mut frame, src_mac, dst_mac, src_ip, dst_ip, ttl, msg, icmp_len);
        debug_assert!(encoded.is_ok(), "buffer sized for all headers");
        Packet::from_frame(id, frame)
    }

    /// Like [`Packet::icmp_ipv4`], but the frame buffer comes from `pool`.
    pub fn icmp_ipv4_in(
        pool: &FramePool,
        id: PacketId,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ttl: u8,
        msg: &IcmpMessage,
    ) -> Self {
        let icmp_len = msg.encoded_len();
        let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + icmp_len;
        let mut frame = pool.take(total.max(MIN_FRAME_LEN));
        let encoded =
            encode_icmp_frame(&mut frame, src_mac, dst_mac, src_ip, dst_ip, ttl, msg, icmp_len);
        debug_assert!(encoded.is_ok(), "buffer sized for all headers");
        Packet::from_frame(id, frame)
    }

    /// Returns the frame length in bytes (without FCS).
    pub fn len(&self) -> usize {
        self.frame.len()
    }

    /// Returns `true` if the frame is empty (never true for valid packets).
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// Parses the Ethernet header.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError::Truncated`] from the header parser.
    pub fn ethernet(&self) -> Result<EthernetHeader, NetError> {
        EthernetHeader::parse(&self.frame)
    }

    /// Parses and validates the IPv4 header, when the EtherType is IPv4.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] when the frame is not IPv4; otherwise
    /// whatever [`Ipv4Header::parse`] reports.
    pub fn ipv4(&self) -> Result<Ipv4Header, NetError> {
        let eth = self.ethernet()?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(NetError::Malformed);
        }
        Ipv4Header::parse(&self.frame[ETHERNET_HEADER_LEN..])
    }

    /// Returns the bytes of the IP datagram (header + payload), bounded by
    /// the IP total-length field.
    ///
    /// # Errors
    ///
    /// Same as [`Packet::ipv4`], plus [`NetError::Truncated`] when the frame
    /// is shorter than the IP total length claims.
    pub fn ip_datagram(&self) -> Result<&[u8], NetError> {
        let ip = self.ipv4()?;
        let end = ETHERNET_HEADER_LEN + ip.total_len as usize;
        if self.frame.len() < end {
            return Err(NetError::Truncated);
        }
        Ok(&self.frame[ETHERNET_HEADER_LEN..end])
    }

    /// Mutable access to the IP header bytes for forwarding mutations.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] when the frame has no room for an IP header.
    pub fn ip_header_bytes_mut(&mut self) -> Result<&mut [u8], NetError> {
        let end = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
        if self.frame.len() < end {
            return Err(NetError::Truncated);
        }
        Ok(&mut self.frame[ETHERNET_HEADER_LEN..end])
    }

    /// Truncates the frame to `len` bytes (no-op when already shorter).
    /// Fault injection uses this to produce runt frames; unlike
    /// [`Packet::from_frame`] the result is *not* re-padded to the
    /// Ethernet minimum — that is the point.
    pub fn truncate(&mut self, len: usize) {
        if len < self.frame.len() {
            self.frame.resize(len, 0);
        }
    }

    /// Rewrites the Ethernet source/destination for the output link.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] for an impossible short frame.
    pub fn set_link_addrs(&mut self, src: MacAddr, dst: MacAddr) -> Result<(), NetError> {
        let eth = self.ethernet()?;
        EthernetHeader {
            dst,
            src,
            ethertype: eth.ethertype,
        }
        .encode(&mut self.frame)
    }
}

/// Encodes a UDP/IPv4/Ethernet frame into `frame`. The constructors
/// size the buffer from the same arithmetic, so the error arm is
/// unreachable there — but the codecs report honestly instead of
/// panicking, and the callers debug-assert success.
#[allow(clippy::too_many_arguments)]
fn encode_udp_frame(
    frame: &mut [u8],
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    payload: &[u8],
) -> Result<(), NetError> {
    let udp_len = UDP_HEADER_LEN + payload.len();
    let seg_start = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
    if frame.len() < seg_start + udp_len {
        return Err(NetError::Truncated);
    }
    EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .encode(frame)?;

    let ip = Ipv4Header::new(src_ip, dst_ip, ipv4::proto::UDP, ttl, udp_len as u16);
    ip.encode(&mut frame[ETHERNET_HEADER_LEN..])?;

    UdpHeader::new(src_port, dst_port, payload.len() as u16).encode(&mut frame[seg_start..])?;
    frame[seg_start + UDP_HEADER_LEN..seg_start + udp_len].copy_from_slice(payload);
    udp::fill_checksum(src_ip, dst_ip, &mut frame[seg_start..seg_start + udp_len])?;
    Ok(())
}

/// ICMP sibling of [`encode_udp_frame`]; same contract.
#[allow(clippy::too_many_arguments)]
fn encode_icmp_frame(
    frame: &mut [u8],
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    ttl: u8,
    msg: &IcmpMessage,
    icmp_len: usize,
) -> Result<(), NetError> {
    let start = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
    if frame.len() < start + icmp_len {
        return Err(NetError::Truncated);
    }
    EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .encode(frame)?;

    let ip = Ipv4Header::new(src_ip, dst_ip, ipv4::proto::ICMP, ttl, icmp_len as u16);
    ip.encode(&mut frame[ETHERNET_HEADER_LEN..])?;

    msg.encode(&mut frame[start..start + icmp_len])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    fn sample(payload: &[u8]) -> Packet {
        Packet::udp_ipv4(
            PacketId(1),
            MacAddr::local(1),
            MacAddr::local(2),
            SRC_IP,
            DST_IP,
            5000,
            9,
            32,
            payload,
        )
    }

    #[test]
    fn min_udp_packet_is_min_frame() {
        // 4-byte payload, as in the paper: 14 + 20 + 8 + 4 = 46 < 60, padded.
        let p = sample(&[0u8; 4]);
        assert_eq!(p.len(), MIN_FRAME_LEN);
    }

    #[test]
    fn headers_parse_back() {
        let p = sample(b"ping");
        let eth = p.ethernet().unwrap();
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        assert_eq!(eth.src, MacAddr::local(1));
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.src, SRC_IP);
        assert_eq!(ip.dst, DST_IP);
        assert_eq!(ip.protocol, ipv4::proto::UDP);
        assert_eq!(ip.total_len, 32);
        let dgram = p.ip_datagram().unwrap();
        assert_eq!(dgram.len(), 32);
        let udp_hdr = UdpHeader::parse(&dgram[IPV4_HEADER_LEN..]).unwrap();
        assert_eq!(udp_hdr.src_port, 5000);
        assert_eq!(udp_hdr.dst_port, 9);
        assert_eq!(udp_hdr.payload_len(), 4);
    }

    #[test]
    fn udp_checksum_valid_despite_padding() {
        let p = sample(&[1, 2, 3, 4]);
        let dgram = p.ip_datagram().unwrap();
        assert!(udp::verify_checksum(
            SRC_IP,
            DST_IP,
            &dgram[IPV4_HEADER_LEN..]
        ));
    }

    #[test]
    fn forwarding_mutations() {
        let mut p = sample(&[0u8; 4]);
        ipv4::decrement_ttl(p.ip_header_bytes_mut().unwrap()).unwrap();
        assert_eq!(p.ipv4().unwrap().ttl, 31);
        p.set_link_addrs(MacAddr::local(9), MacAddr::local(10))
            .unwrap();
        let eth = p.ethernet().unwrap();
        assert_eq!(eth.src, MacAddr::local(9));
        assert_eq!(eth.dst, MacAddr::local(10));
        assert_eq!(eth.ethertype, EtherType::Ipv4, "ethertype preserved");
        // IP payload untouched by the link-layer rewrite.
        assert!(p.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn non_ip_frame_rejected_by_ipv4_accessor() {
        let mut frame = vec![0u8; MIN_FRAME_LEN];
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(1),
            ethertype: EtherType::Arp,
        }
        .encode(&mut frame)
        .unwrap();
        let p = Packet::from_frame(PacketId(2), frame);
        assert_eq!(p.ipv4(), Err(NetError::Malformed));
    }

    #[test]
    fn short_frames_pad_up() {
        let p = Packet::from_frame(PacketId(3), vec![0u8; 10]);
        assert_eq!(p.len(), MIN_FRAME_LEN);
        assert!(!p.is_empty());
    }

    #[test]
    fn icmp_frame_round_trips() {
        use crate::icmp::{IcmpKind, IcmpMessage};
        let msg = IcmpMessage::time_exceeded(&[0xabu8; 40]);
        let p = Packet::icmp_ipv4(
            PacketId(9),
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            SRC_IP,
            32,
            &msg,
        );
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.protocol, ipv4::proto::ICMP);
        let dgram = p.ip_datagram().unwrap();
        let parsed = IcmpMessage::parse(&dgram[IPV4_HEADER_LEN..]).unwrap();
        assert_eq!(parsed.kind, IcmpKind::TimeExceeded);
        assert_eq!(parsed.payload.len(), 28);
    }

    #[test]
    fn flow_key_parses_udp_5_tuple() {
        let p = sample(&[0u8; 4]);
        let key = p.flow_key().expect("valid UDP frame has a flow");
        assert_eq!(key.src_ip, u32::from(SRC_IP));
        assert_eq!(key.dst_ip, u32::from(DST_IP));
        assert_eq!(key.proto, ipv4::proto::UDP);
        assert_eq!(key.src_port, 5000);
        assert_eq!(key.dst_port, 9);
        // Parsing is stateless: the cached field is untouched.
        assert_eq!(p.flow, None);
    }

    #[test]
    fn flow_key_none_for_non_ip() {
        let mut frame = vec![0u8; MIN_FRAME_LEN];
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(1),
            ethertype: EtherType::Arp,
        }
        .encode(&mut frame)
        .unwrap();
        let p = Packet::from_frame(PacketId(7), frame);
        assert_eq!(p.flow_key(), None);
    }

    #[test]
    fn flow_key_portless_for_icmp() {
        use crate::icmp::IcmpMessage;
        let msg = IcmpMessage::time_exceeded(&[0u8; 28]);
        let p = Packet::icmp_ipv4(
            PacketId(8),
            MacAddr::local(1),
            MacAddr::local(2),
            SRC_IP,
            DST_IP,
            32,
            &msg,
        );
        let key = p.flow_key().expect("valid ICMP frame has a flow");
        assert_eq!(key.proto, ipv4::proto::ICMP);
        assert_eq!((key.src_port, key.dst_port), (0, 0));
    }

    #[test]
    fn large_payload_exceeds_min() {
        let p = sample(&[0u8; 1000]);
        assert_eq!(
            p.len(),
            ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + 1000
        );
        assert!(p.len() <= MAX_FRAME_LEN);
    }
}

#[cfg(test)]
mod robustness {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[cfg(feature = "proptest")]
    proptest! {
        /// Parsing arbitrary bytes as a frame never panics — every layer
        /// returns an error instead. (The router feeds whatever the wire
        /// delivers into these parsers.)
        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let p = Packet::from_frame(PacketId(0), data);
            let _ = p.ethernet();
            let _ = p.ipv4();
            let _ = p.ip_datagram();
            let mut p2 = p.clone();
            let _ = p2.ip_header_bytes_mut().map(crate::ipv4::decrement_ttl);
            let _ = p2.set_link_addrs(MacAddr::ZERO, MacAddr::BROADCAST);
        }

        /// Same for every header codec on raw buffers.
        #[test]
        fn codecs_never_panic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = crate::ethernet::EthernetHeader::parse(&data);
            let _ = crate::ipv4::Ipv4Header::parse(&data);
            let _ = crate::udp::UdpHeader::parse(&data);
            let _ = crate::tcp::TcpHeader::parse(&data);
            let _ = crate::arp::ArpPacket::parse(&data);
            let _ = crate::icmp::IcmpMessage::parse(&data);
            let _ = crate::filter::PacketMeta::from_ip_datagram(&data);
            let mut r = crate::frag::Reassembler::new(4, livelock_sim::Cycles::new(100));
            let _ = r.offer(&data, livelock_sim::Cycles::ZERO);
        }
    }
}
