//! In-flight packet damage for fault injection.
//!
//! A [`Mutation`] is one deterministic way a frame can be damaged between
//! the sender's NIC and ours: a single flipped bit, DMA scribbling over
//! the header, a runt truncation, or a mangled version field. Each is
//! aimed at a specific validation layer — the IPv4 header checksum, the
//! length checks, the version/IHL sanity check — so an injected frame is
//! always *caught* downstream and attributed to `BadHeader`, never
//! silently misrouted.
//!
//! Mutations are pure functions of the packet (the damaged bit position
//! derives from the packet id), so fault-injected runs replay exactly
//! without consuming simulation randomness.

use crate::ethernet::ETHERNET_HEADER_LEN;
use crate::ipv4::IPV4_HEADER_LEN;
use crate::packet::Packet;

/// One kind of in-flight frame damage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Flip a single bit in the IPv4 header (bytes that only the header
    /// checksum guards), deterministically chosen from the packet id.
    BitFlip,
    /// DMA scribble: overwrite a span of the IPv4 header with a constant
    /// pattern (descriptor corruption; the checksum catches it).
    Scribble,
    /// Truncate the frame mid-IP-header (a runt frame).
    Truncate,
    /// Mangle the version/IHL byte so the header parser rejects it
    /// before any protocol logic runs.
    MalformHeader,
}

impl Mutation {
    /// Short stable name for markers, tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            Mutation::BitFlip => "bit-flip",
            Mutation::Scribble => "scribble",
            Mutation::Truncate => "truncate",
            Mutation::MalformHeader => "malform-header",
        }
    }

    /// Damages `pkt` in place. Always succeeds: frames too short to host
    /// the targeted field are truncated instead (they were runts already).
    pub fn apply(self, pkt: &mut Packet) {
        let ip_start = ETHERNET_HEADER_LEN;
        let ip_end = ip_start + IPV4_HEADER_LEN;
        if pkt.len() < ip_end {
            pkt.truncate(pkt.len().saturating_sub(1).max(1));
            return;
        }
        match self {
            Mutation::BitFlip => {
                // Bytes 4..=17 of the IP header: never the version/IHL or
                // total-length fields, so the *only* guard that can catch
                // the flip is the header checksum.
                let id = pkt.id.0;
                let byte = ip_start + 4 + (id % 14) as usize;
                let bit = ((id / 14) % 8) as u32;
                pkt.frame[byte] ^= 1u8 << bit;
            }
            Mutation::Scribble => {
                // Stomp the ident/fragment words with a recognizable
                // pattern, as a wild DMA write would.
                for b in &mut pkt.frame[ip_start + 4..ip_start + 8] {
                    *b = 0xA5;
                }
            }
            Mutation::Truncate => {
                // Cut mid-IP-header: long enough for Ethernet, too short
                // for IPv4.
                pkt.truncate(ip_start + IPV4_HEADER_LEN / 2);
            }
            Mutation::MalformHeader => {
                // Version 0, IHL 0: rejected before checksum or protocol
                // logic, exercising the parser (and any filter engine
                // that would have inspected the packet).
                pkt.frame[ip_start] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::MacAddr;
    use crate::packet::PacketId;
    use crate::NetError;
    use std::net::Ipv4Addr;

    fn sample(id: u64) -> Packet {
        Packet::udp_ipv4(
            PacketId(id),
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 1, 0, 2),
            5000,
            9,
            32,
            &[0u8; 4],
        )
    }

    #[test]
    fn bit_flip_is_caught_by_the_header_checksum() {
        for id in 0..200 {
            let mut p = sample(id);
            Mutation::BitFlip.apply(&mut p);
            assert_eq!(
                p.ipv4().unwrap_err(),
                NetError::BadChecksum,
                "id {id}: single-bit damage must be checksum-caught"
            );
        }
    }

    #[test]
    fn bit_flip_is_deterministic_per_id() {
        let mut a = sample(7);
        let mut b = sample(7);
        Mutation::BitFlip.apply(&mut a);
        Mutation::BitFlip.apply(&mut b);
        assert_eq!(&a.frame[..], &b.frame[..]);
    }

    #[test]
    fn scribble_is_caught_by_the_header_checksum() {
        let mut p = sample(1);
        Mutation::Scribble.apply(&mut p);
        assert_eq!(p.ipv4().unwrap_err(), NetError::BadChecksum);
    }

    #[test]
    fn truncate_yields_a_runt() {
        let mut p = sample(2);
        Mutation::Truncate.apply(&mut p);
        assert!(p.len() < ETHERNET_HEADER_LEN + IPV4_HEADER_LEN);
        assert_eq!(p.ipv4().unwrap_err(), NetError::Truncated);
        // The Ethernet header still parses: the damage is IP-layer.
        assert!(p.ethernet().is_ok());
    }

    #[test]
    fn malformed_header_is_rejected_by_the_parser() {
        let mut p = sample(3);
        Mutation::MalformHeader.apply(&mut p);
        assert_eq!(p.ipv4().unwrap_err(), NetError::Malformed);
    }

    #[test]
    fn mutating_an_already_short_frame_never_panics() {
        for m in [
            Mutation::BitFlip,
            Mutation::Scribble,
            Mutation::Truncate,
            Mutation::MalformHeader,
        ] {
            let mut p = sample(4);
            p.truncate(10);
            m.apply(&mut p);
            assert!(p.ipv4().is_err());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Mutation::BitFlip.label(), "bit-flip");
        assert_eq!(Mutation::MalformHeader.label(), "malform-header");
    }
}
