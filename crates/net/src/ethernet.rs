//! Ethernet II framing: MAC addresses, EtherTypes, header encode/decode.

use core::fmt;
use core::str::FromStr;

use crate::NetError;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (unset).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A convenient locally administered address: `02:00:00:00:00:<n>`
    /// with the host index spread over the low bytes.
    pub const fn local(n: u32) -> Self {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns the raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` for the broadcast address.
    pub const fn is_broadcast(self) -> bool {
        matches!(self.0, [0xff, 0xff, 0xff, 0xff, 0xff, 0xff])
    }

    /// Returns `true` for group (multicast or broadcast) addresses.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in &mut octets {
            let part = parts.next().ok_or(NetError::Malformed)?;
            *octet = u8::from_str_radix(part, 16).map_err(|_| NetError::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(NetError::Malformed);
        }
        Ok(MacAddr(octets))
    }
}

/// The EtherType field of an Ethernet II frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// Any other value.
    Other(u16),
}

impl EtherType {
    /// Returns the numeric EtherType.
    pub const fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Classifies a numeric EtherType.
    pub const fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// A decoded Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

/// Length in bytes of an encoded Ethernet II header.
pub const ETHERNET_HEADER_LEN: usize = 14;

impl EthernetHeader {
    /// Parses the header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is shorter than 14 bytes.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
        })
    }

    /// Encodes the header into the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is shorter than 14 bytes.
    pub fn encode(&self, buf: &mut [u8]) -> Result<(), NetError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        buf[0..6].copy_from_slice(&self.dst.octets());
        buf[6..12].copy_from_slice(&self.src.octets());
        buf[12..14].copy_from_slice(&self.ethertype.as_u16().to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn mac_display_and_parse() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddr>().unwrap(), m);
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(1).is_broadcast());
        assert!(
            !MacAddr::local(1).is_multicast(),
            "locally administered unicast"
        );
        assert!(MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn local_addresses_are_distinct() {
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
        assert_ne!(MacAddr::local(1), MacAddr::local(0x0100_0001));
    }

    #[test]
    fn ethertype_round_trip() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Ipv4.as_u16(), 0x0800);
    }

    #[test]
    fn header_encode_parse_round_trip() {
        let h = EthernetHeader {
            dst: MacAddr::local(2),
            src: MacAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; ETHERNET_HEADER_LEN];
        h.encode(&mut buf).unwrap();
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn truncated_errors() {
        let h = EthernetHeader {
            dst: MacAddr::ZERO,
            src: MacAddr::ZERO,
            ethertype: EtherType::Arp,
        };
        let mut small = [0u8; 13];
        assert_eq!(h.encode(&mut small), Err(NetError::Truncated));
        assert_eq!(EthernetHeader::parse(&small), Err(NetError::Truncated));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn round_trip_any_header(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), et in any::<u16>()) {
            let h = EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::from_u16(et),
            };
            let mut buf = [0u8; 20];
            h.encode(&mut buf).unwrap();
            prop_assert_eq!(EthernetHeader::parse(&buf).unwrap(), h);
        }
    }
}
