//! UDP header encode/decode with pseudo-header checksum support.
//!
//! The paper's load generator sends 4-byte UDP datagrams; the simulation
//! builds those byte-for-byte, including a correct UDP checksum over the
//! IPv4 pseudo-header.

use std::net::Ipv4Addr;

use crate::checksum::{fold, sum_words};
use crate::ipv4::proto;
use crate::NetError;

/// Length in bytes of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload in bytes.
    pub length: u16,
    /// Checksum as stored on the wire (0 means "not computed").
    pub checksum: u16,
}

impl UdpHeader {
    /// Builds a header for a datagram with `payload_len` bytes of payload.
    /// The checksum is left at zero; use [`fill_checksum`] after encoding.
    pub fn new(src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: UDP_HEADER_LEN as u16 + payload_len,
            checksum: 0,
        }
    }

    /// Parses a header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for a short buffer and
    /// [`NetError::Malformed`] if the length field is smaller than a header.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if (length as usize) < UDP_HEADER_LEN {
            return Err(NetError::Malformed);
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length,
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }

    /// Encodes the header into the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is shorter than 8 bytes.
    pub fn encode(&self, buf: &mut [u8]) -> Result<(), NetError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        Ok(())
    }

    /// Returns the payload length in bytes.
    pub fn payload_len(&self) -> u16 {
        self.length.saturating_sub(UDP_HEADER_LEN as u16)
    }
}

/// Computes the UDP checksum over the IPv4 pseudo-header and `segment`
/// (UDP header + payload as encoded, with the checksum field zeroed or not —
/// the field's current contents are excluded by the caller zeroing it).
pub fn pseudo_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
    let mut sum = 0u32;
    sum += sum_words(&src.octets());
    sum += sum_words(&dst.octets());
    sum += u32::from(proto::UDP);
    sum += segment.len() as u32;
    sum += sum_words(segment);
    let c = !fold(sum);
    // An all-zero checksum is transmitted as 0xffff (RFC 768).
    if c == 0 {
        0xffff
    } else {
        c
    }
}

/// Fills the checksum field of an encoded UDP segment in place.
///
/// `segment` must start with the UDP header.
///
/// # Errors
///
/// Returns [`NetError::Truncated`] when `segment` is shorter than a header.
pub fn fill_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &mut [u8]) -> Result<(), NetError> {
    if segment.len() < UDP_HEADER_LEN {
        return Err(NetError::Truncated);
    }
    segment[6] = 0;
    segment[7] = 0;
    let c = pseudo_checksum(src, dst, segment);
    segment[6..8].copy_from_slice(&c.to_be_bytes());
    Ok(())
}

/// Verifies the checksum of an encoded UDP segment (0 means unchecked; it is
/// accepted, as RFC 768 allows).
pub fn verify_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> bool {
    if segment.len() < UDP_HEADER_LEN {
        return false;
    }
    let stored = u16::from_be_bytes([segment[6], segment[7]]);
    if stored == 0 {
        return true;
    }
    let mut sum = 0u32;
    sum += sum_words(&src.octets());
    sum += sum_words(&dst.octets());
    sum += u32::from(proto::UDP);
    sum += segment.len() as u32;
    sum += sum_words(segment);
    fold(sum) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    #[test]
    fn header_round_trip() {
        let h = UdpHeader::new(1234, 9, 4);
        assert_eq!(h.length, 12);
        assert_eq!(h.payload_len(), 4);
        let mut buf = [0u8; UDP_HEADER_LEN];
        h.encode(&mut buf).unwrap();
        assert_eq!(UdpHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(UdpHeader::parse(&[0u8; 7]), Err(NetError::Truncated));
        let mut buf = [0u8; UDP_HEADER_LEN];
        UdpHeader::new(1, 2, 0).encode(&mut buf).unwrap();
        buf[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(UdpHeader::parse(&buf), Err(NetError::Malformed));
    }

    #[test]
    fn checksum_fill_then_verify() {
        let mut seg = vec![0u8; UDP_HEADER_LEN + 4];
        UdpHeader::new(5000, 9, 4).encode(&mut seg).unwrap();
        seg[8..].copy_from_slice(b"ping");
        fill_checksum(SRC, DST, &mut seg).unwrap();
        assert!(verify_checksum(SRC, DST, &seg));
        // Corruption is detected.
        seg[9] ^= 1;
        assert!(!verify_checksum(SRC, DST, &seg));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut seg = vec![0u8; UDP_HEADER_LEN + 2];
        UdpHeader::new(1, 2, 2).encode(&mut seg).unwrap();
        assert!(verify_checksum(SRC, DST, &seg));
    }

    #[test]
    fn wrong_pseudo_header_fails() {
        let mut seg = vec![0u8; UDP_HEADER_LEN + 4];
        UdpHeader::new(5000, 9, 4).encode(&mut seg).unwrap();
        fill_checksum(SRC, DST, &mut seg).unwrap();
        assert!(!verify_checksum(SRC, Ipv4Addr::new(10, 1, 0, 3), &seg));
    }

    #[test]
    fn short_segment_fails_verify() {
        assert!(!verify_checksum(SRC, DST, &[0u8; 4]));
        assert_eq!(
            fill_checksum(SRC, DST, &mut [0u8; 4]),
            Err(NetError::Truncated)
        );
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn any_payload_verifies_after_fill(
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            sp in any::<u16>(), dp in any::<u16>(),
            src in any::<u32>(), dst in any::<u32>(),
        ) {
            let src = Ipv4Addr::from(src);
            let dst = Ipv4Addr::from(dst);
            let mut seg = vec![0u8; UDP_HEADER_LEN + payload.len()];
            UdpHeader::new(sp, dp, payload.len() as u16).encode(&mut seg).unwrap();
            seg[UDP_HEADER_LEN..].copy_from_slice(&payload);
            fill_checksum(src, dst, &mut seg).unwrap();
            prop_assert!(verify_checksum(src, dst, &seg));
        }
    }
}
