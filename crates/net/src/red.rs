//! Random Early Detection admission control (Floyd & Jacobson 1993).
//!
//! The paper keeps drop-tail and notes that "when a congested router must
//! drop a packet, its choice of which packet to drop can have significant
//! effects ... other policies might provide better results \[3]" (§8). This
//! module implements that cited alternative as an *admission policy* layered
//! in front of any bounded queue: the classic RED gateway calculation with
//! an EWMA of the queue length, a linearly rising drop probability between
//! two thresholds, and the count-based spacing correction from the paper.

use livelock_sim::Rng;

/// Verdict for one arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue the packet.
    Accept,
    /// Drop the packet now (early drop).
    EarlyDrop,
}

/// RED parameters and state.
///
/// # Examples
///
/// ```
/// use livelock_net::red::{Admission, Red};
///
/// let mut red = Red::new(5.0, 15.0, 0.1, 0.002, 7);
/// // An empty queue always admits.
/// assert_eq!(red.admit(0), Admission::Accept);
/// ```
#[derive(Clone, Debug)]
pub struct Red {
    min_th: f64,
    max_th: f64,
    max_p: f64,
    /// EWMA weight (RED paper default 0.002).
    w_q: f64,
    avg: f64,
    /// Packets accepted since the last early drop while avg ≥ min_th.
    count: i64,
    rng: Rng,
    early_drops: u64,
    accepted: u64,
}

impl Red {
    /// Creates a RED policy.
    ///
    /// - `min_th` / `max_th`: thresholds on the *average* queue length;
    /// - `max_p`: drop probability as the average reaches `max_th`;
    /// - `w_q`: EWMA weight;
    /// - `seed`: deterministic randomization seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_th < max_th` and `0 < max_p ≤ 1`.
    pub fn new(min_th: f64, max_th: f64, max_p: f64, w_q: f64, seed: u64) -> Self {
        assert!(min_th > 0.0 && min_th < max_th, "thresholds must order");
        assert!(max_p > 0.0 && max_p <= 1.0, "max_p must be in (0, 1]");
        assert!(w_q > 0.0 && w_q <= 1.0, "w_q must be in (0, 1]");
        Red {
            min_th,
            max_th,
            max_p,
            w_q,
            avg: 0.0,
            count: -1,
            rng: Rng::seed_from(seed),
            early_drops: 0,
            accepted: 0,
        }
    }

    /// A reasonable default for a queue of the given capacity: thresholds
    /// at 25% and 75%, 10% max drop probability.
    pub fn for_capacity(capacity: usize, seed: u64) -> Self {
        let cap = capacity as f64;
        Red::new(cap * 0.25, cap * 0.75, 0.1, 0.002, seed)
    }

    /// Decides admission for a packet arriving to a queue currently
    /// `queue_len` long. The caller still enforces the hard capacity.
    pub fn admit(&mut self, queue_len: usize) -> Admission {
        self.avg = (1.0 - self.w_q) * self.avg + self.w_q * queue_len as f64;
        if self.avg < self.min_th {
            self.count = -1;
            self.accepted += 1;
            return Admission::Accept;
        }
        if self.avg >= self.max_th {
            self.count = 0;
            self.early_drops += 1;
            return Admission::EarlyDrop;
        }
        self.count += 1;
        let p_b = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
        // Spacing correction: p_a = p_b / (1 - count * p_b).
        let denom = 1.0 - self.count as f64 * p_b;
        let p_a = if denom <= 0.0 {
            1.0
        } else {
            (p_b / denom).min(1.0)
        };
        if self.rng.chance(p_a) {
            self.count = 0;
            self.early_drops += 1;
            Admission::EarlyDrop
        } else {
            self.accepted += 1;
            Admission::Accept
        }
    }

    /// The current average queue length estimate.
    pub fn avg_queue_len(&self) -> f64 {
        self.avg
    }

    /// Early drops so far.
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// Accepted packets so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn empty_queue_always_admits() {
        let mut red = Red::for_capacity(32, 1);
        for _ in 0..1000 {
            assert_eq!(red.admit(0), Admission::Accept);
        }
        assert_eq!(red.early_drops(), 0);
    }

    #[test]
    fn sustained_congestion_drops_probabilistically() {
        let mut red = Red::new(4.0, 12.0, 0.2, 0.2, 2);
        let mut drops = 0;
        for _ in 0..2000 {
            if red.admit(10) == Admission::EarlyDrop {
                drops += 1;
            }
        }
        // avg converges to 10 (between thresholds): some but not all drop.
        assert!(drops > 100, "drops {drops}");
        assert!(drops < 1500, "drops {drops}");
    }

    #[test]
    fn above_max_threshold_drops_everything() {
        let mut red = Red::new(2.0, 8.0, 0.1, 1.0, 3); // w_q=1: avg = instant.
        assert_eq!(red.admit(20), Admission::EarlyDrop);
        assert_eq!(red.admit(20), Admission::EarlyDrop);
        assert_eq!(red.early_drops(), 2);
    }

    #[test]
    fn ewma_tracks_slowly() {
        let mut red = Red::new(4.0, 12.0, 0.1, 0.01, 4);
        // A short burst barely moves the average: no early drops.
        for _ in 0..10 {
            assert_eq!(red.admit(16), Admission::Accept);
        }
        assert!(red.avg_queue_len() < 4.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut red = Red::new(4.0, 12.0, 0.2, 0.2, seed);
            (0..500)
                .filter(|_| red.admit(9) == Admission::EarlyDrop)
                .count()
        };
        assert_eq!(run(9), run(9));
        // Different seeds give (almost surely) different drop patterns.
        let mut a = Red::new(4.0, 12.0, 0.2, 0.2, 1);
        let mut b = Red::new(4.0, 12.0, 0.2, 0.2, 2);
        let pa: Vec<_> = (0..200).map(|_| a.admit(9)).collect();
        let pb: Vec<_> = (0..200).map(|_| b.admit(9)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    #[should_panic(expected = "thresholds must order")]
    fn bad_thresholds_rejected() {
        let _ = Red::new(10.0, 5.0, 0.1, 0.002, 1);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// Accounting invariant: every decision is counted exactly once.
        #[test]
        fn accounting(lens in proptest::collection::vec(0usize..64, 1..500)) {
            let mut red = Red::for_capacity(32, 42);
            for &l in &lens {
                let _ = red.admit(l);
            }
            prop_assert_eq!(red.accepted() + red.early_drops(), lens.len() as u64);
        }

        /// Below min threshold RED never drops, regardless of history.
        #[test]
        fn no_drops_below_min(seed in any::<u64>()) {
            let mut red = Red::new(8.0, 24.0, 0.5, 0.5, seed);
            for _ in 0..200 {
                prop_assert_eq!(red.admit(2), Admission::Accept);
            }
        }
    }
}
