//! Deterministic traffic generation.
//!
//! The paper's source host sent "10000 UDP packets carrying 4 bytes of
//! data" at a nominal rate, noting that "this system does not generate a
//! precisely paced stream of packets". [`TrafficGen`] reproduces that: a
//! jittered constant-bit-rate process by default, plus Poisson, bursty
//! on/off, and trace-replay processes for the latency/jitter extensions.

use std::net::Ipv4Addr;

use livelock_sim::{Cycles, Freq, Rng};

use crate::ethernet::MacAddr;
use crate::packet::{Packet, PacketId};
use crate::pool::FramePool;

/// Builds the paper's UDP test datagrams with sequential ids.
#[derive(Clone, Debug)]
pub struct PacketFactory {
    /// Source MAC (the generating host's interface).
    pub src_mac: MacAddr,
    /// Destination MAC (the router's input interface).
    pub dst_mac: MacAddr,
    /// Source IP.
    pub src_ip: Ipv4Addr,
    /// Destination IP (the phantom host behind the router).
    pub dst_ip: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Initial TTL.
    pub ttl: u8,
    /// UDP payload length in bytes (the paper used 4).
    pub payload_len: usize,
    next_id: u64,
    pool: Option<FramePool>,
    zeros: Vec<u8>,
    /// Cached encoded frame: every packet this factory builds has
    /// byte-identical headers and payload (ids live outside the frame), so
    /// steady-state generation is one memcpy instead of re-encoding two
    /// checksums per packet. Rebuilt whenever the addressing fields change
    /// (they are public, and tests mutate them mid-stream).
    template: Vec<u8>,
    template_key: Option<TemplateKey>,
}

/// The addressing fields a cached frame template depends on.
type TemplateKey = (
    MacAddr,
    MacAddr,
    Ipv4Addr,
    Ipv4Addr,
    u16,
    u16,
    u8,
    usize,
);

impl PacketFactory {
    /// Creates a factory mirroring the paper's testbed addressing: traffic
    /// from a source host on net 10.0/16 to a phantom destination on
    /// net 10.1/16, 4-byte payloads.
    pub fn paper_testbed() -> Self {
        PacketFactory {
            src_mac: MacAddr::local(0x100),
            dst_mac: MacAddr::local(1),
            src_ip: Ipv4Addr::new(10, 0, 0, 2),
            dst_ip: Ipv4Addr::new(10, 1, 0, 99),
            src_port: 5001,
            dst_port: 9, // Discard.
            ttl: 32,
            payload_len: 4,
            next_id: 0,
            pool: None,
            zeros: Vec::new(),
            template: Vec::new(),
            template_key: None,
        }
    }

    /// Draws every subsequent frame buffer from `pool` instead of the heap.
    pub fn with_pool(mut self, pool: FramePool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool this factory allocates from, if any.
    pub fn pool(&self) -> Option<&FramePool> {
        self.pool.as_ref()
    }

    /// Builds the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let key = (
            self.src_mac,
            self.dst_mac,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.ttl,
            self.payload_len,
        );
        if self.template_key != Some(key) {
            // Encode once through the full header/checksum path; the id is
            // carried beside the frame, never inside it, so every later
            // packet reuses these exact bytes.
            if self.zeros.len() != self.payload_len {
                self.zeros.resize(self.payload_len, 0);
            }
            let built = Packet::udp_ipv4(
                id,
                self.src_mac,
                self.dst_mac,
                self.src_ip,
                self.dst_ip,
                self.src_port,
                self.dst_port,
                self.ttl,
                &self.zeros,
            );
            self.template = built.frame.to_vec();
            self.template_key = Some(key);
        }
        match &self.pool {
            Some(pool) => {
                let mut buf = pool.take(self.template.len());
                buf.copy_from_slice(&self.template);
                Packet::from_frame(id, buf)
            }
            None => Packet::from_frame(id, self.template.clone()),
        }
    }

    /// Returns how many packets have been built.
    pub fn built(&self) -> u64 {
        self.next_id
    }
}

/// The inter-arrival process shapes supported by [`TrafficGen`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Constant rate with uniform jitter of ±`jitter` (fraction of the mean
    /// interval, 0.0 = perfectly paced). The paper's generator corresponds
    /// to a modest jitter (its "short-term rates varied somewhat").
    Cbr {
        /// Jitter amplitude as a fraction of the mean interval, in `[0, 1)`.
        jitter: f64,
    },
    /// Poisson arrivals (exponential inter-arrival times).
    Poisson,
    /// Bursty on/off: bursts of `burst_len` packets back-to-back at the
    /// wire-limited `peak_interval`, separated by idle gaps sized so the
    /// long-run average matches the nominal rate.
    Bursty {
        /// Packets per burst (≥ 1).
        burst_len: u32,
        /// Interval between packets inside a burst, in cycles.
        peak_interval_cycles: u64,
    },
}

/// A deterministic arrival-time generator for a nominal packet rate.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    process: ArrivalProcess,
    mean_interval: Cycles,
    rng: Rng,
    burst_pos: u32,
}

impl TrafficGen {
    /// Creates a generator emitting `rate_pps` packets per second on average
    /// at CPU frequency `freq`, using `seed` for the jitter stream.
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` is not positive.
    pub fn new(process: ArrivalProcess, rate_pps: f64, freq: Freq, seed: u64) -> Self {
        assert!(rate_pps > 0.0, "rate must be positive");
        TrafficGen {
            process,
            mean_interval: freq.interval_for_rate(rate_pps),
            rng: Rng::seed_from(seed),
            burst_pos: 0,
        }
    }

    /// The paper's default shape: CBR with ±20% jitter.
    pub fn paper_default(rate_pps: f64, freq: Freq, seed: u64) -> Self {
        TrafficGen::new(ArrivalProcess::Cbr { jitter: 0.2 }, rate_pps, freq, seed)
    }

    /// Returns the delay from the previous packet to the next one.
    pub fn next_interval(&mut self) -> Cycles {
        let mean = self.mean_interval.raw() as f64;
        match self.process {
            ArrivalProcess::Cbr { jitter } => {
                let j = jitter.clamp(0.0, 0.999);
                let factor = 1.0 + j * (2.0 * self.rng.next_f64() - 1.0);
                Cycles::new((mean * factor).round().max(1.0) as u64)
            }
            ArrivalProcess::Poisson => {
                Cycles::new(self.rng.exponential(mean).round().max(1.0) as u64)
            }
            ArrivalProcess::Bursty {
                burst_len,
                peak_interval_cycles,
            } => {
                let burst_len = burst_len.max(1);
                self.burst_pos = (self.burst_pos + 1) % burst_len;
                if self.burst_pos == 0 {
                    // Gap sized so the burst-average equals the nominal rate:
                    // burst_len packets take (burst_len-1)*peak + gap cycles.
                    let burst_span = mean * burst_len as f64;
                    let in_burst = peak_interval_cycles as f64 * (burst_len - 1) as f64;
                    Cycles::new((burst_span - in_burst).round().max(1.0) as u64)
                } else {
                    Cycles::new(peak_interval_cycles.max(1))
                }
            }
        }
    }

    /// Generates absolute arrival times for `n` packets starting at `start`.
    pub fn arrival_times(&mut self, start: Cycles, n: usize) -> Vec<Cycles> {
        let mut out = Vec::with_capacity(n);
        let mut t = start;
        for _ in 0..n {
            t += self.next_interval();
            out.push(t);
        }
        out
    }
}

/// Replays a fixed schedule of absolute arrival times.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    times: Vec<Cycles>,
    pos: usize,
}

impl TraceReplay {
    /// Creates a replayer over non-decreasing arrival times.
    ///
    /// # Panics
    ///
    /// Panics if the times are not sorted.
    pub fn new(times: Vec<Cycles>) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace must be sorted"
        );
        TraceReplay { times, pos: 0 }
    }

    /// Returns the next arrival time, if any.
    pub fn next_arrival(&mut self) -> Option<Cycles> {
        let t = self.times.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Returns how many arrivals remain.
    pub fn remaining(&self) -> usize {
        self.times.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const FREQ: Freq = Freq::mhz(100);

    #[test]
    fn factory_builds_min_frames_with_sequential_ids() {
        let mut f = PacketFactory::paper_testbed();
        let a = f.next_packet();
        let b = f.next_packet();
        assert_eq!(a.id, PacketId(0));
        assert_eq!(b.id, PacketId(1));
        assert_eq!(a.len(), crate::packet::MIN_FRAME_LEN);
        assert_eq!(f.built(), 2);
        let ip = a.ipv4().unwrap();
        assert_eq!(ip.dst, Ipv4Addr::new(10, 1, 0, 99));
    }

    #[test]
    fn cbr_mean_rate_is_close() {
        let mut g = TrafficGen::paper_default(10_000.0, FREQ, 42);
        let n = 50_000;
        let times = g.arrival_times(Cycles::ZERO, n);
        let span = FREQ.secs_from_cycles(*times.last().unwrap());
        let rate = n as f64 / span;
        assert!((rate - 10_000.0).abs() < 200.0, "rate = {rate}");
    }

    #[test]
    fn zero_jitter_is_perfectly_paced() {
        let mut g = TrafficGen::new(ArrivalProcess::Cbr { jitter: 0.0 }, 1000.0, FREQ, 1);
        let i1 = g.next_interval();
        let i2 = g.next_interval();
        assert_eq!(i1, i2);
        assert_eq!(i1, Cycles::new(100_000));
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let mut g = TrafficGen::new(ArrivalProcess::Poisson, 5_000.0, FREQ, 7);
        let n = 50_000;
        let times = g.arrival_times(Cycles::ZERO, n);
        let span = FREQ.secs_from_cycles(*times.last().unwrap());
        let rate = n as f64 / span;
        assert!((rate - 5_000.0).abs() < 150.0, "rate = {rate}");
    }

    #[test]
    fn bursty_average_matches_nominal() {
        let peak = 6_720; // Wire-limited at 10 Mb/s, 100 MHz.
        let mut g = TrafficGen::new(
            ArrivalProcess::Bursty {
                burst_len: 10,
                peak_interval_cycles: peak,
            },
            2_000.0,
            FREQ,
            3,
        );
        let n = 10_000;
        let times = g.arrival_times(Cycles::ZERO, n);
        let span = FREQ.secs_from_cycles(*times.last().unwrap());
        let rate = n as f64 / span;
        assert!((rate - 2_000.0).abs() < 100.0, "rate = {rate}");
        // Inside a burst the spacing equals the peak interval.
        let deltas: Vec<u64> = times.windows(2).map(|w| (w[1] - w[0]).raw()).collect();
        assert!(deltas.iter().filter(|&&d| d == peak).count() > n * 8 / 10);
    }

    #[test]
    fn determinism_across_instances() {
        let a = TrafficGen::paper_default(4_000.0, FREQ, 99).arrival_times(Cycles::ZERO, 100);
        let b = TrafficGen::paper_default(4_000.0, FREQ, 99).arrival_times(Cycles::ZERO, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_replay() {
        let mut tr = TraceReplay::new(vec![Cycles::new(1), Cycles::new(5), Cycles::new(5)]);
        assert_eq!(tr.remaining(), 3);
        assert_eq!(tr.next_arrival(), Some(Cycles::new(1)));
        assert_eq!(tr.next_arrival(), Some(Cycles::new(5)));
        assert_eq!(tr.next_arrival(), Some(Cycles::new(5)));
        assert_eq!(tr.next_arrival(), None);
        assert_eq!(tr.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn trace_must_be_sorted() {
        let _ = TraceReplay::new(vec![Cycles::new(5), Cycles::new(1)]);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn intervals_are_always_positive(rate in 1.0f64..100_000.0, seed in any::<u64>()) {
            let mut g = TrafficGen::paper_default(rate, FREQ, seed);
            for _ in 0..100 {
                prop_assert!(g.next_interval() >= Cycles::new(1));
            }
            let mut p = TrafficGen::new(ArrivalProcess::Poisson, rate, FREQ, seed);
            for _ in 0..100 {
                prop_assert!(p.next_interval() >= Cycles::new(1));
            }
        }

        #[test]
        fn arrival_times_monotone(rate in 10.0f64..50_000.0, seed in any::<u64>()) {
            let mut g = TrafficGen::paper_default(rate, FREQ, seed);
            let times = g.arrival_times(Cycles::new(1000), 200);
            prop_assert!(times.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(times[0] > Cycles::new(1000));
        }
    }
}
