//! Pooled frame buffers: a freelist slab that recycles packet memory.
//!
//! Every packet in the simulation owns a frame buffer. Allocating a fresh
//! `Vec<u8>` per packet puts a malloc/free pair on the per-packet path —
//! exactly the overhead the paper's mbuf clusters avoid in real BSD. A
//! [`FramePool`] removes it: buffers are drawn from a freelist and return
//! to it automatically when their [`FrameBuf`] is dropped, so steady-state
//! forwarding performs **zero heap allocations per packet** once the pool
//! has warmed up.
//!
//! The pool is a single-threaded `Rc<RefCell<..>>` handle by design: each
//! simulated trial is one deterministic single-threaded event loop, and
//! pools never cross threads (the parallel trial executor builds one pool
//! per worker-local engine). Buffers taken from a pool are zero-filled, so
//! recycling can never leak one packet's bytes into the next.
//!
//! Unpooled operation still works everywhere: `FrameBuf::from(vec)` wraps
//! a plain heap vector with identical behaviour minus the recycling, which
//! keeps every pre-pool call site and test valid.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use crate::packet::MAX_FRAME_LEN;

/// Counters describing a pool's lifetime behaviour and current occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers ever created by this pool (preallocation + misses).
    pub allocated: u64,
    /// Total [`FramePool::take`] calls.
    pub acquired: u64,
    /// Buffers returned to the freelist by [`FrameBuf`] drops.
    pub recycled: u64,
    /// Takes that found the freelist empty and had to heap-allocate.
    pub misses: u64,
    /// Buffers currently checked out.
    pub outstanding: usize,
    /// Maximum simultaneous checked-out buffers ever observed.
    pub high_water: usize,
    /// Buffers currently sitting in the freelist.
    pub free: usize,
}

struct PoolInner {
    free: Vec<Vec<u8>>,
    buf_capacity: usize,
    stats: PoolStats,
}

/// A cloneable handle to a freelist slab of frame buffers.
///
/// Cloning the handle shares the underlying pool (it is an `Rc`).
#[derive(Clone)]
pub struct FramePool {
    inner: Rc<RefCell<PoolInner>>,
}

impl FramePool {
    /// Creates a pool whose buffers reserve `buf_capacity` bytes each,
    /// preallocating `prealloc` of them up front.
    pub fn new(buf_capacity: usize, prealloc: usize) -> Self {
        let mut free = Vec::with_capacity(prealloc);
        for _ in 0..prealloc {
            free.push(Vec::with_capacity(buf_capacity));
        }
        let stats = PoolStats {
            allocated: prealloc as u64,
            ..PoolStats::default()
        };
        FramePool {
            inner: Rc::new(RefCell::new(PoolInner {
                free,
                buf_capacity,
                stats,
            })),
        }
    }

    /// A pool of full-size Ethernet frame buffers ([`MAX_FRAME_LEN`] bytes).
    pub fn for_frames(prealloc: usize) -> Self {
        FramePool::new(MAX_FRAME_LEN, prealloc)
    }

    /// Takes a zero-filled buffer of `len` bytes from the pool.
    ///
    /// Pops the freelist when possible; otherwise heap-allocates (counted
    /// as a miss) so the pool degrades gracefully under underestimation
    /// rather than failing.
    pub fn take(&self, len: usize) -> FrameBuf {
        let mut inner = self.inner.borrow_mut();
        let mut buf = match inner.free.pop() {
            Some(buf) => buf,
            None => {
                inner.stats.misses += 1;
                inner.stats.allocated += 1;
                Vec::with_capacity(inner.buf_capacity.max(len))
            }
        };
        buf.clear();
        buf.resize(len, 0);
        inner.stats.acquired += 1;
        inner.stats.outstanding += 1;
        inner.stats.high_water = inner.stats.high_water.max(inner.stats.outstanding);
        FrameBuf {
            buf,
            pool: Some(Rc::clone(&self.inner)),
        }
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.borrow();
        PoolStats {
            free: inner.free.len(),
            ..inner.stats
        }
    }

    /// Buffers currently checked out.
    pub fn outstanding(&self) -> usize {
        self.inner.borrow().stats.outstanding
    }

    /// Buffers currently available without allocating.
    pub fn free_buffers(&self) -> usize {
        self.inner.borrow().free.len()
    }
}

impl fmt::Debug for FramePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FramePool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// An owned frame buffer, either pooled (returns to its [`FramePool`] on
/// drop) or a plain heap vector (`FrameBuf::from(vec)`).
///
/// Dereferences to `[u8]`, so all slicing and header codec call sites work
/// unchanged.
pub struct FrameBuf {
    buf: Vec<u8>,
    pool: Option<Rc<RefCell<PoolInner>>>,
}

impl FrameBuf {
    /// Grows or shrinks the logical frame length, zero-filling new bytes.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Whether this buffer recycles into a pool when dropped.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// Copies the frame bytes into a standalone vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Drop for FrameBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let mut inner = pool.borrow_mut();
            inner.free.push(std::mem::take(&mut self.buf));
            inner.stats.recycled += 1;
            inner.stats.outstanding -= 1;
        }
    }
}

impl Clone for FrameBuf {
    /// Clones draw from the same pool when the original is pooled, so
    /// copies recycle too.
    fn clone(&self) -> Self {
        match &self.pool {
            Some(pool) => {
                let handle = FramePool {
                    inner: Rc::clone(pool),
                };
                let mut out = handle.take(self.buf.len());
                out.buf.copy_from_slice(&self.buf);
                out
            }
            None => FrameBuf {
                buf: self.buf.clone(),
                pool: None,
            },
        }
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(buf: Vec<u8>) -> Self {
        FrameBuf { buf, pool: None }
    }
}

impl Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for FrameBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameBuf")
            .field("len", &self.buf.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl Eq for FrameBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_on_drop() {
        let pool = FramePool::new(64, 2);
        assert_eq!(pool.free_buffers(), 2);
        {
            let a = pool.take(60);
            let b = pool.take(60);
            assert_eq!(a.len(), 60);
            assert_eq!(b.len(), 60);
            assert_eq!(pool.free_buffers(), 0);
            assert_eq!(pool.outstanding(), 2);
        }
        assert_eq!(pool.free_buffers(), 2);
        assert_eq!(pool.outstanding(), 0);
        let s = pool.stats();
        assert_eq!(s.acquired, 2);
        assert_eq!(s.recycled, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(s.allocated, 2);
        assert_eq!(s.high_water, 2);
    }

    #[test]
    fn exhaustion_allocates_and_counts_misses() {
        let pool = FramePool::new(64, 1);
        let a = pool.take(10);
        let b = pool.take(10); // Freelist empty: must heap-allocate.
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().allocated, 2);
        drop(a);
        drop(b);
        // Both buffers join the freelist; the pool has grown to demand.
        assert_eq!(pool.free_buffers(), 2);
        let c = pool.take(10);
        drop(c);
        assert_eq!(pool.stats().misses, 1, "no further miss after warm-up");
    }

    #[test]
    fn reuse_clears_stale_bytes() {
        let pool = FramePool::new(64, 1);
        {
            let mut a = pool.take(32);
            a.iter_mut().for_each(|b| *b = 0xAB);
        }
        let b = pool.take(48);
        assert_eq!(b.len(), 48);
        assert!(
            b.iter().all(|&x| x == 0),
            "recycled buffer must be zero-filled"
        );
    }

    #[test]
    fn steady_state_take_does_not_allocate() {
        let pool = FramePool::new(64, 4);
        for _ in 0..1000 {
            let x = pool.take(60);
            drop(x);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 0);
        assert_eq!(s.allocated, 4);
        assert_eq!(s.acquired, 1000);
        assert_eq!(s.recycled, 1000);
        assert_eq!(s.high_water, 1);
    }

    #[test]
    fn clone_of_pooled_buffer_is_pooled() {
        let pool = FramePool::new(64, 2);
        let a = pool.take(16);
        let b = a.clone();
        assert!(b.is_pooled());
        assert_eq!(&a[..], &b[..]);
        assert_eq!(pool.outstanding(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn unpooled_from_vec_behaves_like_vec() {
        let mut f = FrameBuf::from(vec![1u8, 2, 3]);
        assert!(!f.is_pooled());
        f.resize(5, 0);
        assert_eq!(&f[..], &[1, 2, 3, 0, 0]);
        let g = f.clone();
        assert!(!g.is_pooled());
        assert_eq!(f, g);
    }

    #[test]
    fn oversized_take_still_works() {
        let pool = FramePool::new(8, 1);
        let a = pool.take(100);
        assert_eq!(a.len(), 100);
        drop(a);
        // The grown buffer rejoins the freelist with its larger capacity.
        let b = pool.take(100);
        assert_eq!(pool.stats().misses, 0);
        assert_eq!(b.len(), 100);
    }
}
