//! ICMP messages the router substrate needs: echo, time exceeded,
//! destination unreachable.
//!
//! The paper's router silently drops TTL-expired and unroutable packets
//! during overload experiments, but a credible router substrate must be able
//! to originate the corresponding ICMP errors; the kernel crate uses these
//! when ICMP generation is enabled.

use crate::checksum::{checksum, verify};
use crate::NetError;

/// Minimum length of an ICMP message (header only).
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message kinds supported by the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Destination unreachable (type 3) with the given code.
    DestUnreachable {
        /// Unreachable code (0 = net, 1 = host, 3 = port, ...).
        code: u8,
    },
    /// Echo request (type 8).
    EchoRequest {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Time exceeded (type 11, code 0 = TTL expired in transit).
    TimeExceeded,
}

impl IcmpKind {
    /// Returns the on-wire (type, code) pair.
    pub fn type_code(self) -> (u8, u8) {
        match self {
            IcmpKind::EchoReply { .. } => (0, 0),
            IcmpKind::DestUnreachable { code } => (3, code),
            IcmpKind::EchoRequest { .. } => (8, 0),
            IcmpKind::TimeExceeded => (11, 0),
        }
    }
}

/// A decoded ICMP message: kind plus the trailing payload bytes
/// (for errors: the offending IP header + 8 bytes, per RFC 792).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IcmpMessage {
    /// What kind of message this is.
    pub kind: IcmpKind,
    /// Payload following the 8-byte ICMP header.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Builds an echo request.
    pub fn echo_request(ident: u16, seq: u16, payload: &[u8]) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoRequest { ident, seq },
            payload: payload.to_vec(),
        }
    }

    /// Builds the echo reply matching a request.
    pub fn reply_to(request: &IcmpMessage) -> Option<Self> {
        match request.kind {
            IcmpKind::EchoRequest { ident, seq } => Some(IcmpMessage {
                kind: IcmpKind::EchoReply { ident, seq },
                payload: request.payload.clone(),
            }),
            _ => None,
        }
    }

    /// Builds a time-exceeded error quoting the offending datagram.
    ///
    /// `original` should be the offending IP header plus at least the first
    /// 8 payload bytes; it is truncated to the RFC-recommended quote length.
    pub fn time_exceeded(original: &[u8]) -> Self {
        IcmpMessage {
            kind: IcmpKind::TimeExceeded,
            payload: original[..original.len().min(28)].to_vec(),
        }
    }

    /// Builds a destination-unreachable error quoting the offending datagram.
    pub fn dest_unreachable(code: u8, original: &[u8]) -> Self {
        IcmpMessage {
            kind: IcmpKind::DestUnreachable { code },
            payload: original[..original.len().min(28)].to_vec(),
        }
    }

    /// Returns the encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        ICMP_HEADER_LEN + self.payload.len()
    }

    /// Encodes the message (with checksum) into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is too small.
    pub fn encode(&self, buf: &mut [u8]) -> Result<usize, NetError> {
        let len = self.encoded_len();
        if buf.len() < len {
            return Err(NetError::Truncated);
        }
        let (ty, code) = self.kind.type_code();
        buf[0] = ty;
        buf[1] = code;
        buf[2] = 0;
        buf[3] = 0;
        let rest = match self.kind {
            IcmpKind::EchoRequest { ident, seq } | IcmpKind::EchoReply { ident, seq } => {
                buf[4..6].copy_from_slice(&ident.to_be_bytes());
                buf[6..8].copy_from_slice(&seq.to_be_bytes());
                ICMP_HEADER_LEN
            }
            IcmpKind::DestUnreachable { .. } | IcmpKind::TimeExceeded => {
                buf[4..8].fill(0);
                ICMP_HEADER_LEN
            }
        };
        buf[rest..len].copy_from_slice(&self.payload);
        let c = checksum(&buf[..len]);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        Ok(len)
    }

    /// Parses and checksum-verifies a message.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] for short buffers, [`NetError::BadChecksum`]
    /// on checksum failure, [`NetError::Malformed`] for unknown types.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < ICMP_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        if !verify(buf) {
            return Err(NetError::BadChecksum);
        }
        let ident = u16::from_be_bytes([buf[4], buf[5]]);
        let seq = u16::from_be_bytes([buf[6], buf[7]]);
        let kind = match (buf[0], buf[1]) {
            (0, 0) => IcmpKind::EchoReply { ident, seq },
            (3, code) => IcmpKind::DestUnreachable { code },
            (8, 0) => IcmpKind::EchoRequest { ident, seq },
            (11, 0) => IcmpKind::TimeExceeded,
            _ => return Err(NetError::Malformed),
        };
        Ok(IcmpMessage {
            kind,
            payload: buf[ICMP_HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn echo_round_trip() {
        let m = IcmpMessage::echo_request(0x1234, 7, b"hello");
        let mut buf = vec![0u8; m.encoded_len()];
        let n = m.encode(&mut buf).unwrap();
        assert_eq!(n, 13);
        assert_eq!(IcmpMessage::parse(&buf).unwrap(), m);
    }

    #[test]
    fn reply_matches_request() {
        let req = IcmpMessage::echo_request(9, 3, b"abc");
        let rep = IcmpMessage::reply_to(&req).unwrap();
        assert_eq!(rep.kind, IcmpKind::EchoReply { ident: 9, seq: 3 });
        assert_eq!(rep.payload, b"abc");
        assert!(
            IcmpMessage::reply_to(&rep).is_none(),
            "replies are terminal"
        );
    }

    #[test]
    fn time_exceeded_quotes_original() {
        let original = vec![0xaa; 64];
        let m = IcmpMessage::time_exceeded(&original);
        assert_eq!(m.payload.len(), 28, "IP header + 8 bytes");
        let mut buf = vec![0u8; m.encoded_len()];
        m.encode(&mut buf).unwrap();
        assert_eq!(IcmpMessage::parse(&buf).unwrap(), m);
    }

    #[test]
    fn dest_unreachable_codes() {
        let m = IcmpMessage::dest_unreachable(3, &[1, 2, 3]);
        assert_eq!(m.kind.type_code(), (3, 3));
        let mut buf = vec![0u8; m.encoded_len()];
        m.encode(&mut buf).unwrap();
        assert_eq!(IcmpMessage::parse(&buf).unwrap().kind, m.kind);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let m = IcmpMessage::echo_request(1, 1, b"x");
        let mut buf = vec![0u8; m.encoded_len()];
        m.encode(&mut buf).unwrap();
        buf[8] ^= 0xff;
        assert_eq!(IcmpMessage::parse(&buf), Err(NetError::BadChecksum));
    }

    #[test]
    fn truncated_and_unknown() {
        assert_eq!(IcmpMessage::parse(&[0u8; 4]), Err(NetError::Truncated));
        let m = IcmpMessage::echo_request(1, 1, b"");
        let mut buf = vec![0u8; m.encoded_len()];
        m.encode(&mut buf).unwrap();
        buf[0] = 42; // Unknown type; fix checksum so we hit the type check.
        buf[2] = 0;
        buf[3] = 0;
        let c = checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(IcmpMessage::parse(&buf), Err(NetError::Malformed));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn round_trip_any_echo(ident in any::<u16>(), seq in any::<u16>(),
                               payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let m = IcmpMessage::echo_request(ident, seq, &payload);
            let mut buf = vec![0u8; m.encoded_len()];
            m.encode(&mut buf).unwrap();
            prop_assert_eq!(IcmpMessage::parse(&buf).unwrap(), m);
        }
    }
}
