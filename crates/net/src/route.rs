//! A longest-prefix-match IPv4 routing table (binary trie).
//!
//! The router-under-test needs a real route lookup on every forwarded
//! packet. This is a path-compressed-free, straightforward binary trie —
//! the structure BSD `radix.c` approximates — with longest-prefix-match
//! semantics, default routes, and deletion.

use std::net::Ipv4Addr;

/// The interface index type used throughout the simulation.
pub type IfaceId = usize;

/// What a route resolves to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NextHop {
    /// The output interface.
    pub iface: IfaceId,
    /// The IP of the next gateway, or `None` when the destination is
    /// directly attached (deliver to the destination's own MAC).
    pub gateway: Option<Ipv4Addr>,
}

#[derive(Clone, Debug, Default)]
struct Node {
    children: [Option<Box<Node>>; 2],
    entry: Option<NextHop>,
}

/// An IPv4 longest-prefix-match routing table.
///
/// # Examples
///
/// ```
/// use livelock_net::route::{NextHop, RouteTable};
/// use std::net::Ipv4Addr;
///
/// let mut rt = RouteTable::new();
/// rt.insert(Ipv4Addr::new(10, 1, 0, 0), 16, NextHop { iface: 1, gateway: None });
/// rt.insert(Ipv4Addr::new(0, 0, 0, 0), 0, NextHop { iface: 0, gateway: Some(Ipv4Addr::new(10, 0, 0, 254)) });
/// let hop = rt.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
/// assert_eq!(hop.iface, 1);
/// let hop = rt.lookup(Ipv4Addr::new(192, 168, 0, 1)).unwrap();
/// assert_eq!(hop.iface, 0, "falls back to the default route");
/// ```
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    root: Node,
    len: usize,
}

fn bit(addr: u32, depth: u8) -> usize {
    ((addr >> (31 - depth)) & 1) as usize
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Inserts (or replaces) a route for `prefix/len`.
    ///
    /// Host bits beyond the prefix length are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn insert(&mut self, prefix: Ipv4Addr, len: u8, hop: NextHop) {
        assert!(len <= 32, "prefix length out of range");
        let addr = u32::from(prefix);
        let mut node = &mut self.root;
        for depth in 0..len {
            let b = bit(addr, depth);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        if node.entry.replace(hop).is_none() {
            self.len += 1;
        }
    }

    /// Removes the route for exactly `prefix/len`; returns the old next hop.
    pub fn remove(&mut self, prefix: Ipv4Addr, len: u8) -> Option<NextHop> {
        if len > 32 {
            return None;
        }
        let addr = u32::from(prefix);
        let mut node = &mut self.root;
        for depth in 0..len {
            let b = bit(addr, depth);
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.entry.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Looks up the longest-prefix-match next hop for `dst`.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<NextHop> {
        let addr = u32::from(dst);
        let mut node = &self.root;
        let mut best = node.entry;
        for depth in 0..32 {
            let b = bit(addr, depth);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if node.entry.is_some() {
                        best = node.entry;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Returns the number of installed routes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn hop(iface: IfaceId) -> NextHop {
        NextHop {
            iface,
            gateway: None,
        }
    }

    #[test]
    fn empty_table_matches_nothing() {
        let rt = RouteTable::new();
        assert_eq!(rt.lookup(Ipv4Addr::new(1, 2, 3, 4)), None);
        assert!(rt.is_empty());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 8, hop(1));
        rt.insert(Ipv4Addr::new(10, 1, 0, 0), 16, hop(2));
        rt.insert(Ipv4Addr::new(10, 1, 2, 0), 24, hop(3));
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 9, 9, 9)).unwrap().iface, 1);
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 1, 9, 9)).unwrap().iface, 2);
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 1, 2, 9)).unwrap().iface, 3);
        assert_eq!(rt.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
        assert_eq!(rt.len(), 3);
    }

    #[test]
    fn default_route() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::UNSPECIFIED, 0, hop(0));
        assert_eq!(
            rt.lookup(Ipv4Addr::new(255, 255, 255, 255)).unwrap().iface,
            0
        );
        assert_eq!(rt.lookup(Ipv4Addr::new(0, 0, 0, 0)).unwrap().iface, 0);
    }

    #[test]
    fn host_route_is_most_specific() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 8, hop(1));
        rt.insert(Ipv4Addr::new(10, 0, 0, 5), 32, hop(7));
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 0, 0, 5)).unwrap().iface, 7);
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 0, 0, 6)).unwrap().iface, 1);
    }

    #[test]
    fn host_bits_ignored_on_insert() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 1, 2, 3), 16, hop(4));
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 1, 200, 200)).unwrap().iface, 4);
    }

    #[test]
    fn replace_and_remove() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 8, hop(1));
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 8, hop(2));
        assert_eq!(rt.len(), 1, "replace does not grow the table");
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 0, 0, 1)).unwrap().iface, 2);
        assert_eq!(rt.remove(Ipv4Addr::new(10, 0, 0, 0), 8), Some(hop(2)));
        assert_eq!(rt.remove(Ipv4Addr::new(10, 0, 0, 0), 8), None);
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 0, 0, 1)), None);
        assert!(rt.is_empty());
    }

    #[test]
    fn remove_keeps_covering_route() {
        let mut rt = RouteTable::new();
        rt.insert(Ipv4Addr::new(10, 0, 0, 0), 8, hop(1));
        rt.insert(Ipv4Addr::new(10, 1, 0, 0), 16, hop(2));
        rt.remove(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert_eq!(rt.lookup(Ipv4Addr::new(10, 1, 5, 5)).unwrap().iface, 1);
    }

    #[test]
    fn gateway_is_preserved() {
        let mut rt = RouteTable::new();
        let gw = Ipv4Addr::new(10, 0, 0, 254);
        rt.insert(
            Ipv4Addr::new(172, 16, 0, 0),
            12,
            NextHop {
                iface: 3,
                gateway: Some(gw),
            },
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(172, 17, 0, 1)).unwrap().gateway,
            Some(gw)
        );
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn trie_agrees_with_linear_scan(
            routes in proptest::collection::vec((any::<u32>(), 0u8..=32, 0usize..4), 1..40),
            probes in proptest::collection::vec(any::<u32>(), 1..50),
        ) {
            let mut rt = RouteTable::new();
            // Linear-scan reference model: (masked prefix, len, iface),
            // later inserts replace earlier ones with identical prefix/len.
            let mut model: Vec<(u32, u8, usize)> = Vec::new();
            for &(p, len, iface) in &routes {
                let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
                let masked = p & mask;
                rt.insert(Ipv4Addr::from(p), len, hop(iface));
                model.retain(|&(mp, ml, _)| !(mp == masked && ml == len));
                model.push((masked, len, iface));
            }
            for &probe in &probes {
                let expect = model
                    .iter()
                    .filter(|&&(mp, ml, _)| {
                        let mask = if ml == 0 { 0 } else { u32::MAX << (32 - ml) };
                        probe & mask == mp
                    })
                    .max_by_key(|&&(_, ml, _)| ml)
                    .map(|&(_, _, iface)| iface);
                let got = rt.lookup(Ipv4Addr::from(probe)).map(|h| h.iface);
                prop_assert_eq!(got, expect);
            }
        }
    }
}
