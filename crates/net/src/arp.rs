//! ARP packets and the router's ARP cache.
//!
//! The paper's measurement setup sent packets to a *nonexistent* destination
//! host, fooling the router with a "phantom" entry inserted into its ARP
//! table. [`ArpCache::insert_phantom`] reproduces that trick; entries also
//! support ordinary dynamic insertion with aging.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use livelock_sim::Cycles;

use crate::ethernet::MacAddr;
use crate::NetError;

/// Length in bytes of an Ethernet/IPv4 ARP packet.
pub const ARP_PACKET_LEN: usize = 28;

/// ARP operation codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

impl ArpOp {
    fn as_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_u16(v: u16) -> Result<Self, NetError> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            _ => Err(NetError::Malformed),
        }
    }
}

/// A decoded Ethernet/IPv4 ARP packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Parses an ARP packet.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] for short buffers; [`NetError::Malformed`]
    /// for non-Ethernet/IPv4 hardware/protocol types or unknown opcodes.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < ARP_PACKET_LEN {
            return Err(NetError::Truncated);
        }
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(NetError::Malformed);
        }
        let op = ArpOp::from_u16(u16::from_be_bytes([buf[6], buf[7]]))?;
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&buf[8..14]);
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&buf[18..24]);
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr(sender_mac),
            sender_ip: Ipv4Addr::new(buf[14], buf[15], buf[16], buf[17]),
            target_mac: MacAddr(target_mac),
            target_ip: Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]),
        })
    }

    /// Encodes the packet into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is shorter than 28 bytes.
    pub fn encode(&self, buf: &mut [u8]) -> Result<(), NetError> {
        if buf.len() < ARP_PACKET_LEN {
            return Err(NetError::Truncated);
        }
        buf[0..2].copy_from_slice(&1u16.to_be_bytes());
        buf[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
        buf[4] = 6;
        buf[5] = 4;
        buf[6..8].copy_from_slice(&self.op.as_u16().to_be_bytes());
        buf[8..14].copy_from_slice(&self.sender_mac.octets());
        buf[14..18].copy_from_slice(&self.sender_ip.octets());
        buf[18..24].copy_from_slice(&self.target_mac.octets());
        buf[24..28].copy_from_slice(&self.target_ip.octets());
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    mac: MacAddr,
    expires: Cycles,
    phantom: bool,
}

/// An ARP cache mapping IPv4 next hops to MAC addresses.
///
/// # Examples
///
/// ```
/// use livelock_net::arp::ArpCache;
/// use livelock_net::ethernet::MacAddr;
/// use std::net::Ipv4Addr;
///
/// let mut cache = ArpCache::new();
/// let dst = Ipv4Addr::new(10, 1, 0, 2);
/// // The paper's trick: a phantom entry for a nonexistent destination.
/// cache.insert_phantom(dst, MacAddr::local(99));
/// assert_eq!(cache.lookup(dst, livelock_sim::Cycles::MAX), Some(MacAddr::local(99)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ArpCache {
    entries: BTreeMap<Ipv4Addr, Entry>,
}

impl ArpCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ArpCache {
            entries: BTreeMap::new(),
        }
    }

    /// Inserts a dynamic entry that expires at `expires`.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr, expires: Cycles) {
        self.entries.insert(
            ip,
            Entry {
                mac,
                expires,
                phantom: false,
            },
        );
    }

    /// Inserts a permanent "phantom" entry, as the paper's measurement setup
    /// did for its nonexistent destination host.
    pub fn insert_phantom(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(
            ip,
            Entry {
                mac,
                expires: Cycles::MAX,
                phantom: true,
            },
        );
    }

    /// Looks up the MAC for `ip`, honouring expiry at time `now`.
    pub fn lookup(&self, ip: Ipv4Addr, now: Cycles) -> Option<MacAddr> {
        self.entries
            .get(&ip)
            .filter(|e| e.phantom || e.expires > now)
            .map(|e| e.mac)
    }

    /// Removes entries that expired at or before `now`; returns how many.
    pub fn expire(&mut self, now: Cycles) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.phantom || e.expires > now);
        before - self.entries.len()
    }

    /// Returns the number of live entries (without expiring).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: MacAddr::local(1),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn packet_round_trip() {
        let p = pkt();
        let mut buf = [0u8; ARP_PACKET_LEN];
        p.encode(&mut buf).unwrap();
        assert_eq!(ArpPacket::parse(&buf).unwrap(), p);
    }

    #[test]
    fn reply_round_trip() {
        let mut p = pkt();
        p.op = ArpOp::Reply;
        p.target_mac = MacAddr::local(2);
        let mut buf = [0u8; ARP_PACKET_LEN];
        p.encode(&mut buf).unwrap();
        assert_eq!(ArpPacket::parse(&buf).unwrap(), p);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(ArpPacket::parse(&[0u8; 27]), Err(NetError::Truncated));
        let mut buf = [0u8; ARP_PACKET_LEN];
        pkt().encode(&mut buf).unwrap();
        let mut bad = buf;
        bad[0] = 9; // Unknown hardware type.
        assert_eq!(ArpPacket::parse(&bad), Err(NetError::Malformed));
        let mut bad = buf;
        bad[7] = 9; // Unknown opcode.
        assert_eq!(ArpPacket::parse(&bad), Err(NetError::Malformed));
        assert_eq!(pkt().encode(&mut [0u8; 10]), Err(NetError::Truncated));
    }

    #[test]
    fn cache_dynamic_expiry() {
        let mut c = ArpCache::new();
        let ip = Ipv4Addr::new(10, 0, 0, 7);
        c.insert(ip, MacAddr::local(7), Cycles::new(100));
        assert_eq!(c.lookup(ip, Cycles::new(99)), Some(MacAddr::local(7)));
        assert_eq!(c.lookup(ip, Cycles::new(100)), None, "expired at expiry");
        assert_eq!(c.expire(Cycles::new(100)), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn phantom_never_expires() {
        let mut c = ArpCache::new();
        let ip = Ipv4Addr::new(10, 1, 0, 2);
        c.insert_phantom(ip, MacAddr::local(99));
        assert_eq!(c.expire(Cycles::MAX), 0);
        assert_eq!(c.lookup(ip, Cycles::MAX), Some(MacAddr::local(99)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_overwrites() {
        let mut c = ArpCache::new();
        let ip = Ipv4Addr::new(10, 0, 0, 8);
        c.insert(ip, MacAddr::local(1), Cycles::new(10));
        c.insert(ip, MacAddr::local(2), Cycles::new(20));
        assert_eq!(c.lookup(ip, Cycles::new(15)), Some(MacAddr::local(2)));
        assert_eq!(c.len(), 1);
    }
}
