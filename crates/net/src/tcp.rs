//! TCP header encode/decode with pseudo-header checksum.
//!
//! The paper's §7.1 discusses the effect of the modified kernel on
//! end-system transport protocols (TCP, and Van Jacobson's
//! driver-to-transport direct dispatch). The simulation's traffic is UDP,
//! as in the paper's trials, but the substrate carries TCP segments too:
//! the screening filter matches TCP ports and the end-system path can
//! deliver them, so the codec lives here with full checksum support.

use std::net::Ipv4Addr;

use crate::checksum::{fold, sum_words};
use crate::ipv4::proto;
use crate::NetError;

/// Length in bytes of an option-less TCP header.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits, as in the wire's 13th byte (low 6 bits).
pub mod flags {
    /// No more data from sender.
    pub const FIN: u8 = 0x01;
    /// Synchronize sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Push function.
    pub const PSH: u8 = 0x08;
    /// Acknowledgment field significant.
    pub const ACK: u8 = 0x10;
    /// Urgent pointer field significant.
    pub const URG: u8 = 0x20;
}

/// A decoded TCP header (options are preserved as a data-offset count but
/// not interpreted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Header length in 32-bit words (5 when option-less).
    pub data_offset: u8,
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Checksum as stored on the wire.
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
}

impl TcpHeader {
    /// Builds an option-less header with a zero checksum (fill it with
    /// [`fill_checksum`] after encoding the full segment).
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: u8, window: u16) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            data_offset: 5,
            flags,
            window,
            checksum: 0,
            urgent: 0,
        }
    }

    /// Parses a header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// [`NetError::Truncated`] for short buffers; [`NetError::Malformed`]
    /// when the data offset is below the minimum or runs past the buffer.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        let data_offset = buf[12] >> 4;
        if data_offset < 5 {
            return Err(NetError::Malformed);
        }
        if buf.len() < data_offset as usize * 4 {
            return Err(NetError::Truncated);
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            data_offset,
            flags: buf[13] & 0x3f,
            window: u16::from_be_bytes([buf[14], buf[15]]),
            checksum: u16::from_be_bytes([buf[16], buf[17]]),
            urgent: u16::from_be_bytes([buf[18], buf[19]]),
        })
    }

    /// Encodes the header into the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is shorter than 20 bytes.
    pub fn encode(&self, buf: &mut [u8]) -> Result<(), NetError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = self.data_offset << 4;
        buf[13] = self.flags & 0x3f;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        buf[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        Ok(())
    }

    /// Returns `true` if the given flag bits are all set.
    pub fn has_flags(&self, mask: u8) -> bool {
        self.flags & mask == mask
    }
}

fn pseudo_sum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u32 {
    let mut sum = 0u32;
    sum += sum_words(&src.octets());
    sum += sum_words(&dst.octets());
    sum += u32::from(proto::TCP);
    sum += segment.len() as u32;
    sum += sum_words(segment);
    sum
}

/// Fills the checksum of an encoded TCP segment (header + payload) in
/// place, over the IPv4 pseudo-header.
///
/// # Errors
///
/// Returns [`NetError::Truncated`] when `segment` is shorter than a header.
pub fn fill_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &mut [u8]) -> Result<(), NetError> {
    if segment.len() < TCP_HEADER_LEN {
        return Err(NetError::Truncated);
    }
    segment[16] = 0;
    segment[17] = 0;
    let c = !fold(pseudo_sum(src, dst, segment));
    segment[16..18].copy_from_slice(&c.to_be_bytes());
    Ok(())
}

/// Verifies the checksum of an encoded TCP segment. Unlike UDP, a zero TCP
/// checksum is not special: it is verified like any other value.
pub fn verify_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> bool {
    if segment.len() < TCP_HEADER_LEN {
        return false;
    }
    fold(pseudo_sum(src, dst, segment)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    #[test]
    fn header_round_trip() {
        let h = TcpHeader::new(
            443,
            51000,
            0x01020304,
            0x0a0b0c0d,
            flags::SYN | flags::ACK,
            8192,
        );
        let mut buf = [0u8; TCP_HEADER_LEN];
        h.encode(&mut buf).unwrap();
        let parsed = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.has_flags(flags::SYN));
        assert!(parsed.has_flags(flags::SYN | flags::ACK));
        assert!(!parsed.has_flags(flags::FIN));
    }

    #[test]
    fn parse_rejects_bad_offset() {
        let mut buf = [0u8; TCP_HEADER_LEN];
        TcpHeader::new(1, 2, 0, 0, 0, 0).encode(&mut buf).unwrap();
        buf[12] = 4 << 4; // Below minimum.
        assert_eq!(TcpHeader::parse(&buf), Err(NetError::Malformed));
        buf[12] = 8 << 4; // Options claimed but absent.
        assert_eq!(TcpHeader::parse(&buf), Err(NetError::Truncated));
        assert_eq!(TcpHeader::parse(&buf[..10]), Err(NetError::Truncated));
    }

    #[test]
    fn checksum_fill_verify_detects_corruption() {
        let mut seg = vec![0u8; TCP_HEADER_LEN + 11];
        TcpHeader::new(80, 40000, 7, 9, flags::PSH | flags::ACK, 1024)
            .encode(&mut seg)
            .unwrap();
        seg[TCP_HEADER_LEN..].copy_from_slice(b"hello world");
        fill_checksum(SRC, DST, &mut seg).unwrap();
        assert!(verify_checksum(SRC, DST, &seg));
        seg[25] ^= 0x01;
        assert!(!verify_checksum(SRC, DST, &seg));
        assert!(!verify_checksum(SRC, DST, &seg[..10]));
    }

    #[test]
    fn wrong_pseudo_header_fails() {
        let mut seg = vec![0u8; TCP_HEADER_LEN];
        TcpHeader::new(1, 2, 0, 0, flags::SYN, 100)
            .encode(&mut seg)
            .unwrap();
        fill_checksum(SRC, DST, &mut seg).unwrap();
        // Note: merely swapping src/dst would NOT fail — the pseudo-header
        // sum is commutative. Use a genuinely different address.
        assert!(!verify_checksum(SRC, Ipv4Addr::new(10, 1, 0, 3), &seg));
    }

    #[test]
    fn filter_sees_tcp_ports() {
        // The filter's port fallback must read TCP ports correctly.
        use crate::filter::PacketMeta;
        use crate::ipv4::{Ipv4Header, IPV4_HEADER_LEN};

        let mut seg = vec![0u8; TCP_HEADER_LEN];
        TcpHeader::new(5555, 22, 1, 0, flags::SYN, 512)
            .encode(&mut seg)
            .unwrap();
        fill_checksum(SRC, DST, &mut seg).unwrap();

        let ip = Ipv4Header::new(SRC, DST, proto::TCP, 32, seg.len() as u16);
        let mut dgram = vec![0u8; IPV4_HEADER_LEN + seg.len()];
        ip.encode(&mut dgram).unwrap();
        dgram[IPV4_HEADER_LEN..].copy_from_slice(&seg);

        let meta = PacketMeta::from_ip_datagram(&dgram).unwrap();
        assert_eq!(meta.src_port, Some(5555));
        assert_eq!(meta.dst_port, Some(22));
        assert_eq!(meta.protocol, proto::TCP);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn round_trip_any(
            sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
            ack in any::<u32>(), fl in 0u8..64, win in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
            src in any::<u32>(), dst in any::<u32>(),
        ) {
            let h = TcpHeader::new(sp, dp, seq, ack, fl, win);
            let mut seg = vec![0u8; TCP_HEADER_LEN + payload.len()];
            h.encode(&mut seg).unwrap();
            seg[TCP_HEADER_LEN..].copy_from_slice(&payload);
            let src = Ipv4Addr::from(src);
            let dst = Ipv4Addr::from(dst);
            fill_checksum(src, dst, &mut seg).unwrap();
            prop_assert!(verify_checksum(src, dst, &seg));
            let parsed = TcpHeader::parse(&seg).unwrap();
            prop_assert_eq!(parsed.flags, fl & 0x3f);
            prop_assert_eq!(parsed.src_port, sp);
            prop_assert_eq!(parsed.window, win);
        }
    }
}
