//! A screend-style packet-filter rule engine.
//!
//! The paper's with-screend experiments run Mogul's `screend` \[7] — a
//! user-mode program consulted once per packet — configured to *accept all*
//! packets. This module implements a first-match rule engine with the
//! predicate vocabulary such screening firewalls used: protocol, source /
//! destination prefixes, and port ranges, plus a text parser for rules like
//!
//! ```text
//! deny udp from 10.0.0.0/8 to any port 53
//! accept ip from any to any
//! ```

use std::net::Ipv4Addr;

use crate::ipv4::{proto, Ipv4Header, IPV4_HEADER_LEN};
use crate::udp::UdpHeader;

/// The verdict a rule (or the whole filter) renders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Forward the packet.
    Accept,
    /// Drop the packet.
    Deny,
}

/// Which IP protocols a rule matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoMatch {
    /// Any IP protocol.
    Any,
    /// UDP only.
    Udp,
    /// TCP only.
    Tcp,
    /// ICMP only.
    Icmp,
    /// An explicit protocol number.
    Number(u8),
}

impl ProtoMatch {
    fn matches(self, protocol: u8) -> bool {
        match self {
            ProtoMatch::Any => true,
            ProtoMatch::Udp => protocol == proto::UDP,
            ProtoMatch::Tcp => protocol == proto::TCP,
            ProtoMatch::Icmp => protocol == proto::ICMP,
            ProtoMatch::Number(n) => protocol == n,
        }
    }
}

/// An address predicate: a prefix (`any` = `0.0.0.0/0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixMatch {
    /// Network address (host bits ignored).
    pub prefix: Ipv4Addr,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl PrefixMatch {
    /// The match-anything prefix.
    pub const ANY: PrefixMatch = PrefixMatch {
        prefix: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix predicate.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(prefix: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        PrefixMatch { prefix, len }
    }

    fn matches(self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.len);
        (u32::from(addr) & mask) == (u32::from(self.prefix) & mask)
    }
}

/// A port predicate (inclusive range; `ANY` matches everything, including
/// protocols without ports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortMatch {
    /// Lowest matching port.
    pub lo: u16,
    /// Highest matching port.
    pub hi: u16,
}

impl PortMatch {
    /// The match-anything port range.
    pub const ANY: PortMatch = PortMatch {
        lo: 0,
        hi: u16::MAX,
    };

    /// A single-port predicate.
    pub const fn exactly(p: u16) -> Self {
        PortMatch { lo: p, hi: p }
    }

    fn is_any(self) -> bool {
        self.lo == 0 && self.hi == u16::MAX
    }

    fn matches(self, port: Option<u16>) -> bool {
        match port {
            Some(p) => self.lo <= p && p <= self.hi,
            // Portless packets only match an unconstrained predicate.
            None => self.is_any(),
        }
    }
}

/// One filter rule; rules are evaluated first-match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Verdict when the rule matches.
    pub action: Action,
    /// Protocol predicate.
    pub protocol: ProtoMatch,
    /// Source address predicate.
    pub src: PrefixMatch,
    /// Destination address predicate.
    pub dst: PrefixMatch,
    /// Source port predicate.
    pub src_port: PortMatch,
    /// Destination port predicate.
    pub dst_port: PortMatch,
}

impl Rule {
    /// The paper's experimental configuration: accept every packet.
    pub const ACCEPT_ALL: Rule = Rule {
        action: Action::Accept,
        protocol: ProtoMatch::Any,
        src: PrefixMatch::ANY,
        dst: PrefixMatch::ANY,
        src_port: PortMatch::ANY,
        dst_port: PortMatch::ANY,
    };

    fn matches(&self, meta: &PacketMeta) -> bool {
        self.protocol.matches(meta.protocol)
            && self.src.matches(meta.src)
            && self.dst.matches(meta.dst)
            && self.src_port.matches(meta.src_port)
            && self.dst_port.matches(meta.dst_port)
    }
}

/// The fields of a packet a screening rule can see.
#[derive(Clone, Copy, Debug)]
pub struct PacketMeta {
    /// IP protocol number.
    pub protocol: u8,
    /// Source IP.
    pub src: Ipv4Addr,
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// Source port, when the protocol has ports.
    pub src_port: Option<u16>,
    /// Destination port, when the protocol has ports.
    pub dst_port: Option<u16>,
}

impl PacketMeta {
    /// Extracts screening metadata from an IP datagram (header + payload).
    ///
    /// Returns `None` if the datagram cannot be parsed at all; transport
    /// ports are best-effort (absent for non-UDP/TCP or truncated packets).
    pub fn from_ip_datagram(dgram: &[u8]) -> Option<Self> {
        let ip = Ipv4Header::parse(dgram).ok()?;
        let mut meta = PacketMeta {
            protocol: ip.protocol,
            src: ip.src,
            dst: ip.dst,
            src_port: None,
            dst_port: None,
        };
        if (ip.protocol == proto::UDP || ip.protocol == proto::TCP)
            && dgram.len() >= IPV4_HEADER_LEN + 4
        {
            // UDP and TCP both start with src/dst ports.
            if let Ok(udp_hdr) = UdpHeader::parse(&dgram[IPV4_HEADER_LEN..]) {
                meta.src_port = Some(udp_hdr.src_port);
                meta.dst_port = Some(udp_hdr.dst_port);
            } else {
                let b = &dgram[IPV4_HEADER_LEN..];
                meta.src_port = Some(u16::from_be_bytes([b[0], b[1]]));
                meta.dst_port = Some(u16::from_be_bytes([b[2], b[3]]));
            }
        }
        Some(meta)
    }
}

/// A first-match packet filter with a default action.
///
/// # Examples
///
/// ```
/// use livelock_net::filter::{Action, Filter, Rule};
///
/// let f = Filter::parse(
///     "deny udp from 10.0.0.0/8 to any port 53\n\
///      accept ip from any to any",
/// ).unwrap();
/// assert_eq!(f.rules().len(), 2);
/// let accept_all = Filter::accept_all();
/// assert_eq!(accept_all.rules(), &[Rule::ACCEPT_ALL]);
/// ```
#[derive(Clone, Debug)]
pub struct Filter {
    rules: Vec<Rule>,
    default_action: Action,
    evaluated: u64,
}

/// A parse failure: the offending line number (1-based) and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Filter {
    /// Creates a filter from explicit rules; unmatched packets are denied.
    pub fn new(rules: Vec<Rule>) -> Self {
        Filter {
            rules,
            default_action: Action::Deny,
            evaluated: 0,
        }
    }

    /// The paper's experimental configuration: a single accept-all rule.
    pub fn accept_all() -> Self {
        Filter::new(vec![Rule::ACCEPT_ALL])
    }

    /// Sets the verdict for packets no rule matches (default: deny).
    pub fn with_default(mut self, action: Action) -> Self {
        self.default_action = action;
        self
    }

    /// Returns the rule list.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Returns how many packets have been evaluated.
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Renders a verdict for an IP datagram (header + payload bytes).
    ///
    /// Unparseable datagrams are denied, matching screend's fail-closed
    /// behaviour.
    pub fn evaluate(&mut self, dgram: &[u8]) -> Action {
        self.evaluated += 1;
        let Some(meta) = PacketMeta::from_ip_datagram(dgram) else {
            return Action::Deny;
        };
        self.evaluate_meta(&meta)
    }

    /// Renders a verdict for pre-extracted metadata.
    pub fn evaluate_meta(&self, meta: &PacketMeta) -> Action {
        for rule in &self.rules {
            if rule.matches(meta) {
                return rule.action;
            }
        }
        self.default_action
    }

    /// Parses a rule file: one rule per line, `#` comments, blank lines
    /// ignored.
    ///
    /// Grammar per line:
    ///
    /// ```text
    /// (accept|deny) (ip|udp|tcp|icmp|proto N)
    ///     from (any|ADDR[/LEN]) [port P[-Q]]
    ///     to   (any|ADDR[/LEN]) [port P[-Q]]
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut rules = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            rules.push(parse_rule(stripped).map_err(|message| ParseError { line, message })?);
        }
        Ok(Filter::new(rules))
    }
}

fn parse_prefix(tok: &str) -> Result<PrefixMatch, String> {
    if tok == "any" {
        return Ok(PrefixMatch::ANY);
    }
    let (addr_s, len_s) = match tok.split_once('/') {
        Some((a, l)) => (a, Some(l)),
        None => (tok, None),
    };
    let prefix: Ipv4Addr = addr_s
        .parse()
        .map_err(|_| format!("bad address {addr_s:?}"))?;
    let len = match len_s {
        Some(l) => l
            .parse::<u8>()
            .ok()
            .filter(|&l| l <= 32)
            .ok_or_else(|| format!("bad prefix length {l:?}"))?,
        None => 32,
    };
    Ok(PrefixMatch::new(prefix, len))
}

fn parse_ports(tok: &str) -> Result<PortMatch, String> {
    if let Some((lo, hi)) = tok.split_once('-') {
        let lo = lo.parse::<u16>().map_err(|_| format!("bad port {lo:?}"))?;
        let hi = hi.parse::<u16>().map_err(|_| format!("bad port {hi:?}"))?;
        if lo > hi {
            return Err(format!("empty port range {tok:?}"));
        }
        Ok(PortMatch { lo, hi })
    } else {
        let p = tok
            .parse::<u16>()
            .map_err(|_| format!("bad port {tok:?}"))?;
        Ok(PortMatch::exactly(p))
    }
}

fn parse_rule(line: &str) -> Result<Rule, String> {
    let mut toks = line.split_whitespace().peekable();
    let action = match toks.next() {
        Some("accept") => Action::Accept,
        Some("deny") => Action::Deny,
        other => return Err(format!("expected accept/deny, got {other:?}")),
    };
    let protocol = match toks.next() {
        Some("ip") => ProtoMatch::Any,
        Some("udp") => ProtoMatch::Udp,
        Some("tcp") => ProtoMatch::Tcp,
        Some("icmp") => ProtoMatch::Icmp,
        Some("proto") => {
            let n = toks
                .next()
                .and_then(|t| t.parse::<u8>().ok())
                .ok_or("expected protocol number after 'proto'")?;
            ProtoMatch::Number(n)
        }
        other => return Err(format!("expected protocol, got {other:?}")),
    };

    let expect_kw =
        |kw: &str, toks: &mut std::iter::Peekable<std::str::SplitWhitespace>| match toks.next() {
            Some(t) if t == kw => Ok(()),
            other => Err(format!("expected {kw:?}, got {other:?}")),
        };

    expect_kw("from", &mut toks)?;
    let src = parse_prefix(toks.next().ok_or("expected source address")?)?;
    let mut src_port = PortMatch::ANY;
    if toks.peek() == Some(&"port") {
        toks.next();
        src_port = parse_ports(toks.next().ok_or("expected port after 'port'")?)?;
    }

    expect_kw("to", &mut toks)?;
    let dst = parse_prefix(toks.next().ok_or("expected destination address")?)?;
    let mut dst_port = PortMatch::ANY;
    if toks.peek() == Some(&"port") {
        toks.next();
        dst_port = parse_ports(toks.next().ok_or("expected port after 'port'")?)?;
    }

    if let Some(extra) = toks.next() {
        return Err(format!("unexpected trailing token {extra:?}"));
    }

    Ok(Rule {
        action,
        protocol,
        src,
        dst,
        src_port,
        dst_port,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};
    use crate::MacAddr;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn udp_dgram(src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16) -> Vec<u8> {
        let p = Packet::udp_ipv4(
            PacketId(0),
            MacAddr::local(1),
            MacAddr::local(2),
            src,
            dst,
            sp,
            dp,
            32,
            &[0u8; 4],
        );
        p.ip_datagram().unwrap().to_vec()
    }

    #[test]
    fn accept_all_accepts_everything() {
        let mut f = Filter::accept_all();
        let d = udp_dgram(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 1, 2);
        assert_eq!(f.evaluate(&d), Action::Accept);
        assert_eq!(f.evaluated(), 1);
    }

    #[test]
    fn first_match_semantics() {
        let mut f = Filter::parse(
            "deny udp from 10.0.0.0/8 to any port 53\n\
             accept ip from any to any",
        )
        .unwrap();
        let dns = udp_dgram(
            Ipv4Addr::new(10, 1, 1, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            4000,
            53,
        );
        let other = udp_dgram(
            Ipv4Addr::new(10, 1, 1, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            4000,
            80,
        );
        let outside = udp_dgram(
            Ipv4Addr::new(11, 1, 1, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            4000,
            53,
        );
        assert_eq!(f.evaluate(&dns), Action::Deny);
        assert_eq!(f.evaluate(&other), Action::Accept);
        assert_eq!(f.evaluate(&outside), Action::Accept);
    }

    #[test]
    fn default_action_applies() {
        let mut f = Filter::new(vec![]);
        let d = udp_dgram(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 1);
        assert_eq!(f.evaluate(&d), Action::Deny);
        let mut f = Filter::new(vec![]).with_default(Action::Accept);
        assert_eq!(f.evaluate(&d), Action::Accept);
    }

    #[test]
    fn garbage_is_denied() {
        let mut f = Filter::accept_all();
        assert_eq!(f.evaluate(&[0u8; 5]), Action::Deny);
    }

    #[test]
    fn port_ranges() {
        let mut f = Filter::parse(
            "accept udp from any to any port 9000-9999\n\
             deny ip from any to any",
        )
        .unwrap();
        let inside = udp_dgram(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            5,
            9500,
        );
        let below = udp_dgram(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            5,
            8999,
        );
        assert_eq!(f.evaluate(&inside), Action::Accept);
        assert_eq!(f.evaluate(&below), Action::Deny);
    }

    #[test]
    fn icmp_does_not_match_port_constrained_rule() {
        let f = Filter::parse(
            "accept icmp from any to any port 53\n\
             deny ip from any to any",
        )
        .unwrap();
        let meta = PacketMeta {
            protocol: proto::ICMP,
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            src_port: None,
            dst_port: None,
        };
        assert_eq!(f.evaluate_meta(&meta), Action::Deny);
    }

    #[test]
    fn parser_errors_name_the_line() {
        let err = Filter::parse("accept ip from any to any\nbogus line").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(Filter::parse("accept udp from any to any extra").is_err());
        assert!(Filter::parse("accept udp from any").is_err());
        assert!(Filter::parse("accept udp from 1.2.3.4/99 to any").is_err());
        assert!(Filter::parse("accept udp from any port 9-5 to any").is_err());
        assert!(Filter::parse("permit ip from any to any").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let f = Filter::parse(
            "# a comment\n\
             \n\
             accept ip from any to any # trailing comment\n",
        )
        .unwrap();
        assert_eq!(f.rules().len(), 1);
    }

    #[test]
    fn host_rule_without_mask() {
        let mut f = Filter::parse(
            "deny ip from 10.0.0.5 to any\n\
             accept ip from any to any",
        )
        .unwrap();
        let hit = udp_dgram(Ipv4Addr::new(10, 0, 0, 5), Ipv4Addr::new(2, 2, 2, 2), 1, 1);
        let miss = udp_dgram(Ipv4Addr::new(10, 0, 0, 6), Ipv4Addr::new(2, 2, 2, 2), 1, 1);
        assert_eq!(f.evaluate(&hit), Action::Deny);
        assert_eq!(f.evaluate(&miss), Action::Accept);
    }

    #[test]
    fn proto_number_rule() {
        let f = Filter::parse("accept proto 89 from any to any\ndeny ip from any to any").unwrap();
        let ospf = PacketMeta {
            protocol: 89,
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            src_port: None,
            dst_port: None,
        };
        assert_eq!(f.evaluate_meta(&ospf), Action::Accept);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn accept_all_never_denies_valid_udp(
            src in any::<u32>(), dst in any::<u32>(), sp in any::<u16>(), dp in any::<u16>(),
        ) {
            let mut f = Filter::accept_all();
            let d = udp_dgram(Ipv4Addr::from(src), Ipv4Addr::from(dst), sp, dp);
            prop_assert_eq!(f.evaluate(&d), Action::Accept);
        }

        #[test]
        fn prefix_match_agrees_with_mask_arithmetic(
            prefix in any::<u32>(), len in 0u8..=32, addr in any::<u32>(),
        ) {
            let pm = PrefixMatch::new(Ipv4Addr::from(prefix), len);
            let mask = if len == 0 { 0u32 } else { u32::MAX << (32 - len) };
            let expect = (addr & mask) == (prefix & mask);
            prop_assert_eq!(pm.matches(Ipv4Addr::from(addr)), expect);
        }
    }
}
