//! The Internet checksum (RFC 1071) and incremental updates (RFC 1624).
//!
//! The simulated router validates the IP header checksum on input and fixes
//! it incrementally after decrementing the TTL, exactly as a real forwarding
//! path does — the cheap RFC 1624 update rather than a full recompute.

/// Computes the one's-complement Internet checksum over `data`.
///
/// Returns the checksum in host byte order, ready to be stored with
/// `to_be_bytes`. A buffer whose existing checksum field is correct sums to
/// zero (see [`verify`]).
///
/// # Examples
///
/// ```
/// use livelock_net::checksum::checksum;
///
/// // RFC 1071 example words: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
/// // checksum = !0xddf2 = 0x220d.
/// let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(checksum(&data), 0x220d);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Sums `data` as big-endian 16-bit words into a 32-bit accumulator,
/// padding a trailing odd byte with zero.
pub fn sum_words(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit accumulator into 16 bits with end-around carry.
pub fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verifies a buffer whose checksum field is already in place.
///
/// Per RFC 1071, summing the entire buffer (checksum included) yields
/// `0xffff` when the checksum is correct.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xffff
}

/// Incrementally updates a checksum after a 16-bit field changes
/// (RFC 1624, equation 3: `HC' = ~(~HC + ~m + m')`).
///
/// `old_checksum` is the checksum currently stored in the header, `old` the
/// previous value of the changed 16-bit field and `new` its new value.
///
/// # Examples
///
/// ```
/// use livelock_net::checksum::{checksum, incremental_update};
///
/// let mut buf = [0x45, 0x00, 0x12, 0x34, 0x40, 0x01, 0x00, 0x00];
/// let c = checksum(&buf);
/// buf[6..8].copy_from_slice(&c.to_be_bytes());
///
/// // Change the word at offset 4 from 0x4001 to 0x3f01 (TTL decrement).
/// buf[4] = 0x3f;
/// let updated = incremental_update(c, 0x4001, 0x3f01);
/// buf[6..8].copy_from_slice(&updated.to_be_bytes());
/// assert!(livelock_net::checksum::verify(&buf));
/// ```
pub fn incremental_update(old_checksum: u16, old: u16, new: u16) -> u16 {
    let sum = u32::from(!old_checksum) + u32::from(!old) + u32::from(new);
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(checksum(&[]), 0xffff);
        assert!(!verify(&[0x00, 0x01]));
    }

    #[test]
    fn known_ip_header_vector() {
        // Classic example header from RFC 1071 discussions:
        // 45 00 00 3c 1c 46 40 00 40 06 [b1 e6] ac 10 0a 63 ac 10 0a 0c
        let mut h = [
            0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let c = checksum(&h);
        assert_eq!(c, 0xb1e6);
        h[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&h));
    }

    #[test]
    fn verify_detects_single_bit_corruption() {
        let mut h = [
            0x45, 0x00, 0x00, 0x1c, 0x00, 0x01, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
        ];
        let c = checksum(&h);
        h[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&h));
        for byte in 0..h.len() {
            for bit in 0..8 {
                let mut corrupt = h;
                corrupt[byte] ^= 1 << bit;
                assert!(!verify(&corrupt), "flip byte {byte} bit {bit} undetected");
            }
        }
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn filled_checksum_always_verifies(data in proptest::collection::vec(any::<u8>(), 1..128)) {
            // The checksum field must be 16-bit aligned: use an even-length
            // buffer with the last word reserved for the checksum.
            let mut buf = data;
            buf.push(0);
            buf.push(0);
            if buf.len() % 2 == 1 {
                buf.push(0);
            }
            let n = buf.len();
            buf[n - 2] = 0;
            buf[n - 1] = 0;
            let c = checksum(&buf);
            buf[n - 2..].copy_from_slice(&c.to_be_bytes());
            prop_assert!(verify(&buf));
        }

        #[test]
        fn incremental_matches_full_recompute(
            mut words in proptest::collection::vec(any::<u16>(), 4..64),
            idx in 0usize..64,
            new_val in any::<u16>(),
        ) {
            // Treat words[0] as the checksum field; compute it over the rest.
            let idx = 1 + idx % (words.len() - 1);
            let encode = |ws: &[u16]| -> Vec<u8> {
                ws.iter().flat_map(|w| w.to_be_bytes()).collect()
            };
            words[0] = 0;
            let mut bytes = encode(&words);
            let c0 = checksum(&bytes);
            words[0] = c0;

            // Mutate one word both ways and compare checksums.
            let old = words[idx];
            words[idx] = new_val;
            let inc = incremental_update(c0, old, new_val);

            words[0] = 0;
            bytes = encode(&words);
            let full = checksum(&bytes);

            // RFC 1624: the incremental result is equivalent under the
            // one's-complement equality (0x0000 == 0xffff is impossible here
            // because eq-3 never produces 0xffff unless full does... compare
            // by verification instead of raw equality).
            words[0] = inc;
            let bytes_inc = encode(&words);
            prop_assert!(verify(&bytes_inc), "inc {inc:#06x} full {full:#06x}");
        }
    }
}
