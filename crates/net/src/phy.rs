//! Physical-layer timing: Ethernet serialization and maximum packet rates.
//!
//! The paper's router connects two 10 Mbit/s Ethernets and cites a maximum
//! Ethernet packet rate of "about 14,880 packets/second" for minimum-size
//! frames. These constants derive that figure from first principles so the
//! wire model and the experiment harness agree.

use livelock_sim::{Freq, Nanos};

/// Preamble + start-frame-delimiter bytes transmitted before each frame.
pub const PREAMBLE_BYTES: usize = 8;
/// Inter-frame gap, expressed in byte times (96 bit times).
pub const INTERFRAME_GAP_BYTES: usize = 12;
/// Minimum frame length on the wire including the frame check sequence.
pub const MIN_WIRE_FRAME_BYTES: usize = 64;

/// A link speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpeed {
    bits_per_sec: u64,
}

impl LinkSpeed {
    /// Classic 10 Mbit/s Ethernet, as in the paper's testbed.
    pub const ETHERNET_10M: LinkSpeed = LinkSpeed {
        bits_per_sec: 10_000_000,
    };

    /// 100 Mbit/s Ethernet.
    pub const ETHERNET_100M: LinkSpeed = LinkSpeed {
        bits_per_sec: 100_000_000,
    };

    /// FDDI at 100 Mbit/s (the paper's "future work" interface).
    pub const FDDI: LinkSpeed = LinkSpeed {
        bits_per_sec: 100_000_000,
    };

    /// Creates a custom speed.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub const fn new(bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link speed must be nonzero");
        LinkSpeed { bits_per_sec }
    }

    /// Returns the speed in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Time to serialize a frame of `frame_len` bytes (payload view, without
    /// FCS), including preamble, FCS padding to the wire minimum, and the
    /// inter-frame gap — i.e. the full per-packet wire occupancy.
    pub fn frame_time(self, frame_len: usize) -> Nanos {
        // The frame as handed to the NIC excludes the 4-byte FCS.
        let wire_frame = (frame_len + 4).max(MIN_WIRE_FRAME_BYTES);
        let total_bytes = PREAMBLE_BYTES + wire_frame + INTERFRAME_GAP_BYTES;
        let bits = (total_bytes * 8) as u64;
        Nanos::new(bits * 1_000_000_000 / self.bits_per_sec)
    }

    /// Time to serialize a frame, in CPU cycles at `freq`.
    pub fn frame_cycles(self, frame_len: usize, freq: Freq) -> livelock_sim::Cycles {
        freq.cycles_from_nanos(self.frame_time(frame_len))
    }

    /// The maximum packet rate for frames of `frame_len` bytes.
    pub fn max_packet_rate(self, frame_len: usize) -> f64 {
        1e9 / self.frame_time(frame_len).raw() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MIN_FRAME_LEN;

    #[test]
    fn min_frame_time_is_67_2_us() {
        // 8 + 64 + 12 = 84 bytes = 672 bits at 10 Mb/s = 67.2 us.
        let t = LinkSpeed::ETHERNET_10M.frame_time(MIN_FRAME_LEN);
        assert_eq!(t, Nanos::new(67_200));
    }

    #[test]
    fn paper_max_rate_14880() {
        let rate = LinkSpeed::ETHERNET_10M.max_packet_rate(MIN_FRAME_LEN);
        assert!((rate - 14_880.95).abs() < 1.0, "rate = {rate}");
    }

    #[test]
    fn short_frames_pad_to_minimum() {
        let s = LinkSpeed::ETHERNET_10M;
        assert_eq!(s.frame_time(10), s.frame_time(MIN_FRAME_LEN));
        assert_eq!(s.frame_time(60), s.frame_time(20));
    }

    #[test]
    fn longer_frames_take_longer() {
        let s = LinkSpeed::ETHERNET_10M;
        assert!(s.frame_time(1514) > s.frame_time(MIN_FRAME_LEN));
        // 1514 + 4 FCS + 20 overhead = 1538 bytes = 1230.4 us.
        assert_eq!(s.frame_time(1514), Nanos::new(1_230_400));
    }

    #[test]
    fn faster_links_scale() {
        let t10 = LinkSpeed::ETHERNET_10M.frame_time(MIN_FRAME_LEN);
        let t100 = LinkSpeed::ETHERNET_100M.frame_time(MIN_FRAME_LEN);
        assert_eq!(t10.raw(), t100.raw() * 10);
    }

    #[test]
    fn frame_cycles_at_100mhz() {
        let freq = Freq::mhz(100);
        let cy = LinkSpeed::ETHERNET_10M.frame_cycles(MIN_FRAME_LEN, freq);
        assert_eq!(cy.raw(), 6720);
    }
}
