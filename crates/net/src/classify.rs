//! Deterministic priority classification of transport flows.
//!
//! The paper's §8 future-work discussion (and ROADMAP item 1) calls for
//! per-class differentiation under overload: a high-priority control flow
//! must keep its latency SLO while bulk traffic absorbs the shedding.
//! This module supplies the first half of that design — a pure,
//! order-independent mapping from a packet's transport 5-tuple to a
//! [`TrafficClass`] — leaving the mechanism that *acts* on the class
//! (per-priority NIC rings, strict-priority drain, the shed controller)
//! to the kernel crate.
//!
//! Determinism contract: classification is a function of the flow key and
//! the rule *set*, never of rule *order*. A rule set is matched by
//! specificity (most constrained rule wins) with class priority as the
//! tie-break, so shuffling the rules cannot change any packet's class.

use crate::packet::FlowKey;

/// The three service classes, in strict priority order.
///
/// `Control` outranks `Realtime` outranks `Bulk`: the polled kernel
/// drains receive work in this order, and the admission gate sheds in
/// the reverse order (`Bulk` first, `Control` never).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Routing updates, management traffic: smallest share, strictest SLO.
    Control,
    /// Latency-sensitive media/telemetry streams.
    Realtime,
    /// Throughput-oriented transfers: first to be shed under overload.
    Bulk,
}

impl TrafficClass {
    /// All classes, highest priority first (the drain order).
    pub const ALL: [TrafficClass; 3] =
        [TrafficClass::Control, TrafficClass::Realtime, TrafficClass::Bulk];

    /// Number of classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index: 0 = highest priority. Usable directly as an array
    /// index and as the strict-priority drain order.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Control => 0,
            TrafficClass::Realtime => 1,
            TrafficClass::Bulk => 2,
        }
    }

    /// Stable lower-case label for CSV columns, fold frames and reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Control => "control",
            TrafficClass::Realtime => "realtime",
            TrafficClass::Bulk => "bulk",
        }
    }

    /// The class with dense index `i` (inverse of [`TrafficClass::index`]).
    pub fn from_index(i: usize) -> Option<TrafficClass> {
        Self::ALL.get(i).copied()
    }
}

/// One match rule: every populated field must equal the flow key's for
/// the rule to match. An empty rule (all `None`) matches everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchRule {
    /// IP protocol number to match (`ipv4::proto::*`), or any.
    pub proto: Option<u8>,
    /// Transport source port to match, or any.
    pub src_port: Option<u16>,
    /// Transport destination port to match, or any.
    pub dst_port: Option<u16>,
    /// The class a matching flow is assigned.
    pub class: TrafficClass,
}

impl MatchRule {
    /// A rule matching any flow of `class` (specificity 0).
    pub const fn any(class: TrafficClass) -> MatchRule {
        MatchRule {
            proto: None,
            src_port: None,
            dst_port: None,
            class,
        }
    }

    /// A rule matching one transport source port.
    pub const fn src_port(port: u16, class: TrafficClass) -> MatchRule {
        MatchRule {
            proto: None,
            src_port: Some(port),
            dst_port: None,
            class,
        }
    }

    /// A rule matching one transport destination port.
    pub const fn dst_port(port: u16, class: TrafficClass) -> MatchRule {
        MatchRule {
            proto: None,
            src_port: None,
            dst_port: Some(port),
            class,
        }
    }

    /// Whether the rule matches `key`.
    pub fn matches(&self, key: &FlowKey) -> bool {
        self.proto.is_none_or(|p| p == key.proto)
            && self.src_port.is_none_or(|p| p == key.src_port)
            && self.dst_port.is_none_or(|p| p == key.dst_port)
    }

    /// How constrained the rule is: the number of populated fields.
    /// More-specific rules beat less-specific ones.
    pub fn specificity(&self) -> u32 {
        self.proto.is_some() as u32
            + self.src_port.is_some() as u32
            + self.dst_port.is_some() as u32
    }
}

/// The deterministic flow classifier: a rule set plus a default class
/// for flows (and portless/unparseable frames) no rule matches.
///
/// Match semantics are order-independent by construction: among the
/// matching rules, the highest specificity wins, and ties go to the
/// highest-priority class (lowest [`TrafficClass::index`]). Both
/// reductions are commutative and associative, so any permutation of
/// the same rule set classifies every key identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classifier {
    rules: Vec<MatchRule>,
    default_class: TrafficClass,
}

impl Classifier {
    /// Builds a classifier from a rule set and default class.
    pub fn new(rules: Vec<MatchRule>, default_class: TrafficClass) -> Classifier {
        Classifier {
            rules,
            default_class,
        }
    }

    /// The rules (as given; order carries no meaning).
    pub fn rules(&self) -> &[MatchRule] {
        &self.rules
    }

    /// The fallback class for unmatched flows.
    pub fn default_class(&self) -> TrafficClass {
        self.default_class
    }

    /// Classifies one flow key: most-specific matching rule, class
    /// priority as tie-break, default class when nothing matches.
    pub fn classify(&self, key: &FlowKey) -> TrafficClass {
        let mut best: Option<(u32, TrafficClass)> = None;
        for r in &self.rules {
            if !r.matches(key) {
                continue;
            }
            let cand = (r.specificity(), r.class);
            best = Some(match best {
                None => cand,
                Some((s, c)) => {
                    if cand.0 > s || (cand.0 == s && cand.1.index() < c.index()) {
                        cand
                    } else {
                        (s, c)
                    }
                }
            });
        }
        best.map_or(self.default_class, |(_, c)| c)
    }

    /// Classifies an optional flow key: frames that never parsed to a
    /// 5-tuple fall into the default class.
    pub fn classify_opt(&self, key: Option<&FlowKey>) -> TrafficClass {
        key.map_or(self.default_class, |k| self.classify(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src_port: u16, dst_port: u16) -> FlowKey {
        FlowKey {
            src_ip: 0x0a00_0001,
            dst_ip: 0x0a00_0002,
            proto: 17,
            src_port,
            dst_port,
        }
    }

    #[test]
    fn class_indices_are_dense_and_ordered_by_priority() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(TrafficClass::from_index(i), Some(*c));
        }
        assert_eq!(TrafficClass::from_index(3), None);
        assert!(TrafficClass::Control.index() < TrafficClass::Bulk.index());
    }

    #[test]
    fn most_specific_rule_wins_regardless_of_order() {
        let a = MatchRule::src_port(7000, TrafficClass::Control);
        let b = MatchRule::any(TrafficClass::Bulk);
        let fwd = Classifier::new(vec![a, b], TrafficClass::Bulk);
        let rev = Classifier::new(vec![b, a], TrafficClass::Bulk);
        let k = key(7000, 9);
        assert_eq!(fwd.classify(&k), TrafficClass::Control);
        assert_eq!(rev.classify(&k), TrafficClass::Control);
        assert_eq!(fwd.classify(&key(7001, 9)), TrafficClass::Bulk);
    }

    #[test]
    fn specificity_tie_goes_to_higher_priority_class() {
        let a = MatchRule::src_port(5000, TrafficClass::Realtime);
        let b = MatchRule::dst_port(9, TrafficClass::Control);
        let k = key(5000, 9); // Both match with specificity 1.
        for rules in [vec![a, b], vec![b, a]] {
            let c = Classifier::new(rules, TrafficClass::Bulk);
            assert_eq!(c.classify(&k), TrafficClass::Control);
        }
    }

    #[test]
    fn unmatched_and_unparsed_fall_to_default() {
        let c = Classifier::new(
            vec![MatchRule::src_port(7000, TrafficClass::Control)],
            TrafficClass::Bulk,
        );
        assert_eq!(c.classify(&key(1, 2)), TrafficClass::Bulk);
        assert_eq!(c.classify_opt(None), TrafficClass::Bulk);
        assert_eq!(c.classify_opt(Some(&key(7000, 2))), TrafficClass::Control);
    }

    #[test]
    fn proto_constraint_participates_in_matching() {
        let r = MatchRule {
            proto: Some(6),
            src_port: None,
            dst_port: None,
            class: TrafficClass::Realtime,
        };
        let c = Classifier::new(vec![r], TrafficClass::Bulk);
        let mut k = key(1, 2);
        assert_eq!(c.classify(&k), TrafficClass::Bulk); // proto 17
        k.proto = 6;
        assert_eq!(c.classify(&k), TrafficClass::Realtime);
        assert_eq!(r.specificity(), 1);
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Decodes a drawn tuple into a rule over a deliberately tiny
        /// field domain (two protos, four src ports, three dst ports) so
        /// rules and keys actually collide — unconstrained u16 ports
        /// would almost never exercise the overlapping-rule tie-breaks.
        fn rule(raw: (u8, u8, u8, usize)) -> MatchRule {
            let (proto, src, dst, class) = raw;
            MatchRule {
                proto: [None, Some(6), Some(17)][proto as usize],
                src_port: if src == 0 { None } else { Some(6_999 + u16::from(src)) },
                dst_port: if dst == 0 { None } else { Some(8 + u16::from(dst)) },
                class: TrafficClass::ALL[class],
            }
        }

        proptest! {
            /// Every frame maps to exactly one class, independent of the
            /// order the match rules were written in: rotating or
            /// reversing the rule list never changes a classification
            /// (most-specific rule wins; specificity ties break to the
            /// lowest class index, a property of the *set*, not the
            /// list).
            #[test]
            fn classification_is_rule_order_independent(
                raw_rules in proptest::collection::vec((0u8..3, 0u8..4, 0u8..4, 0usize..3), 0..6),
                default_i in 0usize..3,
                raw_key in (0u8..2, 7_000u16..7_004, 9u16..12),
                rot in 0usize..6,
            ) {
                let rules: Vec<MatchRule> = raw_rules.into_iter().map(rule).collect();
                let default = TrafficClass::ALL[default_i];
                let k = FlowKey {
                    src_ip: 0x0a00_0001,
                    dst_ip: 0x0a00_0002,
                    proto: [6, 17][raw_key.0 as usize],
                    src_port: raw_key.1,
                    dst_port: raw_key.2,
                };
                let got = Classifier::new(rules.clone(), default).classify(&k);

                let mut rotated = rules.clone();
                rotated.rotate_left(rot % rules.len().max(1));
                prop_assert_eq!(
                    Classifier::new(rotated, default).classify(&k),
                    got,
                    "rotation changed the class"
                );

                let mut reversed = rules;
                reversed.reverse();
                prop_assert_eq!(
                    Classifier::new(reversed, default).classify(&k),
                    got,
                    "reversal changed the class"
                );
            }
        }
    }
}
