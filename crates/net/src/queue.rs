//! Bounded drop-tail queues with drop accounting and watermark queries.
//!
//! Every inter-layer queue in the paper's system (`ipintrq`, per-interface
//! output queues, the screend queue) is a fixed-limit drop-tail FIFO; "when a
//! packet should be queued but the queue is full, the system must drop the
//! packet". [`DropTailQueue`] reproduces that, counts drops (the experiment
//! harness attributes loss to specific queues), and answers the watermark
//! queries the queue-state feedback mechanism (paper §6.6.1) needs.

use std::collections::VecDeque;

use livelock_sim::Counter;

/// Outcome of an enqueue attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueued {
    /// The item was accepted.
    Ok,
    /// The queue was full; the item was dropped (drop-tail).
    Dropped,
}

impl Enqueued {
    /// Returns `true` when the item was accepted.
    pub fn is_ok(self) -> bool {
        matches!(self, Enqueued::Ok)
    }
}

/// A bounded drop-tail FIFO.
///
/// # Examples
///
/// ```
/// use livelock_net::queue::{DropTailQueue, Enqueued};
///
/// let mut q = DropTailQueue::new("ipintrq", 2);
/// assert_eq!(q.enqueue(1), Enqueued::Ok);
/// assert_eq!(q.enqueue(2), Enqueued::Ok);
/// assert_eq!(q.enqueue(3), Enqueued::Dropped);
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.drops(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DropTailQueue<T> {
    name: &'static str,
    items: VecDeque<T>,
    capacity: usize,
    drops: Counter,
    enqueued: Counter,
    high_water_len: usize,
}

impl<T> DropTailQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DropTailQueue {
            name,
            items: VecDeque::with_capacity(capacity),
            capacity,
            drops: Counter::new(),
            enqueued: Counter::new(),
            high_water_len: 0,
        }
    }

    /// Returns the queue's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attempts to append an item; drops it when full.
    pub fn enqueue(&mut self, item: T) -> Enqueued {
        if self.items.len() >= self.capacity {
            self.drops.inc();
            return Enqueued::Dropped;
        }
        self.items.push_back(item);
        self.enqueued.inc();
        self.high_water_len = self.high_water_len.max(self.items.len());
        Enqueued::Ok
    }

    /// Removes and returns the oldest item.
    pub fn dequeue(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the head-of-line item without dequeueing it (used
    /// to stamp a packet when processing on it begins, before the chunk
    /// that consumes it completes).
    pub fn peek_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Returns the current queue length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Returns the configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of items dropped since creation (or last reset).
    pub fn drops(&self) -> u64 {
        self.drops.get()
    }

    /// Returns the number of items accepted since creation (or last reset).
    pub fn accepted(&self) -> u64 {
        self.enqueued.get()
    }

    /// Returns the maximum length ever observed.
    pub fn high_water_len(&self) -> usize {
        self.high_water_len
    }

    /// Returns the current occupancy as a fraction of capacity in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        self.items.len() as f64 / self.capacity as f64
    }

    /// Returns `true` when occupancy is at or above `fraction` of capacity.
    ///
    /// This is the high-water query the queue-state feedback mechanism uses
    /// ("inhibit input when the screening queue is 75% full").
    pub fn at_or_above(&self, fraction: f64) -> bool {
        self.items.len() as f64 >= fraction * self.capacity as f64
    }

    /// Returns `true` when occupancy is at or below `fraction` of capacity
    /// (the low-water / re-enable query).
    pub fn at_or_below(&self, fraction: f64) -> bool {
        self.items.len() as f64 <= fraction * self.capacity as f64
    }

    /// Discards all queued items and returns how many were discarded.
    /// Statistics are preserved.
    pub fn clear(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }

    /// Resets drop/accept statistics (items stay queued).
    pub fn reset_stats(&mut self) {
        self.drops.reset();
        self.enqueued.reset();
        self.high_water_len = self.items.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new("t", 8);
        for i in 0..5 {
            assert!(q.enqueue(i).is_ok());
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drops_when_full_and_counts() {
        let mut q = DropTailQueue::new("t", 3);
        for i in 0..10 {
            q.enqueue(i);
        }
        assert_eq!(q.len(), 3);
        assert!(q.is_full());
        assert_eq!(q.drops(), 7);
        assert_eq!(q.accepted(), 3);
        assert_eq!(q.high_water_len(), 3);
        // Draining one makes room for exactly one.
        assert_eq!(q.dequeue(), Some(0));
        assert!(q.enqueue(99).is_ok());
        assert!(!q.enqueue(100).is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DropTailQueue::<u8>::new("t", 0);
    }

    #[test]
    fn watermarks() {
        let mut q = DropTailQueue::new("screend", 32);
        for i in 0..24 {
            q.enqueue(i);
        }
        assert!(q.at_or_above(0.75), "24/32 = 75%");
        assert!(!q.at_or_above(0.80));
        while q.len() > 8 {
            q.dequeue();
        }
        assert!(q.at_or_below(0.25), "8/32 = 25%");
        assert!(!q.at_or_below(0.20));
    }

    #[test]
    fn fill_fraction_and_peek() {
        let mut q = DropTailQueue::new("t", 4);
        assert_eq!(q.fill_fraction(), 0.0);
        q.enqueue('a');
        q.enqueue('b');
        assert_eq!(q.fill_fraction(), 0.5);
        assert_eq!(q.peek(), Some(&'a'));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_and_reset_stats() {
        let mut q = DropTailQueue::new("t", 2);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
        assert_eq!(q.drops(), 1, "clear preserves stats");
        q.reset_stats();
        assert_eq!(q.drops(), 0);
        assert_eq!(q.accepted(), 0);
        assert_eq!(q.high_water_len(), 0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn never_exceeds_capacity(cap in 1usize..64, ops in proptest::collection::vec(any::<bool>(), 0..500)) {
            let mut q = DropTailQueue::new("p", cap);
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut next = 0u32;
            for op in ops {
                if op {
                    let r = q.enqueue(next);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(next);
                    } else {
                        prop_assert!(!r.is_ok());
                    }
                    next += 1;
                } else {
                    prop_assert_eq!(q.dequeue(), model.pop_front());
                }
                prop_assert!(q.len() <= cap);
                prop_assert_eq!(q.len(), model.len());
            }
        }

        #[test]
        fn accounting_invariant(cap in 1usize..32, n in 0usize..200) {
            let mut q = DropTailQueue::new("p", cap);
            for i in 0..n {
                q.enqueue(i);
            }
            prop_assert_eq!(q.accepted() + q.drops(), n as u64);
            prop_assert_eq!(q.len() as u64, q.accepted());
        }
    }
}
