//! IPv4 header encode/decode, validation, and forwarding mutations.
//!
//! The router's per-packet work — the work that livelock wastes — is real
//! here: parse, verify the header checksum, decrement the TTL, and patch the
//! checksum incrementally (RFC 1624) the way production forwarding paths do.

use std::net::Ipv4Addr;

use crate::checksum::{checksum, incremental_update, verify};
use crate::NetError;

/// Length in bytes of an option-less IPv4 header.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used by the simulation.
pub mod proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// A decoded IPv4 header (options are not supported; IHL must be 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte.
    pub tos: u8,
    /// Total datagram length (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed as on the wire.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Header checksum as stored on the wire.
    pub header_checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Builds a header for a fresh datagram; the checksum is computed.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ttl: u8, payload_len: u16) -> Self {
        let mut h = Ipv4Header {
            tos: 0,
            total_len: IPV4_HEADER_LEN as u16 + payload_len,
            ident: 0,
            flags_frag: 0,
            ttl,
            protocol,
            header_checksum: 0,
            src,
            dst,
        };
        h.header_checksum = h.compute_checksum();
        h
    }

    /// Parses and validates a header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// - [`NetError::Truncated`] if fewer than 20 bytes are available.
    /// - [`NetError::Malformed`] for a non-4 version, IHL ≠ 5, or a total
    ///   length shorter than the header.
    /// - [`NetError::BadChecksum`] if the header checksum fails.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        let vihl = buf[0];
        if vihl >> 4 != 4 || vihl & 0x0f != 5 {
            return Err(NetError::Malformed);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < IPV4_HEADER_LEN {
            return Err(NetError::Malformed);
        }
        if !verify(&buf[..IPV4_HEADER_LEN]) {
            return Err(NetError::BadChecksum);
        }
        Ok(Ipv4Header {
            tos: buf[1],
            total_len,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            flags_frag: u16::from_be_bytes([buf[6], buf[7]]),
            ttl: buf[8],
            protocol: buf[9],
            header_checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        })
    }

    /// Encodes the header (with its stored checksum) into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] when `buf` is shorter than 20 bytes.
    pub fn encode(&self, buf: &mut [u8]) -> Result<(), NetError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(NetError::Truncated);
        }
        buf[..IPV4_HEADER_LEN].copy_from_slice(&self.encoded());
        Ok(())
    }

    /// Encodes the header into a fixed-size array. Infallible by
    /// construction — the checksum helpers below use this so they need
    /// no error path at all.
    fn encoded(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        buf[0] = 0x45;
        buf[1] = self.tos;
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10..12].copy_from_slice(&self.header_checksum.to_be_bytes());
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        buf
    }

    /// Computes the header checksum over the encoded form, with the checksum
    /// field treated as zero.
    pub fn compute_checksum(&self) -> u16 {
        let mut copy = *self;
        copy.header_checksum = 0;
        checksum(&copy.encoded())
    }

    /// Returns `true` if the stored checksum matches the header contents.
    pub fn checksum_ok(&self) -> bool {
        verify(&self.encoded())
    }

    /// Returns the payload length in bytes.
    pub fn payload_len(&self) -> u16 {
        self.total_len.saturating_sub(IPV4_HEADER_LEN as u16)
    }
}

/// Decrements the TTL of an encoded IPv4 header in place, patching the
/// checksum incrementally (RFC 1624).
///
/// This is the core per-packet forwarding mutation; it operates directly on
/// wire bytes so the simulated router does exactly what a kernel would.
///
/// # Errors
///
/// - [`NetError::Truncated`] if `buf` is shorter than a header.
/// - [`NetError::TtlExpired`] if the TTL is already ≤ 1 (the packet must not
///   be forwarded; a real router would send ICMP Time Exceeded).
pub fn decrement_ttl(buf: &mut [u8]) -> Result<(), NetError> {
    if buf.len() < IPV4_HEADER_LEN {
        return Err(NetError::Truncated);
    }
    let ttl = buf[8];
    if ttl <= 1 {
        return Err(NetError::TtlExpired);
    }
    // The TTL shares a 16-bit word with the protocol byte (offset 8..10).
    let old_word = u16::from_be_bytes([buf[8], buf[9]]);
    buf[8] = ttl - 1;
    let new_word = u16::from_be_bytes([buf[8], buf[9]]);
    let old_ck = u16::from_be_bytes([buf[10], buf[11]]);
    let new_ck = incremental_update(old_ck, old_word, new_word);
    buf[10..12].copy_from_slice(&new_ck.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 99),
            proto::UDP,
            32,
            12,
        )
    }

    #[test]
    fn new_header_has_valid_checksum() {
        assert!(sample().checksum_ok());
    }

    #[test]
    fn encode_parse_round_trip() {
        let h = sample();
        let mut buf = [0u8; IPV4_HEADER_LEN];
        h.encode(&mut buf).unwrap();
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.payload_len(), 12);
    }

    #[test]
    fn parse_rejects_bad_version_and_ihl() {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        sample().encode(&mut buf).unwrap();
        let mut v6 = buf;
        v6[0] = 0x65;
        assert_eq!(Ipv4Header::parse(&v6), Err(NetError::Malformed));
        let mut ihl6 = buf;
        ihl6[0] = 0x46;
        assert_eq!(Ipv4Header::parse(&ihl6), Err(NetError::Malformed));
    }

    #[test]
    fn parse_rejects_corrupt_checksum() {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        sample().encode(&mut buf).unwrap();
        buf[15] ^= 0x40;
        assert_eq!(Ipv4Header::parse(&buf), Err(NetError::BadChecksum));
    }

    #[test]
    fn parse_rejects_short_total_len() {
        let mut h = sample();
        h.total_len = 10;
        h.header_checksum = h.compute_checksum();
        let mut buf = [0u8; IPV4_HEADER_LEN];
        h.encode(&mut buf).unwrap();
        assert_eq!(Ipv4Header::parse(&buf), Err(NetError::Malformed));
    }

    #[test]
    fn parse_rejects_truncation() {
        assert_eq!(Ipv4Header::parse(&[0u8; 19]), Err(NetError::Truncated));
    }

    #[test]
    fn ttl_decrement_preserves_checksum_validity() {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        sample().encode(&mut buf).unwrap();
        decrement_ttl(&mut buf).unwrap();
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.ttl, 31);
    }

    #[test]
    fn ttl_expiry() {
        let mut h = sample();
        h.ttl = 1;
        h.header_checksum = h.compute_checksum();
        let mut buf = [0u8; IPV4_HEADER_LEN];
        h.encode(&mut buf).unwrap();
        assert_eq!(decrement_ttl(&mut buf), Err(NetError::TtlExpired));
        h.ttl = 0;
        h.header_checksum = h.compute_checksum();
        h.encode(&mut buf).unwrap();
        assert_eq!(decrement_ttl(&mut buf), Err(NetError::TtlExpired));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn round_trip_any(
            src in any::<u32>(), dst in any::<u32>(),
            tos in any::<u8>(), ident in any::<u16>(),
            ttl in 2u8..=255, payload in 0u16..1400,
            protocol in any::<u8>(),
        ) {
            let mut h = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), protocol, ttl, payload);
            h.tos = tos;
            h.ident = ident;
            h.header_checksum = h.compute_checksum();
            let mut buf = [0u8; IPV4_HEADER_LEN];
            h.encode(&mut buf).unwrap();
            prop_assert_eq!(Ipv4Header::parse(&buf).unwrap(), h);
        }

        #[test]
        fn incremental_ttl_equals_full_recompute(
            src in any::<u32>(), dst in any::<u32>(), ttl in 2u8..=255,
        ) {
            let h = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), proto::UDP, ttl, 4);
            let mut buf = [0u8; IPV4_HEADER_LEN];
            h.encode(&mut buf).unwrap();
            decrement_ttl(&mut buf).unwrap();

            let parsed = Ipv4Header::parse(&buf).unwrap();
            prop_assert_eq!(parsed.ttl, ttl - 1);
            prop_assert!(parsed.checksum_ok());
        }
    }
}
