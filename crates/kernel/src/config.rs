//! Kernel configuration: every knob the paper's experiments turn.

use livelock_core::poller::Quota;
use livelock_machine::cost::CostModel;
use livelock_machine::cpu::SchedulerKind;
use livelock_machine::fault::FaultPlan;
use livelock_machine::nic::NicConfig;
use livelock_net::classify::{MatchRule, TrafficClass};
use livelock_net::filter::Filter;

use crate::telemetry::{ObserveConfig, TelemetryConfig};

/// Which forwarding-path implementation the kernel runs.
#[derive(Clone, Debug)]
pub enum Mode {
    /// The 4.2BSD interrupt-driven path (Figure 6-2).
    Unmodified {
        /// Model the "modified kernel configured to act as if it were an
        /// unmodified system" of Figure 6-3 (open circles): the same path
        /// with a small extra per-packet overhead from the restructured
        /// driver, which the paper observed to be slightly slower.
        emulate_modified_structure: bool,
    },
    /// The paper's polling kernel (§6.4).
    Polled(PolledConfig),
}

/// Configuration of the modified (polling) kernel.
#[derive(Clone, Copy, Debug)]
pub struct PolledConfig {
    /// Packet quota per received-packet callback (§6.6.2).
    pub rx_quota: Quota,
    /// Packet quota per transmit-done callback.
    pub tx_quota: Quota,
    /// Queue-state feedback around the screend queue (§6.6.1); `None`
    /// reproduces the "polling, no feedback" curve of Figure 6-4.
    pub feedback: Option<FeedbackConfig>,
    /// CPU-cycle limit for packet processing as a fraction of each period
    /// (§7); `None` disables the limiter.
    pub cycle_limit_frac: Option<f64>,
}

impl Default for PolledConfig {
    fn default() -> Self {
        PolledConfig {
            // The paper's no-screend experiments used 5-10; 10 is the value
            // used for the feedback experiments and inside the recommended
            // 10..20 band.
            rx_quota: Quota::Limited(10),
            tx_quota: Quota::Limited(10),
            feedback: None,
            cycle_limit_frac: None,
        }
    }
}

/// Queue-state feedback parameters (§6.6.1).
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Inhibit input when the screend queue reaches this fraction full.
    pub hi_frac: f64,
    /// Resume input when it drains to this fraction.
    pub lo_frac: f64,
    /// Re-enable input after this many clock ticks regardless (the paper
    /// used one tick, ~1 ms, in case screend hangs).
    pub timeout_ticks: u32,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        // "the screening queue was limited to 32 packets, and we inhibited
        // input processing when the queue was 75% full ... re-enabled when
        // the screening queue becomes 25% full."
        FeedbackConfig {
            hi_frac: 0.75,
            lo_frac: 0.25,
            timeout_ticks: 1,
        }
    }
}

/// The SMP machine shape: how many CPUs the kernel runs on and whether
/// idle CPUs steal receive work from overloaded siblings.
///
/// `ncpus == 1` (the default) is the paper's uniprocessor and runs the
/// exact single-engine code path — byte-identical to every result
/// produced before this knob existed. `ncpus > 1` builds one complete
/// per-CPU kernel per CPU (own NIC receive queue, poller, scheduler and
/// conserved cycle ledger) advanced by the deterministic round-robin
/// interleaver in `livelock_machine::cluster`. The unmodified
/// interrupt-driven path then contends on one *shared* `ipintrq` (every
/// CPU's receive handler feeds it, only CPU 0 drains it), while the
/// polled path keeps fully per-CPU queues and quotas — the contrast
/// figure S-1 plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of CPUs (≥ 1).
    pub ncpus: usize,
    /// Work stealing: a CPU whose receive ring is full publishes the
    /// overflowing frame to a bounded per-CPU steal buffer, and idle
    /// sibling pollers pull from it instead of letting it drop (polled
    /// mode only; off by default).
    pub steal: bool,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            ncpus: 1,
            steal: false,
        }
    }
}

/// Interrupt arrival-rate limiting (§5.1), applied to receive interrupts.
#[derive(Clone, Copy, Debug)]
pub struct IntrRateLimitConfig {
    /// Maximum sustained receive-interrupt rate, per second.
    pub max_rate_hz: f64,
    /// Token-bucket burst size.
    pub burst: u32,
}

/// Configuration of local (end-system) delivery: packets addressed to the
/// host itself are queued on a bounded socket buffer and consumed by a
/// user-mode application process — the paper's NFS/RPC-server motivating
/// application (§2, §7.1).
#[derive(Clone, Copy, Debug)]
pub struct LocalDeliveryConfig {
    /// Socket receive buffer capacity, in packets.
    pub socket_cap: usize,
    /// Queue-state feedback on the socket buffer (polled mode only) — the
    /// paper suggests applying the §6.6.1 technique "to other queues in
    /// the system".
    pub feedback: Option<FeedbackConfig>,
    /// Send an RPC-style UDP reply for every delivered request (exercises
    /// the transmit path like an NFS server would).
    pub reply: bool,
}

impl Default for LocalDeliveryConfig {
    fn default() -> Self {
        LocalDeliveryConfig {
            socket_cap: 64,
            feedback: None,
            reply: true,
        }
    }
}

/// Configuration of the user-mode screend process.
#[derive(Clone, Debug)]
pub struct ScreendConfig {
    /// Capacity of the kernel queue feeding screend (paper: 32).
    pub queue_cap: usize,
    /// The screening rules. The paper ran screend "configured to accept
    /// all packets".
    pub rules: Filter,
}

impl Default for ScreendConfig {
    fn default() -> Self {
        ScreendConfig {
            queue_cap: 32,
            rules: Filter::accept_all(),
        }
    }
}

/// Priority-aware classification of the receive path (DESIGN.md §14).
///
/// A deterministic 5-tuple → [`TrafficClass`] mapping replaces the RSS
/// hash as the NIC queue-selection policy: each class gets its own
/// receive ring, the polled path drains rings in strict-priority order
/// under per-class burst budgets, and an admission gate sheds low
/// classes first when the downstream queue (or the livelock detector)
/// signals overload. `None` on [`KernelConfig::classes`] is
/// zero-perturbation: no classifier runs, packets carry no class, and
/// every result is byte-identical to a build without this subsystem.
#[derive(Clone, Debug)]
pub struct ClassifyConfig {
    /// The match rules. Order carries no meaning — classification is
    /// most-specific-wins with class priority as the tie-break (see
    /// [`livelock_net::classify`]).
    pub rules: Vec<MatchRule>,
    /// Class assigned to unmatched flows and unparseable frames.
    pub default_class: TrafficClass,
    /// Per-class burst budget for the strict-priority drain, indexed by
    /// [`TrafficClass::index`]: one poll pass takes at most `burst[c]`
    /// packets from class `c` before moving down the priority order, so
    /// a flooding `Control` source cannot starve `Bulk` forever within
    /// a pass (strictness is between passes, fairness within one).
    pub burst: [u32; TrafficClass::COUNT],
    /// The shed controller's hysteresis parameters.
    pub shed: ShedConfig,
    /// The `Control` class's p99 latency SLO in microseconds, judged
    /// over the livelock detector's sliding window. The upgraded
    /// `PriorityInversion` detector fires when this is violated (or
    /// `Control` arrivals see zero deliveries) while `Bulk` still
    /// progresses.
    pub slo_p99_us: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            rules: Vec::new(),
            default_class: TrafficClass::Bulk,
            burst: [8, 8, 8],
            shed: ShedConfig::default(),
            slo_p99_us: 2_000.0,
        }
    }
}

/// Hysteresis parameters for the class-aware admission gate.
///
/// The gate watches the downstream bottleneck queue (screend's, when
/// present, else the output queue on the busiest interface) as a
/// fraction of its capacity, plus the livelock detector's verdict. Shed
/// level 1 drops `Bulk` at admission; level 2 also drops `Realtime`;
/// `Control` is never shed. Levels move one step at a time, and only
/// after `min_hold_ticks` clock ticks at the current level, so the
/// controller cannot oscillate within a tick window.
#[derive(Clone, Copy, Debug)]
pub struct ShedConfig {
    /// Queue fill fraction at/above which the shed level escalates
    /// (level 0 → 1, and 1 → 2 when still above after the hold).
    pub shed_hi_frac: f64,
    /// Fill fraction at/below which the shed level de-escalates.
    pub restore_lo_frac: f64,
    /// Minimum clock ticks a shed level holds before it may change.
    pub min_hold_ticks: u64,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            shed_hi_frac: 0.75,
            restore_lo_frac: 0.25,
            min_hold_ticks: 2,
        }
    }
}

/// Full kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Forwarding-path implementation.
    pub mode: Mode,
    /// Route packets through the user-mode screend process?
    pub screend: Option<ScreendConfig>,
    /// Deliver packets addressed to the host to a local application?
    pub local: Option<LocalDeliveryConfig>,
    /// Limit the receive-interrupt arrival rate (§5.1)?
    pub intr_rate_limit: Option<IntrRateLimitConfig>,
    /// Run a compute-bound user process (the Figure 7-1 competitor)?
    pub user_process: bool,
    /// NIC ring geometry.
    pub nic: NicConfig,
    /// `ipintrq` length limit (BSD's `IFQ_MAXLEN` default of 50); only the
    /// unmodified kernel has this queue.
    pub ipintrq_cap: usize,
    /// Per-interface output queue length limit.
    pub ifq_cap: usize,
    /// Apply RED early-drop admission on output queues instead of pure
    /// drop-tail (the §8-cited alternative policy)?
    pub ifq_red: bool,
    /// Originate ICMP errors (Time Exceeded, Destination Unreachable) for
    /// undeliverable packets, rate-paced as real routers do?
    pub icmp_errors: bool,
    /// Forward packets between interfaces (a router)? When `false` the
    /// host is a pure end-system: traffic not addressed to it is discarded
    /// after input processing — the cost the paper's "innocent-bystander
    /// hosts" pay under multicast/broadcast storms (§1).
    pub ip_forwarding: bool,
    /// Number of network interfaces (the paper's router had two).
    pub num_ifaces: usize,
    /// The SMP machine shape (1 CPU by default, which is the exact
    /// legacy single-engine code path).
    pub topology: Topology,
    /// Record per-packet latency distributions (total sojourn and
    /// per-stage residencies)? Costs a handful of histogram increments per
    /// delivered packet; timestamps are stamped either way.
    pub latency_tracking: bool,
    /// Periodic telemetry sampling (`None` = off, the default: no timeline
    /// is recorded and the clock-tick path pays nothing).
    pub telemetry: Option<TelemetryConfig>,
    /// Per-flow observability: the flow metrics registry, the online
    /// livelock detector, and the cycle-ledger flamegraph fold (`None` =
    /// off, the default: no registry is allocated, packets carry no flow
    /// key, the clock tick runs no detector, and the run is
    /// bit-identical to one without the observability subsystem).
    pub observe: Option<ObserveConfig>,
    /// Scheduled fault injection (`None` or an empty plan = off, the
    /// default: no fault events are scheduled, no recovery machinery is
    /// armed, and the run is byte-identical to one without the fault
    /// subsystem).
    pub faults: Option<FaultPlan>,
    /// Priority-aware flow classification (`None` = off, the default:
    /// no classifier runs, the NIC keeps its single ring / RSS-hash
    /// queue selection, no admission gate sheds, and the run is
    /// byte-identical to one without the classification subsystem).
    ///
    /// In polled mode the full mechanism engages: per-priority NIC
    /// rings, strict-priority drain with burst budgets, and the shed
    /// controller. In unmodified mode only the *accounting* half runs
    /// (per-class stats and inversion detection) — the interrupt path
    /// has no admission gate to protect anything, which is exactly the
    /// contrast `chaos --priority` demonstrates.
    pub classes: Option<ClassifyConfig>,
    /// Event-scheduler backend for the machine engine. Both backends
    /// dispatch in bit-identical order; [`SchedulerKind::Calendar`] (the
    /// default) is the fast one, [`SchedulerKind::Heap`] the reference
    /// oracle.
    pub scheduler: SchedulerKind,
    /// The cycle cost model.
    pub cost: CostModel,
}

impl KernelConfig {
    fn base(mode: Mode) -> Self {
        KernelConfig {
            mode,
            screend: None,
            local: None,
            intr_rate_limit: None,
            user_process: false,
            nic: NicConfig::default(),
            ipintrq_cap: 50,
            ifq_cap: 50,
            ifq_red: false,
            icmp_errors: false,
            ip_forwarding: true,
            num_ifaces: 2,
            topology: Topology::default(),
            latency_tracking: true,
            telemetry: None,
            observe: None,
            faults: None,
            classes: None,
            scheduler: SchedulerKind::default(),
            cost: CostModel::calibrated(),
        }
    }

    /// Starts a fluent builder, beginning from the unmodified
    /// interrupt-driven kernel with the paper's defaults. This is the one
    /// way to compose configurations; the named constructors below are
    /// deprecated shims over it.
    ///
    /// ```
    /// use livelock_core::poller::Quota;
    /// use livelock_kernel::config::{FeedbackConfig, KernelConfig, ScreendConfig};
    ///
    /// let cfg = KernelConfig::builder()
    ///     .polled(Quota::Limited(10))
    ///     .screend(ScreendConfig::default())
    ///     .feedback(FeedbackConfig::default())
    ///     .build();
    /// assert!(cfg.polled_config().unwrap().feedback.is_some());
    /// ```
    pub fn builder() -> KernelConfigBuilder {
        KernelConfigBuilder {
            cfg: KernelConfig::base(Mode::Unmodified {
                emulate_modified_structure: false,
            }),
            feedback: None,
            cycle_limit: None,
        }
    }

    /// The unmodified 4.2BSD-style kernel (Figure 6-1 filled circles).
    #[deprecated(since = "0.2.0", note = "use KernelConfig::builder()")]
    pub fn unmodified() -> Self {
        KernelConfig::builder().build()
    }

    /// The unmodified kernel forwarding through screend (Figure 6-1 open
    /// squares).
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().screend(ScreendConfig::default())"
    )]
    pub fn unmodified_with_screend() -> Self {
        KernelConfig::builder()
            .screend(ScreendConfig::default())
            .build()
    }

    /// The modified kernel "configured to act as if it were an unmodified
    /// system" (Figure 6-3 open circles).
    #[deprecated(since = "0.2.0", note = "use KernelConfig::builder().no_polling()")]
    pub fn no_polling() -> Self {
        KernelConfig::builder().no_polling().build()
    }

    /// The modified polling kernel with the given receive quota
    /// (Figure 6-3/6-5 curves).
    #[deprecated(since = "0.2.0", note = "use KernelConfig::builder().polled(quota)")]
    pub fn polled(rx_quota: Quota) -> Self {
        KernelConfig::builder().polled(rx_quota).build()
    }

    /// The modified kernel with screend, without queue-state feedback
    /// (Figure 6-4 squares).
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().polled(quota).screend(ScreendConfig::default())"
    )]
    pub fn polled_screend_no_feedback(rx_quota: Quota) -> Self {
        KernelConfig::builder()
            .polled(rx_quota)
            .screend(ScreendConfig::default())
            .build()
    }

    /// The modified kernel with screend and queue-state feedback
    /// (Figure 6-4 gray squares; quota 10 as in the paper's experiments).
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().polled(quota).screend(..).feedback(..)"
    )]
    pub fn polled_screend_feedback(rx_quota: Quota) -> Self {
        KernelConfig::builder()
            .polled(rx_quota)
            .screend(ScreendConfig::default())
            .feedback(FeedbackConfig::default())
            .build()
    }

    /// The Figure 7-1 configuration: modified kernel, cycle limiter at
    /// `threshold_frac`, with a compute-bound user process.
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().polled(..).cycle_limit(frac).user_process(true)"
    )]
    pub fn polled_cycle_limit(threshold_frac: f64) -> Self {
        KernelConfig::builder()
            .polled(Quota::Limited(5))
            .cycle_limit(threshold_frac)
            .user_process(true)
            .build()
    }

    /// The unmodified kernel with §5.1 interrupt rate limiting — the
    /// mitigation the paper says "prevents system saturation but might not
    /// guarantee progress".
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().intr_rate_limit(max_rate_hz, 4)"
    )]
    pub fn unmodified_rate_limited(max_rate_hz: f64) -> Self {
        KernelConfig::builder().intr_rate_limit(max_rate_hz, 4).build()
    }

    /// An end-system (UDP/RPC server) on the unmodified kernel: packets
    /// for the host are delivered to an application through a socket
    /// buffer.
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().local_delivery(..).ip_forwarding(false)"
    )]
    pub fn end_system_unmodified() -> Self {
        KernelConfig::builder()
            .local_delivery(LocalDeliveryConfig::default())
            .ip_forwarding(false)
            .build()
    }

    /// An end-system on the modified kernel, with socket-queue feedback.
    #[deprecated(
        since = "0.2.0",
        note = "use KernelConfig::builder().polled(..).local_delivery(..).ip_forwarding(false)"
    )]
    pub fn end_system_polled(rx_quota: Quota) -> Self {
        KernelConfig::builder()
            .polled(rx_quota)
            .local_delivery(LocalDeliveryConfig {
                feedback: Some(FeedbackConfig::default()),
                ..LocalDeliveryConfig::default()
            })
            .ip_forwarding(false)
            .build()
    }

    /// Returns the polled configuration, if this is a polled kernel.
    pub fn polled_config(&self) -> Option<&PolledConfig> {
        match &self.mode {
            Mode::Polled(p) => Some(p),
            Mode::Unmodified { .. } => None,
        }
    }
}


/// Fluent builder for [`KernelConfig`], started by
/// [`KernelConfig::builder`].
///
/// The builder begins from the paper's unmodified-kernel defaults; every
/// method overrides one knob and returns the builder. `feedback` and
/// `cycle_limit` are mode-independent to set (call order does not matter)
/// and are applied to the polled configuration at [`build`]
/// (they have no effect on an interrupt-driven kernel, which has neither
/// mechanism).
///
/// [`build`]: KernelConfigBuilder::build
#[derive(Clone, Debug)]
pub struct KernelConfigBuilder {
    cfg: KernelConfig,
    feedback: Option<FeedbackConfig>,
    cycle_limit: Option<f64>,
}

impl KernelConfigBuilder {
    /// Sets the forwarding-path implementation directly.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// The unmodified 4.2BSD interrupt-driven path (the starting state).
    pub fn unmodified(self) -> Self {
        self.mode(Mode::Unmodified {
            emulate_modified_structure: false,
        })
    }

    /// The modified kernel acting as if unmodified (Figure 6-3 open
    /// circles): the interrupt-driven path plus the restructured driver's
    /// small per-packet overhead.
    pub fn no_polling(self) -> Self {
        self.mode(Mode::Unmodified {
            emulate_modified_structure: true,
        })
    }

    /// The polling kernel with `rx_quota` for both receive and transmit
    /// callbacks (use [`mode`](Self::mode) with an explicit
    /// [`PolledConfig`] for asymmetric quotas).
    pub fn polled(self, rx_quota: Quota) -> Self {
        self.mode(Mode::Polled(PolledConfig {
            rx_quota,
            tx_quota: rx_quota,
            ..PolledConfig::default()
        }))
    }

    /// Routes forwarded packets through the user-mode screend process.
    pub fn screend(mut self, screend: ScreendConfig) -> Self {
        self.cfg.screend = Some(screend);
        self
    }

    /// Enables queue-state feedback (§6.6.1) on the screend queue.
    /// Applied at [`build`](Self::build) when the mode is polled.
    pub fn feedback(mut self, feedback: FeedbackConfig) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Enables the §7 CPU-cycle limiter at `threshold_frac` of each
    /// period. Applied at [`build`](Self::build) when the mode is polled.
    pub fn cycle_limit(mut self, threshold_frac: f64) -> Self {
        self.cycle_limit = Some(threshold_frac);
        self
    }

    /// Delivers packets addressed to the host to a local application
    /// (end-system mode).
    pub fn local_delivery(mut self, local: LocalDeliveryConfig) -> Self {
        self.cfg.local = Some(local);
        self
    }

    /// Limits the receive-interrupt arrival rate (§5.1).
    pub fn intr_rate_limit(mut self, max_rate_hz: f64, burst: u32) -> Self {
        self.cfg.intr_rate_limit = Some(IntrRateLimitConfig { max_rate_hz, burst });
        self
    }

    /// Runs the compute-bound user process (the Figure 7-1 competitor).
    pub fn user_process(mut self, on: bool) -> Self {
        self.cfg.user_process = on;
        self
    }

    /// Forward packets between interfaces (`false` = pure end-system).
    pub fn ip_forwarding(mut self, on: bool) -> Self {
        self.cfg.ip_forwarding = on;
        self
    }

    /// Originate paced ICMP errors for undeliverable packets.
    pub fn icmp_errors(mut self, on: bool) -> Self {
        self.cfg.icmp_errors = on;
        self
    }

    /// Applies RED early-drop admission on output queues.
    pub fn ifq_red(mut self, on: bool) -> Self {
        self.cfg.ifq_red = on;
        self
    }

    /// Records per-packet latency distributions (on by default).
    pub fn latency_tracking(mut self, on: bool) -> Self {
        self.cfg.latency_tracking = on;
        self
    }

    /// Enables the periodic telemetry sampler (off by default).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.cfg.telemetry = Some(cfg);
        self
    }

    /// Enables the per-flow observability layer (off by default): the
    /// flow metrics registry, the online livelock detector, and the
    /// cycle-ledger flamegraph fold.
    pub fn observe(mut self, cfg: ObserveConfig) -> Self {
        self.cfg.observe = Some(cfg);
        self
    }

    /// Schedules a fault-injection plan (off by default). An empty plan
    /// is equivalent to none.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Enables priority-aware flow classification (off by default): the
    /// deterministic classifier, per-priority NIC rings, the
    /// strict-priority drain and the SLO-guarded shed controller.
    pub fn classes(mut self, cfg: ClassifyConfig) -> Self {
        self.cfg.classes = Some(cfg);
        self
    }

    /// Selects the event-scheduler backend (default:
    /// [`SchedulerKind::Calendar`]). [`SchedulerKind::Heap`] pins the
    /// reference backend, e.g. for equivalence checks against the
    /// calendar queue.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.cfg.scheduler = kind;
        self
    }

    /// NIC ring geometry.
    pub fn nic(mut self, nic: NicConfig) -> Self {
        self.cfg.nic = nic;
        self
    }

    /// `ipintrq` length limit (unmodified kernel only).
    pub fn ipintrq_cap(mut self, cap: usize) -> Self {
        self.cfg.ipintrq_cap = cap;
        self
    }

    /// Per-interface output queue length limit.
    pub fn ifq_cap(mut self, cap: usize) -> Self {
        self.cfg.ifq_cap = cap;
        self
    }

    /// Number of network interfaces.
    pub fn num_ifaces(mut self, n: usize) -> Self {
        self.cfg.num_ifaces = n;
        self
    }

    /// Number of CPUs (1 = the legacy uniprocessor path).
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn ncpus(mut self, n: usize) -> Self {
        assert!(n >= 1, "a machine has at least one CPU");
        self.cfg.topology.ncpus = n;
        self
    }

    /// Enables work stealing between sibling CPUs (polled mode,
    /// `ncpus > 1` only; a no-op on one CPU).
    pub fn steal(mut self, on: bool) -> Self {
        self.cfg.topology.steal = on;
        self
    }

    /// The cycle cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Finalizes the configuration, folding pending feedback/cycle-limit
    /// settings into the polled mode.
    pub fn build(mut self) -> KernelConfig {
        if let Mode::Polled(p) = &mut self.cfg.mode {
            if self.feedback.is_some() {
                p.feedback = self.feedback;
            }
            if self.cycle_limit.is_some() {
                p.cycle_limit_frac = self.cycle_limit;
            }
        }
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_presets_match_paper() {
        let u = KernelConfig::builder().build();
        assert!(matches!(
            u.mode,
            Mode::Unmodified {
                emulate_modified_structure: false
            }
        ));
        assert!(u.screend.is_none());
        assert_eq!(u.ipintrq_cap, 50);
        assert_eq!(u.num_ifaces, 2);

        let s = KernelConfig::builder().screend(Default::default()).build();
        assert_eq!(s.screend.as_ref().unwrap().queue_cap, 32);

        let p = KernelConfig::builder().polled(Quota::Limited(5)).build();
        let pc = p.polled_config().unwrap();
        assert_eq!(pc.rx_quota, Quota::Limited(5));
        assert!(pc.feedback.is_none());

        let f = KernelConfig::builder()
            .polled(Quota::Limited(10))
            .screend(Default::default())
            .feedback(Default::default())
            .build();
        let fb = f.polled_config().unwrap().feedback.unwrap();
        assert_eq!(fb.hi_frac, 0.75);
        assert_eq!(fb.lo_frac, 0.25);
        assert_eq!(fb.timeout_ticks, 1);
        assert!(f.screend.is_some());

        let c = KernelConfig::builder()
            .polled(Quota::Limited(5))
            .cycle_limit(0.25)
            .user_process(true)
            .build();
        assert_eq!(c.polled_config().unwrap().cycle_limit_frac, Some(0.25));
        assert!(c.user_process);
    }

    /// `feedback`/`cycle_limit` are held pending until `build`, so the
    /// builder is order-independent: setting them before `polled` works.
    #[test]
    fn builder_is_order_independent() {
        let a = KernelConfig::builder()
            .feedback(FeedbackConfig::default())
            .cycle_limit(0.5)
            .screend(ScreendConfig::default())
            .polled(Quota::Limited(10))
            .build();
        let b = KernelConfig::builder()
            .polled(Quota::Limited(10))
            .screend(ScreendConfig::default())
            .feedback(FeedbackConfig::default())
            .cycle_limit(0.5)
            .build();
        let (pa, pb) = (a.polled_config().unwrap(), b.polled_config().unwrap());
        assert_eq!(pa.rx_quota, pb.rx_quota);
        assert_eq!(pa.cycle_limit_frac, pb.cycle_limit_frac);
        assert_eq!(pa.feedback.is_some(), pb.feedback.is_some());
    }

    /// The deprecated constructors are thin shims over the builder: every
    /// recipe must produce the same configuration it used to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_equal_builder_recipes() {
        let pairs: Vec<(KernelConfig, KernelConfig)> = vec![
            (KernelConfig::unmodified(), KernelConfig::builder().build()),
            (
                KernelConfig::unmodified_with_screend(),
                KernelConfig::builder().screend(Default::default()).build(),
            ),
            (
                KernelConfig::no_polling(),
                KernelConfig::builder().no_polling().build(),
            ),
            (
                KernelConfig::polled(Quota::Limited(7)),
                KernelConfig::builder().polled(Quota::Limited(7)).build(),
            ),
            (
                KernelConfig::polled_screend_no_feedback(Quota::Limited(10)),
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .screend(Default::default())
                    .build(),
            ),
            (
                KernelConfig::polled_screend_feedback(Quota::Limited(10)),
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .screend(Default::default())
                    .feedback(Default::default())
                    .build(),
            ),
            (
                KernelConfig::polled_cycle_limit(0.25),
                KernelConfig::builder()
                    .polled(Quota::Limited(5))
                    .cycle_limit(0.25)
                    .user_process(true)
                    .build(),
            ),
            (
                KernelConfig::unmodified_rate_limited(2_000.0),
                KernelConfig::builder().intr_rate_limit(2_000.0, 4).build(),
            ),
            (
                KernelConfig::end_system_unmodified(),
                KernelConfig::builder()
                    .local_delivery(Default::default())
                    .ip_forwarding(false)
                    .build(),
            ),
            (
                KernelConfig::end_system_polled(Quota::Limited(10)),
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .local_delivery(LocalDeliveryConfig {
                        feedback: Some(FeedbackConfig::default()),
                        ..Default::default()
                    })
                    .ip_forwarding(false)
                    .build(),
            ),
        ];
        for (i, (shim, built)) in pairs.iter().enumerate() {
            assert_eq!(
                format!("{shim:?}"),
                format!("{built:?}"),
                "recipe {i} diverged"
            );
        }
    }

    #[test]
    fn unmodified_has_no_polled_config() {
        assert!(KernelConfig::builder().build().polled_config().is_none());
        assert!(KernelConfig::builder()
            .no_polling()
            .build()
            .polled_config()
            .is_none());
    }

    #[test]
    fn topology_defaults_to_one_cpu_without_stealing() {
        let cfg = KernelConfig::builder().build();
        assert_eq!(cfg.topology, Topology::default());
        assert_eq!(cfg.topology.ncpus, 1);
        assert!(!cfg.topology.steal);

        let smp = KernelConfig::builder().ncpus(4).steal(true).build();
        assert_eq!(smp.topology.ncpus, 4);
        assert!(smp.topology.steal);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_is_rejected() {
        let _ = KernelConfig::builder().ncpus(0);
    }

    #[test]
    fn default_feedback_is_papers() {
        let fb = FeedbackConfig::default();
        assert_eq!((fb.hi_frac, fb.lo_frac, fb.timeout_ticks), (0.75, 0.25, 1));
    }
}
