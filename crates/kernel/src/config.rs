//! Kernel configuration: every knob the paper's experiments turn.

use livelock_core::poller::Quota;
use livelock_machine::cost::CostModel;
use livelock_machine::nic::NicConfig;
use livelock_net::filter::Filter;

/// Which forwarding-path implementation the kernel runs.
#[derive(Clone, Debug)]
pub enum Mode {
    /// The 4.2BSD interrupt-driven path (Figure 6-2).
    Unmodified {
        /// Model the "modified kernel configured to act as if it were an
        /// unmodified system" of Figure 6-3 (open circles): the same path
        /// with a small extra per-packet overhead from the restructured
        /// driver, which the paper observed to be slightly slower.
        emulate_modified_structure: bool,
    },
    /// The paper's polling kernel (§6.4).
    Polled(PolledConfig),
}

/// Configuration of the modified (polling) kernel.
#[derive(Clone, Copy, Debug)]
pub struct PolledConfig {
    /// Packet quota per received-packet callback (§6.6.2).
    pub rx_quota: Quota,
    /// Packet quota per transmit-done callback.
    pub tx_quota: Quota,
    /// Queue-state feedback around the screend queue (§6.6.1); `None`
    /// reproduces the "polling, no feedback" curve of Figure 6-4.
    pub feedback: Option<FeedbackConfig>,
    /// CPU-cycle limit for packet processing as a fraction of each period
    /// (§7); `None` disables the limiter.
    pub cycle_limit_frac: Option<f64>,
}

impl Default for PolledConfig {
    fn default() -> Self {
        PolledConfig {
            // The paper's no-screend experiments used 5-10; 10 is the value
            // used for the feedback experiments and inside the recommended
            // 10..20 band.
            rx_quota: Quota::Limited(10),
            tx_quota: Quota::Limited(10),
            feedback: None,
            cycle_limit_frac: None,
        }
    }
}

/// Queue-state feedback parameters (§6.6.1).
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// Inhibit input when the screend queue reaches this fraction full.
    pub hi_frac: f64,
    /// Resume input when it drains to this fraction.
    pub lo_frac: f64,
    /// Re-enable input after this many clock ticks regardless (the paper
    /// used one tick, ~1 ms, in case screend hangs).
    pub timeout_ticks: u32,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        // "the screening queue was limited to 32 packets, and we inhibited
        // input processing when the queue was 75% full ... re-enabled when
        // the screening queue becomes 25% full."
        FeedbackConfig {
            hi_frac: 0.75,
            lo_frac: 0.25,
            timeout_ticks: 1,
        }
    }
}

/// Interrupt arrival-rate limiting (§5.1), applied to receive interrupts.
#[derive(Clone, Copy, Debug)]
pub struct IntrRateLimitConfig {
    /// Maximum sustained receive-interrupt rate, per second.
    pub max_rate_hz: f64,
    /// Token-bucket burst size.
    pub burst: u32,
}

/// Configuration of local (end-system) delivery: packets addressed to the
/// host itself are queued on a bounded socket buffer and consumed by a
/// user-mode application process — the paper's NFS/RPC-server motivating
/// application (§2, §7.1).
#[derive(Clone, Copy, Debug)]
pub struct LocalDeliveryConfig {
    /// Socket receive buffer capacity, in packets.
    pub socket_cap: usize,
    /// Queue-state feedback on the socket buffer (polled mode only) — the
    /// paper suggests applying the §6.6.1 technique "to other queues in
    /// the system".
    pub feedback: Option<FeedbackConfig>,
    /// Send an RPC-style UDP reply for every delivered request (exercises
    /// the transmit path like an NFS server would).
    pub reply: bool,
}

impl Default for LocalDeliveryConfig {
    fn default() -> Self {
        LocalDeliveryConfig {
            socket_cap: 64,
            feedback: None,
            reply: true,
        }
    }
}

/// Configuration of the user-mode screend process.
#[derive(Clone, Debug)]
pub struct ScreendConfig {
    /// Capacity of the kernel queue feeding screend (paper: 32).
    pub queue_cap: usize,
    /// The screening rules. The paper ran screend "configured to accept
    /// all packets".
    pub rules: Filter,
}

impl Default for ScreendConfig {
    fn default() -> Self {
        ScreendConfig {
            queue_cap: 32,
            rules: Filter::accept_all(),
        }
    }
}

/// Full kernel configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Forwarding-path implementation.
    pub mode: Mode,
    /// Route packets through the user-mode screend process?
    pub screend: Option<ScreendConfig>,
    /// Deliver packets addressed to the host to a local application?
    pub local: Option<LocalDeliveryConfig>,
    /// Limit the receive-interrupt arrival rate (§5.1)?
    pub intr_rate_limit: Option<IntrRateLimitConfig>,
    /// Run a compute-bound user process (the Figure 7-1 competitor)?
    pub user_process: bool,
    /// NIC ring geometry.
    pub nic: NicConfig,
    /// `ipintrq` length limit (BSD's `IFQ_MAXLEN` default of 50); only the
    /// unmodified kernel has this queue.
    pub ipintrq_cap: usize,
    /// Per-interface output queue length limit.
    pub ifq_cap: usize,
    /// Apply RED early-drop admission on output queues instead of pure
    /// drop-tail (the §8-cited alternative policy)?
    pub ifq_red: bool,
    /// Originate ICMP errors (Time Exceeded, Destination Unreachable) for
    /// undeliverable packets, rate-paced as real routers do?
    pub icmp_errors: bool,
    /// Forward packets between interfaces (a router)? When `false` the
    /// host is a pure end-system: traffic not addressed to it is discarded
    /// after input processing — the cost the paper's "innocent-bystander
    /// hosts" pay under multicast/broadcast storms (§1).
    pub ip_forwarding: bool,
    /// Number of network interfaces (the paper's router had two).
    pub num_ifaces: usize,
    /// The cycle cost model.
    pub cost: CostModel,
}

impl KernelConfig {
    fn base(mode: Mode) -> Self {
        KernelConfig {
            mode,
            screend: None,
            local: None,
            intr_rate_limit: None,
            user_process: false,
            nic: NicConfig::default(),
            ipintrq_cap: 50,
            ifq_cap: 50,
            ifq_red: false,
            icmp_errors: false,
            ip_forwarding: true,
            num_ifaces: 2,
            cost: CostModel::calibrated(),
        }
    }

    /// The unmodified 4.2BSD-style kernel (Figure 6-1 filled circles).
    pub fn unmodified() -> Self {
        KernelConfig::base(Mode::Unmodified {
            emulate_modified_structure: false,
        })
    }

    /// The unmodified kernel forwarding through screend (Figure 6-1 open
    /// squares).
    pub fn unmodified_with_screend() -> Self {
        let mut c = KernelConfig::unmodified();
        c.screend = Some(ScreendConfig::default());
        c
    }

    /// The modified kernel "configured to act as if it were an unmodified
    /// system" (Figure 6-3 open circles).
    pub fn no_polling() -> Self {
        KernelConfig::base(Mode::Unmodified {
            emulate_modified_structure: true,
        })
    }

    /// The modified polling kernel with the given receive quota
    /// (Figure 6-3/6-5 curves).
    pub fn polled(rx_quota: Quota) -> Self {
        KernelConfig::base(Mode::Polled(PolledConfig {
            rx_quota,
            tx_quota: rx_quota,
            ..PolledConfig::default()
        }))
    }

    /// The modified kernel with screend, without queue-state feedback
    /// (Figure 6-4 squares).
    pub fn polled_screend_no_feedback(rx_quota: Quota) -> Self {
        let mut c = KernelConfig::polled(rx_quota);
        c.screend = Some(ScreendConfig::default());
        c
    }

    /// The modified kernel with screend and queue-state feedback
    /// (Figure 6-4 gray squares; quota 10 as in the paper's experiments).
    pub fn polled_screend_feedback(rx_quota: Quota) -> Self {
        let mut c = KernelConfig::polled(rx_quota);
        if let Mode::Polled(p) = &mut c.mode {
            p.feedback = Some(FeedbackConfig::default());
        }
        c.screend = Some(ScreendConfig::default());
        c
    }

    /// The Figure 7-1 configuration: modified kernel, cycle limiter at
    /// `threshold_frac`, with a compute-bound user process.
    pub fn polled_cycle_limit(threshold_frac: f64) -> Self {
        let mut c = KernelConfig::polled(Quota::Limited(5));
        if let Mode::Polled(p) = &mut c.mode {
            p.cycle_limit_frac = Some(threshold_frac);
        }
        c.user_process = true;
        c
    }

    /// The unmodified kernel with §5.1 interrupt rate limiting — the
    /// mitigation the paper says "prevents system saturation but might not
    /// guarantee progress".
    pub fn unmodified_rate_limited(max_rate_hz: f64) -> Self {
        let mut c = KernelConfig::unmodified();
        c.intr_rate_limit = Some(IntrRateLimitConfig {
            max_rate_hz,
            burst: 4,
        });
        c
    }

    /// An end-system (UDP/RPC server) on the unmodified kernel: packets
    /// for the host are delivered to an application through a socket
    /// buffer.
    pub fn end_system_unmodified() -> Self {
        let mut c = KernelConfig::unmodified();
        c.local = Some(LocalDeliveryConfig::default());
        c.ip_forwarding = false;
        c
    }

    /// An end-system on the modified kernel, with socket-queue feedback.
    pub fn end_system_polled(rx_quota: Quota) -> Self {
        let mut c = KernelConfig::polled(rx_quota);
        c.local = Some(LocalDeliveryConfig {
            feedback: Some(FeedbackConfig::default()),
            ..LocalDeliveryConfig::default()
        });
        c.ip_forwarding = false;
        c
    }

    /// Returns the polled configuration, if this is a polled kernel.
    pub fn polled_config(&self) -> Option<&PolledConfig> {
        match &self.mode {
            Mode::Polled(p) => Some(p),
            Mode::Unmodified { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let u = KernelConfig::unmodified();
        assert!(matches!(
            u.mode,
            Mode::Unmodified {
                emulate_modified_structure: false
            }
        ));
        assert!(u.screend.is_none());
        assert_eq!(u.ipintrq_cap, 50);
        assert_eq!(u.num_ifaces, 2);

        let s = KernelConfig::unmodified_with_screend();
        assert_eq!(s.screend.as_ref().unwrap().queue_cap, 32);

        let p = KernelConfig::polled(Quota::Limited(5));
        let pc = p.polled_config().unwrap();
        assert_eq!(pc.rx_quota, Quota::Limited(5));
        assert!(pc.feedback.is_none());

        let f = KernelConfig::polled_screend_feedback(Quota::Limited(10));
        let fb = f.polled_config().unwrap().feedback.unwrap();
        assert_eq!(fb.hi_frac, 0.75);
        assert_eq!(fb.lo_frac, 0.25);
        assert_eq!(fb.timeout_ticks, 1);
        assert!(f.screend.is_some());

        let c = KernelConfig::polled_cycle_limit(0.25);
        assert_eq!(c.polled_config().unwrap().cycle_limit_frac, Some(0.25));
        assert!(c.user_process);
    }

    #[test]
    fn unmodified_has_no_polled_config() {
        assert!(KernelConfig::unmodified().polled_config().is_none());
        assert!(KernelConfig::no_polling().polled_config().is_none());
    }

    #[test]
    fn default_feedback_is_papers() {
        let fb = FeedbackConfig::default();
        assert_eq!((fb.hi_frac, fb.lo_frac, fb.timeout_ticks), (0.75, 0.25, 1));
    }
}
