//! Per-trial kernel statistics: where every packet went.
//!
//! The paper attributes loss to specific queues ("packets are dropped at a
//! queue between processing steps that occur at different priorities") and
//! measures delivered throughput by sampling the output interface's `Opkts`
//! counter over the trial. [`KernelStats`] keeps the same books.

use livelock_net::pool::PoolStats;
use livelock_net::{FlowKey, StageStamps, TrafficClass};
use livelock_sim::{Cycles, Freq, HdrHistogram, Nanos, RateWindow};

use crate::flows::FlowRegistry;
use crate::telemetry::Timeline;

/// Why a packet died. Every drop path in the kernel records one of these
/// through [`KernelStats::record_drop`], giving the per-cause taxonomy the
/// paper's loss-attribution argument (§3, §6.2) needs and that the legacy
/// per-queue counters blur (e.g. an output-queue drop-tail drop vs a RED
/// early drop both land in `ifq_drops`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// RX ring overflow: the host was too slow to drain the ring. The
    /// cheapest possible drop — no host cycles were invested.
    RxRingFull,
    /// RX ring overflow while queue-state feedback had deliberately
    /// inhibited input processing (§6.4) — the drop the feedback *wants*,
    /// at the cheapest point.
    FeedbackInhibit,
    /// `ipintrq` overflow (unmodified kernel): device-level work wasted.
    IpintrqFull,
    /// screend queue overflow: device + IP-level work wasted.
    ScreendQueueFull,
    /// Deliberately denied by the screend rule set (not a malfunction).
    ScreendDenied,
    /// Socket buffer overflow (end-system mode).
    SocketQueueFull,
    /// Output interface queue drop-tail overflow.
    OutputQueueFull,
    /// RED early drop on the output queue (§6.6).
    RedEarlyDrop,
    /// Not a router and not locally destined — the "innocent bystander"
    /// discard of §1's broadcast storms.
    Bystander,
    /// TTL expired while forwarding (Time Exceeded originated).
    TtlExpired,
    /// No route to the destination (Net Unreachable originated).
    NoRoute,
    /// Route found but no ARP entry for the next hop.
    NoArp,
    /// Unparseable or corrupt IP header.
    BadHeader,
    /// Locally destined but no application listening on the port.
    NoListener,
    /// Fragment reassembly timed out before the datagram completed
    /// (reserved: the reassembler currently runs outside the router path).
    ReassemblyTimeout,
    /// Shed at admission by the class-aware gate (DESIGN.md §14): the
    /// shed controller decided this packet's [`TrafficClass`] is not
    /// worth host cycles while the downstream bottleneck is overloaded.
    /// Like [`DropReason::FeedbackInhibit`] this is a drop the kernel
    /// *wants*, taken at the cheapest point. Recording is confined to
    /// the admission-gate module by simlint's `class-discipline` rule.
    ClassShed {
        /// The class that was shed (`Bulk` first; never `Control`).
        class: TrafficClass,
    },
}

impl DropReason {
    /// Every reason, in reporting order (cheapest drop first).
    pub const ALL: [DropReason; 18] = [
        DropReason::RxRingFull,
        DropReason::FeedbackInhibit,
        DropReason::ClassShed {
            class: TrafficClass::Bulk,
        },
        DropReason::ClassShed {
            class: TrafficClass::Realtime,
        },
        DropReason::ClassShed {
            class: TrafficClass::Control,
        },
        DropReason::IpintrqFull,
        DropReason::ScreendQueueFull,
        DropReason::ScreendDenied,
        DropReason::SocketQueueFull,
        DropReason::OutputQueueFull,
        DropReason::RedEarlyDrop,
        DropReason::Bystander,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::NoArp,
        DropReason::BadHeader,
        DropReason::NoListener,
        DropReason::ReassemblyTimeout,
    ];

    /// Short stable name for tables and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::RxRingFull => "rx-ring-full",
            DropReason::FeedbackInhibit => "feedback-inhibit",
            DropReason::IpintrqFull => "ipintrq-full",
            DropReason::ScreendQueueFull => "screend-q-full",
            DropReason::ScreendDenied => "screend-denied",
            DropReason::SocketQueueFull => "socket-q-full",
            DropReason::OutputQueueFull => "outq-full",
            DropReason::RedEarlyDrop => "red-early",
            DropReason::Bystander => "bystander",
            DropReason::TtlExpired => "ttl-expired",
            DropReason::NoRoute => "no-route",
            DropReason::NoArp => "no-arp",
            DropReason::BadHeader => "bad-header",
            DropReason::NoListener => "no-listener",
            DropReason::ReassemblyTimeout => "reasm-timeout",
            DropReason::ClassShed {
                class: TrafficClass::Control,
            } => "class-shed-control",
            DropReason::ClassShed {
                class: TrafficClass::Realtime,
            } => "class-shed-realtime",
            DropReason::ClassShed {
                class: TrafficClass::Bulk,
            } => "class-shed-bulk",
        }
    }

    fn index(self) -> usize {
        DropReason::ALL
            .iter()
            .position(|r| *r == self)
            // simlint: allow(panic-freedom): ALL enumerates every variant; a miss is a compile-time taxonomy bug
            .expect("reason listed in ALL")
    }
}

/// Per-[`DropReason`] drop counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DropStats {
    counts: [u64; DropReason::ALL.len()],
}

impl DropStats {
    /// Creates zeroed drop statistics.
    pub fn new() -> Self {
        DropStats::default()
    }

    /// Counts one drop for `reason`.
    pub fn record(&mut self, reason: DropReason) {
        self.counts[reason.index()] += 1;
    }

    /// Returns the count for one reason.
    pub fn get(&self, reason: DropReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds another `DropStats` into this one (SMP aggregation).
    pub fn merge(&mut self, other: &DropStats) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Iterates `(reason, count)` over reasons with a nonzero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&r, &c)| (r, c))
    }
}

/// A stage of the packet lifecycle, for per-stage latency attribution.
///
/// Stages partition a delivered packet's sojourn: the residencies derived
/// from its [`StageStamps`] by [`stage_residencies`] sum exactly to its
/// wire-to-wire latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Waiting in the RX ring before the host started on the frame.
    Ring,
    /// Device-level processing plus `ipintrq` wait (zero on the polled
    /// process-to-completion path).
    Ipq,
    /// IP forwarding work, including any interrupt preemption it suffered.
    Fwd,
    /// Screend or socket queue: wait plus filter/application processing.
    Sq,
    /// Waiting in the output interface queue behind earlier frames.
    Outq,
    /// Serializing onto the output wire.
    Wire,
}

impl Stage {
    /// Every stage, in packet-lifecycle order.
    pub const ALL: [Stage; 6] = [
        Stage::Ring,
        Stage::Ipq,
        Stage::Fwd,
        Stage::Sq,
        Stage::Outq,
        Stage::Wire,
    ];

    /// Short stable name for tables and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Ring => "ring",
            Stage::Ipq => "ipq",
            Stage::Fwd => "fwd",
            Stage::Sq => "sq",
            Stage::Outq => "outq",
            Stage::Wire => "wire",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Ring => 0,
            Stage::Ipq => 1,
            Stage::Fwd => 2,
            Stage::Sq => 3,
            Stage::Outq => 4,
            Stage::Wire => 5,
        }
    }
}

/// Decomposes one delivered packet's sojourn `[arrived, end)` into
/// per-stage residencies using its stamps.
///
/// The walk advances a boundary pointer through the set stamps in
/// lifecycle order and charges each gap to the stage it crossed; unset
/// stamps collapse their stage to zero. By construction the six
/// residencies always sum to exactly `end - arrived`.
pub fn stage_residencies(arrived: Cycles, stamps: &StageStamps, end: Cycles) -> [Cycles; 6] {
    let mut res = [Cycles::ZERO; 6];
    let mut prev = arrived;
    let mut charge = |stage: Stage, stamp: Cycles| {
        if StageStamps::is_set(stamp) {
            res[stage.index()] = stamp.saturating_sub(prev);
            prev = stamp;
        }
    };
    charge(Stage::Ring, stamps.ring_deq);
    charge(Stage::Ipq, stamps.fwd_start);
    charge(Stage::Fwd, stamps.fwd_done);
    charge(Stage::Sq, stamps.sq_deq);
    charge(Stage::Outq, stamps.tx_start);
    res[Stage::Wire.index()] = end.saturating_sub(prev);
    res
}

/// Latency distributions for delivered packets: the total wire-to-wire
/// sojourn plus a per-[`Stage`] residency breakdown, all as HDR-style
/// histograms (p50/p90/p99/p99.9 within ~3%).
///
/// All storage preallocates in [`LatencyStats::new`]; recording a packet
/// never allocates.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyStats {
    /// Total sojourn (arrival on the input wire to delivery).
    pub total: HdrHistogram,
    stages: [HdrHistogram; 6],
}

impl LatencyStats {
    /// Creates empty, fully preallocated latency statistics.
    pub fn new() -> Self {
        LatencyStats {
            total: HdrHistogram::new(),
            stages: std::array::from_fn(|_| HdrHistogram::new()),
        }
    }

    /// The residency distribution for one stage.
    pub fn stage(&self, s: Stage) -> &HdrHistogram {
        &self.stages[s.index()]
    }

    /// Records one delivered packet: total sojourn `[arrived, end)` plus
    /// its per-stage decomposition (works for both forwarded packets,
    /// where `end` is wire-TX completion, and locally delivered ones,
    /// where `end` is the application consuming the datagram).
    pub fn record_delivery(
        &mut self,
        arrived: Cycles,
        stamps: &StageStamps,
        end: Cycles,
        freq: Freq,
    ) {
        let total = end.saturating_sub(arrived);
        let res = stage_residencies(arrived, stamps, end);
        debug_assert_eq!(
            res.iter().copied().sum::<Cycles>(),
            total,
            "stage residencies must telescope to the total sojourn"
        );
        // Seven conversions per delivery share one divisor; hoist the
        // exact multiplier (identical results) instead of dividing seven
        // times.
        let exact = freq.exact_nanos_per_cycle().map(|k| (k, u64::MAX / k));
        let ns = |c: Cycles| match exact {
            Some((k, lim)) if c.raw() <= lim => Nanos::new(c.raw() * k),
            _ => freq.nanos_from_cycles(c),
        };
        self.total.record(ns(total));
        for (h, c) in self.stages.iter_mut().zip(res) {
            h.record(ns(c));
        }
    }

    /// Number of delivered packets recorded.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// `true` when no packet has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// Mean total sojourn.
    pub fn mean(&self) -> Nanos {
        self.total.mean()
    }

    /// Standard deviation of the total sojourn (jitter proxy).
    pub fn jitter(&self) -> Nanos {
        self.total.jitter()
    }

    /// Minimum total sojourn.
    pub fn min(&self) -> Nanos {
        self.total.min()
    }

    /// Maximum total sojourn.
    pub fn max(&self) -> Nanos {
        self.total.max()
    }

    /// Upper bound for the q-quantile of the total sojourn.
    pub fn quantile(&self, q: f64) -> Nanos {
        self.total.quantile(q)
    }

    /// Folds another `LatencyStats` into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.total.merge(&other.total);
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

/// Fault-injection bookkeeping: what was injected and what the recovery
/// machinery did about it. All counters are *CPU-class-neutral* — fault
/// bookkeeping consumes no ledger cycles, so the conserved cycle ledger
/// and the packet-conservation check hold under every fault kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events injected (of any kind).
    pub injected: u64,
    /// Device interrupts suppressed (lost RX/TX edges).
    pub lost_intrs: u64,
    /// Spurious device interrupts delivered with no work pending.
    pub spurious_intrs: u64,
    /// Frames damaged by descriptor corruption or in-flight mutation.
    pub mutated_frames: u64,
    /// Garbage frames synthesized by overrun storms.
    pub storm_frames: u64,
    /// Clock ticks skewed early or late.
    pub clock_jitters: u64,
    /// Link-flap events (carrier loss windows).
    pub link_flaps: u64,
    /// Frames lost on the wire while a link was down (never reached the
    /// NIC, so they are outside packet conservation by construction).
    pub link_down_losses: u64,
    /// Screend stall events injected.
    pub screend_stalls: u64,
    /// Screend crash events injected.
    pub screend_crashes: u64,
    /// Packets flushed from the screend queue by crashes.
    pub crash_flushed: u64,
    /// Stalled/crashed screend restarts completed (backoff expiries).
    pub stall_recoveries: u64,
    /// Device interrupts reposted by the driver watchdog after a lost
    /// edge left latched work with no wakeup.
    pub intr_reposts: u64,
    /// Stuck gate reasons force-cleared by the gate watchdog.
    pub watchdog_unwedges: u64,
}

impl FaultStats {
    /// Folds another `FaultStats` into this one (SMP aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.lost_intrs += other.lost_intrs;
        self.spurious_intrs += other.spurious_intrs;
        self.mutated_frames += other.mutated_frames;
        self.storm_frames += other.storm_frames;
        self.clock_jitters += other.clock_jitters;
        self.link_flaps += other.link_flaps;
        self.link_down_losses += other.link_down_losses;
        self.screend_stalls += other.screend_stalls;
        self.screend_crashes += other.screend_crashes;
        self.crash_flushed += other.crash_flushed;
        self.stall_recoveries += other.stall_recoveries;
        self.intr_reposts += other.intr_reposts;
        self.watchdog_unwedges += other.watchdog_unwedges;
    }
}

/// One traffic class's books: where its packets went and how long the
/// delivered ones took.
#[derive(Clone, Debug)]
pub struct ClassCounters {
    /// Wire arrivals classified into this class.
    pub arrived: u64,
    /// Packets of this class delivered (wire transmit or local
    /// consumption).
    pub delivered: u64,
    /// Packets of this class shed at admission by the gate.
    pub shed: u64,
    /// Wire-to-delivery sojourn distribution (whole trial).
    pub latency: HdrHistogram,
    /// Sojourns recorded since the last [`ClassStats::take_window_p99`]
    /// — the detector's sliding SLO window.
    window_latency: HdrHistogram,
    /// Deliveries inside the measurement window, for per-class rates.
    pub window: Option<RateWindow>,
}

impl ClassCounters {
    fn new() -> Self {
        ClassCounters {
            arrived: 0,
            delivered: 0,
            shed: 0,
            latency: HdrHistogram::new(),
            window_latency: HdrHistogram::new(),
            window: None,
        }
    }
}

/// Per-[`TrafficClass`] statistics, allocated once when classification
/// is enabled (`None` on [`KernelStats::class`] otherwise — the
/// classless run carries no per-class books and is byte-identical to a
/// build without them).
#[derive(Clone, Debug)]
pub struct ClassStats {
    classes: [ClassCounters; TrafficClass::COUNT],
}

impl ClassStats {
    /// Creates zeroed per-class statistics.
    pub fn new() -> Self {
        ClassStats {
            classes: std::array::from_fn(|_| ClassCounters::new()),
        }
    }

    /// The books for one class.
    pub fn get(&self, c: TrafficClass) -> &ClassCounters {
        &self.classes[c.index()]
    }

    /// Counts one classified wire arrival.
    pub fn record_arrival(&mut self, c: TrafficClass) {
        self.classes[c.index()].arrived += 1;
    }

    /// Counts one classified delivery at time `end`, with its sojourn
    /// `[arrived, end)` recorded in the detector-window distribution
    /// and — when the delivery falls inside the measurement window
    /// (always, before [`ClassStats::set_window`] installs one) — in
    /// the per-class latency distribution. Excluding warm-up matters
    /// here more than for the aggregate histograms: the shed
    /// controller needs a few clock ticks to first engage, and those
    /// start-of-trial sojourns would otherwise dominate a p99 judged
    /// against a per-class SLO.
    pub fn record_delivery(
        &mut self,
        c: TrafficClass,
        arrived: Cycles,
        end: Cycles,
        freq: Freq,
    ) {
        let cc = &mut self.classes[c.index()];
        cc.delivered += 1;
        let ns = freq.nanos_from_cycles(end.saturating_sub(arrived));
        cc.window_latency.record(ns);
        let in_window = cc.window.is_none_or(|w| {
            let (start, wend) = w.bounds();
            end >= start && end < wend
        });
        if in_window {
            cc.latency.record(ns);
        }
        if let Some(w) = &mut cc.window {
            w.record(end);
        }
    }

    /// Counts one shed (called from [`KernelStats::record_drop`], the
    /// single mutation path for drop accounting).
    fn record_shed(&mut self, c: TrafficClass) {
        self.classes[c.index()].shed += 1;
    }

    /// Drains the detector's sliding window for class `c`: returns the
    /// `(samples, p99)` of sojourns recorded since the previous call
    /// and resets the window in place (no allocation).
    pub fn take_window_p99(&mut self, c: TrafficClass) -> (u64, Nanos) {
        let w = &mut self.classes[c.index()].window_latency;
        let out = (w.count(), w.quantile(0.99));
        w.reset();
        out
    }

    /// Installs the measurement window `[start, end)` on every class.
    pub fn set_window(&mut self, start: Cycles, end: Cycles) {
        for cc in &mut self.classes {
            cc.window = Some(RateWindow::new(start, end));
        }
    }

    /// Delivered rate of class `c` inside the measurement window, pkts/s.
    pub fn delivered_pps(&self, c: TrafficClass, freq: Freq) -> f64 {
        self.classes[c.index()]
            .window
            .map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Folds another `ClassStats` into this one (SMP aggregation).
    pub fn merge(&mut self, other: &ClassStats) {
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.arrived += b.arrived;
            a.delivered += b.delivered;
            a.shed += b.shed;
            a.latency.merge(&b.latency);
            a.window_latency.merge(&b.window_latency);
            match (&mut a.window, &b.window) {
                (Some(wa), Some(wb)) => wa.merge(wb),
                (None, Some(wb)) => a.window = Some(*wb),
                _ => {}
            }
        }
    }
}

impl Default for ClassStats {
    fn default() -> Self {
        ClassStats::new()
    }
}

/// Counters and distributions collected by the router kernel during a run.
///
/// The per-queue drop counters are private: [`KernelStats::record_drop`]
/// is the only mutation path (it keeps them in sync with the
/// [`DropReason`] taxonomy), and the same-named getter methods are the
/// read path. CI enforces this by grepping for direct pushes.
#[derive(Clone, Debug)]
pub struct KernelStats {
    /// Frames that finished arriving on input wires (offered load actually
    /// presented to the NICs).
    pub arrived: u64,
    /// Frames dropped because a receive ring was full (free drops at the
    /// interface). Read via [`KernelStats::rx_ring_drops`].
    rx_ring_drops: u64,
    /// Packets shed at admission by the class-aware gate — free,
    /// deliberate drops (like feedback inhibition, the kernel chose not
    /// to invest work). Read via [`KernelStats::class_shed_drops`].
    class_shed_drops: u64,
    /// Packets dropped at the `ipintrq` (unmodified kernel only) — each one
    /// wasted device-level work. Read via [`KernelStats::ipintrq_drops`].
    ipintrq_drops: u64,
    /// Packets dropped at the screend queue — each one wasted device +
    /// IP-level work. Read via [`KernelStats::screend_q_drops`].
    screend_q_drops: u64,
    /// Packets denied by the screening rules (not a malfunction). Read via
    /// [`KernelStats::screend_denied`].
    screend_denied: u64,
    /// Packets dropped at an output interface queue — wasted everything
    /// but transmission. Read via [`KernelStats::ifq_drops`].
    ifq_drops: u64,
    /// Of the output-queue drops, how many were RED early drops. Read via
    /// [`KernelStats::red_drops`].
    red_drops: u64,
    /// Packets dropped at the local socket buffer (end-system mode). Read
    /// via [`KernelStats::socket_q_drops`].
    socket_q_drops: u64,
    /// Packets consumed by the local application (end-system mode).
    pub app_delivered: u64,
    /// Reply packets originated by the local application.
    pub replies_created: u64,
    /// ICMP error packets originated by the router.
    pub icmp_errors_sent: u64,
    /// ICMP error generation suppressed by pacing.
    pub icmp_suppressed: u64,
    /// Packets discarded because the host is not a router (end-system
    /// mode) and the destination was not local — the "innocent bystander"
    /// cost of §1's multicast/broadcast storms. Read via
    /// [`KernelStats::bystander_drops`].
    bystander_drops: u64,
    /// ARP frames consumed by the host (requests, gratuitous, replies).
    pub arp_handled: u64,
    /// ARP replies originated by the host.
    pub arp_replies: u64,
    /// Packets dropped by the forwarding code (bad checksum, TTL, no
    /// route, no ARP entry). Read via [`KernelStats::fwd_errors`].
    fwd_errors: u64,
    /// Frames fully transmitted on output wires (the `Opkts` the paper
    /// counts).
    pub transmitted: u64,
    /// Latency distributions (total sojourn + per-stage residencies) of
    /// delivered packets.
    pub latency: LatencyStats,
    /// Per-cause drop taxonomy; the legacy per-queue counters above stay
    /// in sync through [`KernelStats::record_drop`].
    pub drops: DropStats,
    /// Transmissions inside the measurement window.
    pub tx_window: Option<RateWindow>,
    /// Arrivals inside the measurement window.
    pub arrival_window: Option<RateWindow>,
    /// Local application deliveries inside the measurement window.
    pub app_window: Option<RateWindow>,
    /// Work units completed by the compute-bound user process.
    pub user_chunks: u64,
    /// Clock ticks observed.
    pub ticks: u64,
    /// Frame-pool occupancy counters, when the kernel allocates packet
    /// buffers from a [`livelock_net::FramePool`] (refreshed on every
    /// clock tick and at trial end).
    pub pool: Option<PoolStats>,
    /// The telemetry timeline, when the sampler is enabled via
    /// [`KernelConfig::telemetry`](crate::config::KernelConfig::telemetry).
    pub timeline: Option<Timeline>,
    /// The per-flow metrics registry, when the observability layer is
    /// enabled via
    /// [`KernelConfig::observe`](crate::config::KernelConfig::observe).
    /// All mutation goes through the `flow_*` / `record_drop_for` hooks
    /// below, which are no-ops while this is `None`.
    pub flows: Option<FlowRegistry>,
    /// Fault-injection and recovery bookkeeping (all zero on clean runs).
    pub fault: FaultStats,
    /// Per-traffic-class books, allocated when flow classification is
    /// enabled via
    /// [`KernelConfig::classes`](crate::config::KernelConfig::classes).
    /// All mutation goes through [`KernelStats::record_drop`] and the
    /// `class_*` hooks below, which are no-ops while this is `None`.
    pub class: Option<ClassStats>,
}

impl KernelStats {
    /// Creates zeroed statistics with no measurement window.
    pub fn new() -> Self {
        KernelStats {
            arrived: 0,
            rx_ring_drops: 0,
            class_shed_drops: 0,
            ipintrq_drops: 0,
            screend_q_drops: 0,
            screend_denied: 0,
            ifq_drops: 0,
            red_drops: 0,
            socket_q_drops: 0,
            app_delivered: 0,
            replies_created: 0,
            icmp_errors_sent: 0,
            icmp_suppressed: 0,
            bystander_drops: 0,
            arp_handled: 0,
            arp_replies: 0,
            fwd_errors: 0,
            transmitted: 0,
            latency: LatencyStats::new(),
            drops: DropStats::new(),
            tx_window: None,
            arrival_window: None,
            app_window: None,
            user_chunks: 0,
            ticks: 0,
            pool: None,
            timeline: None,
            flows: None,
            fault: FaultStats::default(),
            class: None,
        }
    }

    /// Packets shed at admission by the class-aware gate.
    pub fn class_shed_drops(&self) -> u64 {
        self.class_shed_drops
    }

    /// Frames dropped because a receive ring was full.
    pub fn rx_ring_drops(&self) -> u64 {
        self.rx_ring_drops
    }

    /// Packets dropped at the `ipintrq` (unmodified kernel only).
    pub fn ipintrq_drops(&self) -> u64 {
        self.ipintrq_drops
    }

    /// Packets dropped at the screend queue.
    pub fn screend_q_drops(&self) -> u64 {
        self.screend_q_drops
    }

    /// Packets denied by the screening rules.
    pub fn screend_denied(&self) -> u64 {
        self.screend_denied
    }

    /// Packets dropped at an output interface queue.
    pub fn ifq_drops(&self) -> u64 {
        self.ifq_drops
    }

    /// Of the output-queue drops, how many were RED early drops.
    pub fn red_drops(&self) -> u64 {
        self.red_drops
    }

    /// Packets dropped at the local socket buffer (end-system mode).
    pub fn socket_q_drops(&self) -> u64 {
        self.socket_q_drops
    }

    /// Packets discarded as innocent-bystander traffic (end-system mode).
    pub fn bystander_drops(&self) -> u64 {
        self.bystander_drops
    }

    /// Packets dropped by the forwarding code (bad checksum, TTL, no
    /// route, no ARP entry).
    pub fn fwd_errors(&self) -> u64 {
        self.fwd_errors
    }

    /// Installs the measurement window `[start, end)` for rate reporting.
    pub fn set_window(&mut self, start: Cycles, end: Cycles) {
        self.tx_window = Some(RateWindow::new(start, end));
        self.arrival_window = Some(RateWindow::new(start, end));
        self.app_window = Some(RateWindow::new(start, end));
        if let Some(cs) = &mut self.class {
            cs.set_window(start, end);
        }
    }

    /// Records a drop: bumps the per-cause taxonomy *and* the matching
    /// legacy per-queue counter, so the two views never disagree.
    pub fn record_drop(&mut self, reason: DropReason) {
        self.drops.record(reason);
        match reason {
            DropReason::RxRingFull | DropReason::FeedbackInhibit => self.rx_ring_drops += 1,
            DropReason::IpintrqFull => self.ipintrq_drops += 1,
            DropReason::ScreendQueueFull => self.screend_q_drops += 1,
            DropReason::ScreendDenied => self.screend_denied += 1,
            DropReason::SocketQueueFull => self.socket_q_drops += 1,
            DropReason::OutputQueueFull => self.ifq_drops += 1,
            DropReason::RedEarlyDrop => {
                self.ifq_drops += 1;
                self.red_drops += 1;
            }
            DropReason::Bystander => self.bystander_drops += 1,
            DropReason::TtlExpired
            | DropReason::NoRoute
            | DropReason::NoArp
            | DropReason::BadHeader
            | DropReason::NoListener
            | DropReason::ReassemblyTimeout => self.fwd_errors += 1,
            DropReason::ClassShed { class } => {
                self.class_shed_drops += 1;
                if let Some(cs) = &mut self.class {
                    cs.record_shed(class);
                }
            }
        }
    }

    /// Records a drop and attributes it to `flow` in the per-flow
    /// registry (identical to [`KernelStats::record_drop`] when the
    /// observability layer is off).
    pub fn record_drop_for(&mut self, reason: DropReason, flow: Option<FlowKey>) {
        self.record_drop(reason);
        if let Some(reg) = &mut self.flows {
            reg.record_drop(flow, reason);
        }
    }

    /// Attributes one wire arrival to `flow` (no-op when the
    /// observability layer is off). Call alongside
    /// [`KernelStats::record_arrival`], which keeps the aggregate books.
    pub fn flow_arrival(&mut self, flow: Option<FlowKey>) {
        if let Some(reg) = &mut self.flows {
            reg.record_arrival(flow);
        }
    }

    /// Attributes one delivery (wire transmit or local consumption) to
    /// `flow`, with its sojourn `[arrived, end)` (no-op when the
    /// observability layer is off).
    pub fn flow_delivery(
        &mut self,
        flow: Option<FlowKey>,
        arrived: Cycles,
        end: Cycles,
        freq: Freq,
    ) {
        if let Some(reg) = &mut self.flows {
            reg.record_delivery(flow, arrived, end, freq);
        }
    }

    /// Attributes one classified wire arrival to `class` (no-op when
    /// classification is off or the packet carries no class stamp).
    pub fn class_arrival(&mut self, class: Option<TrafficClass>) {
        if let (Some(cs), Some(c)) = (&mut self.class, class) {
            cs.record_arrival(c);
        }
    }

    /// Attributes one delivery (wire transmit or local consumption) to
    /// `class`, with its sojourn `[arrived, end)` (no-op when
    /// classification is off or the packet carries no class stamp).
    pub fn class_delivery(
        &mut self,
        class: Option<TrafficClass>,
        arrived: Cycles,
        end: Cycles,
        freq: Freq,
    ) {
        if let (Some(cs), Some(c)) = (&mut self.class, class) {
            cs.record_delivery(c, arrived, end, freq);
        }
    }

    /// Records a completed transmission at time `t`.
    pub fn record_tx(&mut self, t: Cycles) {
        self.transmitted += 1;
        if let Some(w) = &mut self.tx_window {
            w.record(t);
        }
    }

    /// Records a frame arrival at time `t`.
    pub fn record_arrival(&mut self, t: Cycles) {
        self.arrived += 1;
        if let Some(w) = &mut self.arrival_window {
            w.record(t);
        }
    }

    /// Records a local application delivery at time `t`.
    pub fn record_app_delivery(&mut self, t: Cycles) {
        self.app_delivered += 1;
        if let Some(w) = &mut self.app_window {
            w.record(t);
        }
    }

    /// Local application goodput inside the window, pkts/s.
    pub fn app_delivered_pps(&self, freq: Freq) -> f64 {
        self.app_window.map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Delivered packet rate inside the window, pkts/s.
    pub fn delivered_pps(&self, freq: Freq) -> f64 {
        self.tx_window.map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Offered packet rate inside the window, pkts/s.
    pub fn offered_pps(&self, freq: Freq) -> f64 {
        self.arrival_window.map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Total packets lost anywhere in the kernel (excluding free drops at
    /// the interface and deliberate screening denials).
    pub fn wasted_drops(&self) -> u64 {
        self.ipintrq_drops
            + self.screend_q_drops
            + self.ifq_drops
            + self.socket_q_drops
            + self.fwd_errors
    }

    /// Packet-conservation check: every arrival is transmitted, dropped
    /// somewhere, denied, or still in flight. Returns the number still
    /// unaccounted for (in queues/rings) — never negative.
    ///
    /// # Panics
    ///
    /// Panics if more packets left the system than entered it.
    pub fn in_flight(&self) -> u64 {
        let gone = self.rx_ring_drops
            + self.class_shed_drops
            + self.wasted_drops()
            + self.screend_denied
            + self.app_delivered
            + self.arp_handled
            + self.bystander_drops
            + self.transmitted;
        (self.arrived + self.replies_created + self.icmp_errors_sent + self.arp_replies)
            .checked_sub(gone)
            // simlint: allow(panic-freedom): conservation is the delivered-throughput honesty gate; violating it must abort loudly
            .expect("packet conservation violated")
    }
}

impl Default for KernelStats {
    fn default() -> Self {
        KernelStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_sim::Nanos;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn window_rates() {
        let freq = Freq::mhz(100);
        let mut s = KernelStats::new();
        s.set_window(Cycles::new(0), freq.cycles_from_secs(1));
        for i in 0..1000u64 {
            s.record_arrival(Cycles::new(i * 100_000));
            s.record_tx(Cycles::new(i * 100_000 + 50));
        }
        // Outside the window: counted in totals, not in rates.
        s.record_tx(freq.cycles_from_secs(2));
        assert_eq!(s.transmitted, 1001);
        assert!((s.delivered_pps(freq) - 1000.0).abs() < 1e-9);
        assert!((s.offered_pps(freq) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn no_window_means_zero_rates() {
        let s = KernelStats::new();
        assert_eq!(s.delivered_pps(Freq::mhz(100)), 0.0);
        assert_eq!(s.offered_pps(Freq::mhz(100)), 0.0);
    }

    #[test]
    fn conservation() {
        let mut s = KernelStats::new();
        for _ in 0..10 {
            s.record_arrival(Cycles::new(1));
        }
        s.rx_ring_drops = 2;
        s.ipintrq_drops = 1;
        s.screend_denied = 1;
        for _ in 0..4 {
            s.record_tx(Cycles::new(2));
        }
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.wasted_drops(), 1);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn conservation_violation_detected() {
        let mut s = KernelStats::new();
        s.record_tx(Cycles::new(1));
        let _ = s.in_flight();
    }

    #[test]
    fn latency_histogram_integrates() {
        let freq = Freq::mhz(1_000); // 1 cycle == 1 ns
        let mut s = KernelStats::new();
        let mut stamps = StageStamps::UNSET;
        stamps.ring_deq = Cycles::new(100);
        stamps.fwd_start = Cycles::new(150);
        stamps.fwd_done = Cycles::new(250);
        stamps.out_enq = Cycles::new(250);
        stamps.tx_start = Cycles::new(300);
        s.latency
            .record_delivery(Cycles::new(0), &stamps, Cycles::new(400), freq);
        assert_eq!(s.latency.count(), 1);
        assert_eq!(s.latency.mean(), Nanos::new(400));
        assert_eq!(s.latency.stage(Stage::Ring).sum(), Nanos::new(100));
        assert_eq!(s.latency.stage(Stage::Ipq).sum(), Nanos::new(50));
        assert_eq!(s.latency.stage(Stage::Fwd).sum(), Nanos::new(100));
        assert_eq!(s.latency.stage(Stage::Sq).sum(), Nanos::new(0));
        assert_eq!(s.latency.stage(Stage::Outq).sum(), Nanos::new(50));
        assert_eq!(s.latency.stage(Stage::Wire).sum(), Nanos::new(100));
    }

    #[test]
    fn residencies_telescope_with_unset_stamps() {
        // Only some boundaries set: unset stages charge zero, the walk
        // still accounts for every cycle of the sojourn.
        let mut stamps = StageStamps::UNSET;
        stamps.ring_deq = Cycles::new(30);
        stamps.sq_enq = Cycles::new(40);
        stamps.sq_deq = Cycles::new(90);
        let res = stage_residencies(Cycles::new(10), &stamps, Cycles::new(90));
        let total: Cycles = res.iter().copied().sum();
        assert_eq!(total, Cycles::new(80));
        assert_eq!(res[0], Cycles::new(20), "ring");
        assert_eq!(res[3], Cycles::new(60), "sq (from ring_deq: fwd unset)");
        assert_eq!(res[5], Cycles::ZERO, "wire: local delivery ends at sq_deq");
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The telescoping invariant the whole latency layer rests on:
        /// for ANY subset of boundary stamps (any delivery path — forward,
        /// screend, local socket) at any monotone times, the six per-stage
        /// residencies sum exactly to the packet's total sojourn.
        #[test]
        fn stage_residencies_always_telescope(
            arrived in 0u64..1_000_000_000,
            deltas in proptest::collection::vec(0u64..10_000_000, 8..9),
            mask in 0u32..128,
        ) {
            let mut stamps = StageStamps::UNSET;
            let mut t = arrived;
            let mut place = |slot: &mut Cycles, bit: u32, d: u64| {
                t += d;
                if mask & (1 << bit) != 0 {
                    *slot = Cycles::new(t);
                }
            };
            place(&mut stamps.ring_deq, 0, deltas[0]);
            place(&mut stamps.fwd_start, 1, deltas[1]);
            place(&mut stamps.fwd_done, 2, deltas[2]);
            place(&mut stamps.sq_enq, 3, deltas[3]);
            place(&mut stamps.sq_deq, 4, deltas[4]);
            place(&mut stamps.out_enq, 5, deltas[5]);
            place(&mut stamps.tx_start, 6, deltas[6]);
            let end = Cycles::new(t + deltas[7]);
            let res = stage_residencies(Cycles::new(arrived), &stamps, end);
            let total: Cycles = res.iter().copied().sum();
            prop_assert_eq!(total, Cycles::new(t + deltas[7] - arrived));
        }
    }

    #[test]
    fn record_drop_keeps_legacy_counters_in_sync() {
        let mut s = KernelStats::new();
        s.class = Some(ClassStats::new());
        for r in DropReason::ALL {
            s.record_drop(r);
        }
        s.record_drop(DropReason::RedEarlyDrop);
        assert_eq!(s.drops.total(), DropReason::ALL.len() as u64 + 1);
        assert_eq!(s.rx_ring_drops, 2, "ring-full + feedback-inhibit");
        assert_eq!(s.ifq_drops, 3, "outq-full + 2x red");
        assert_eq!(s.red_drops, 2);
        assert_eq!(s.fwd_errors, 6);
        assert_eq!(s.screend_denied, 1);
        assert_eq!(s.class_shed_drops, 3, "one shed per traffic class");
        // Legacy totals equal the taxonomy total (every reason maps).
        let legacy = s.rx_ring_drops
            + s.class_shed_drops
            + s.ipintrq_drops
            + s.screend_q_drops
            + s.screend_denied
            + s.ifq_drops
            + s.socket_q_drops
            + s.bystander_drops
            + s.fwd_errors;
        assert_eq!(legacy, s.drops.total());
        assert_eq!(s.drops.get(DropReason::RedEarlyDrop), 2);
        assert_eq!(s.drops.nonzero().count(), DropReason::ALL.len());
        // The per-class view stays in sync through the same path.
        let cs = s.class.as_ref().unwrap();
        for c in TrafficClass::ALL {
            assert_eq!(cs.get(c).shed, 1, "{} shed once", c.label());
        }
        // Shedding is a deliberate, free drop: not wasted work.
        assert_eq!(s.wasted_drops(), 12);
    }
}
