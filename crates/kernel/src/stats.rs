//! Per-trial kernel statistics: where every packet went.
//!
//! The paper attributes loss to specific queues ("packets are dropped at a
//! queue between processing steps that occur at different priorities") and
//! measures delivered throughput by sampling the output interface's `Opkts`
//! counter over the trial. [`KernelStats`] keeps the same books.

use livelock_net::pool::PoolStats;
use livelock_sim::{Cycles, Freq, Histogram, RateWindow};

/// Counters and distributions collected by the router kernel during a run.
#[derive(Clone, Debug)]
pub struct KernelStats {
    /// Frames that finished arriving on input wires (offered load actually
    /// presented to the NICs).
    pub arrived: u64,
    /// Frames dropped because a receive ring was full (free drops at the
    /// interface).
    pub rx_ring_drops: u64,
    /// Packets dropped at the `ipintrq` (unmodified kernel only) — each one
    /// wasted device-level work.
    pub ipintrq_drops: u64,
    /// Packets dropped at the screend queue — each one wasted device +
    /// IP-level work.
    pub screend_q_drops: u64,
    /// Packets denied by the screening rules (not a malfunction).
    pub screend_denied: u64,
    /// Packets dropped at an output interface queue — wasted everything
    /// but transmission.
    pub ifq_drops: u64,
    /// Of the output-queue drops, how many were RED early drops.
    pub red_drops: u64,
    /// Packets dropped at the local socket buffer (end-system mode).
    pub socket_q_drops: u64,
    /// Packets consumed by the local application (end-system mode).
    pub app_delivered: u64,
    /// Reply packets originated by the local application.
    pub replies_created: u64,
    /// ICMP error packets originated by the router.
    pub icmp_errors_sent: u64,
    /// ICMP error generation suppressed by pacing.
    pub icmp_suppressed: u64,
    /// Packets discarded because the host is not a router (end-system
    /// mode) and the destination was not local — the "innocent bystander"
    /// cost of §1's multicast/broadcast storms.
    pub bystander_drops: u64,
    /// ARP frames consumed by the host (requests, gratuitous, replies).
    pub arp_handled: u64,
    /// ARP replies originated by the host.
    pub arp_replies: u64,
    /// Packets dropped by the forwarding code (bad checksum, TTL, no
    /// route, no ARP entry).
    pub fwd_errors: u64,
    /// Frames fully transmitted on output wires (the `Opkts` the paper
    /// counts).
    pub transmitted: u64,
    /// Wire-to-wire forwarding latency of transmitted packets.
    pub latency: Histogram,
    /// Transmissions inside the measurement window.
    pub tx_window: Option<RateWindow>,
    /// Arrivals inside the measurement window.
    pub arrival_window: Option<RateWindow>,
    /// Local application deliveries inside the measurement window.
    pub app_window: Option<RateWindow>,
    /// Work units completed by the compute-bound user process.
    pub user_chunks: u64,
    /// Clock ticks observed.
    pub ticks: u64,
    /// Frame-pool occupancy counters, when the kernel allocates packet
    /// buffers from a [`livelock_net::FramePool`] (refreshed on every
    /// clock tick and at trial end).
    pub pool: Option<PoolStats>,
}

impl KernelStats {
    /// Creates zeroed statistics with no measurement window.
    pub fn new() -> Self {
        KernelStats {
            arrived: 0,
            rx_ring_drops: 0,
            ipintrq_drops: 0,
            screend_q_drops: 0,
            screend_denied: 0,
            ifq_drops: 0,
            red_drops: 0,
            socket_q_drops: 0,
            app_delivered: 0,
            replies_created: 0,
            icmp_errors_sent: 0,
            icmp_suppressed: 0,
            bystander_drops: 0,
            arp_handled: 0,
            arp_replies: 0,
            fwd_errors: 0,
            transmitted: 0,
            latency: Histogram::new(),
            tx_window: None,
            arrival_window: None,
            app_window: None,
            user_chunks: 0,
            ticks: 0,
            pool: None,
        }
    }

    /// Installs the measurement window `[start, end)` for rate reporting.
    pub fn set_window(&mut self, start: Cycles, end: Cycles) {
        self.tx_window = Some(RateWindow::new(start, end));
        self.arrival_window = Some(RateWindow::new(start, end));
        self.app_window = Some(RateWindow::new(start, end));
    }

    /// Records a completed transmission at time `t`.
    pub fn record_tx(&mut self, t: Cycles) {
        self.transmitted += 1;
        if let Some(w) = &mut self.tx_window {
            w.record(t);
        }
    }

    /// Records a frame arrival at time `t`.
    pub fn record_arrival(&mut self, t: Cycles) {
        self.arrived += 1;
        if let Some(w) = &mut self.arrival_window {
            w.record(t);
        }
    }

    /// Records a local application delivery at time `t`.
    pub fn record_app_delivery(&mut self, t: Cycles) {
        self.app_delivered += 1;
        if let Some(w) = &mut self.app_window {
            w.record(t);
        }
    }

    /// Local application goodput inside the window, pkts/s.
    pub fn app_delivered_pps(&self, freq: Freq) -> f64 {
        self.app_window.map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Delivered packet rate inside the window, pkts/s.
    pub fn delivered_pps(&self, freq: Freq) -> f64 {
        self.tx_window.map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Offered packet rate inside the window, pkts/s.
    pub fn offered_pps(&self, freq: Freq) -> f64 {
        self.arrival_window.map_or(0.0, |w| w.rate_per_sec(freq))
    }

    /// Total packets lost anywhere in the kernel (excluding free drops at
    /// the interface and deliberate screening denials).
    pub fn wasted_drops(&self) -> u64 {
        self.ipintrq_drops
            + self.screend_q_drops
            + self.ifq_drops
            + self.socket_q_drops
            + self.fwd_errors
    }

    /// Packet-conservation check: every arrival is transmitted, dropped
    /// somewhere, denied, or still in flight. Returns the number still
    /// unaccounted for (in queues/rings) — never negative.
    ///
    /// # Panics
    ///
    /// Panics if more packets left the system than entered it.
    pub fn in_flight(&self) -> u64 {
        let gone = self.rx_ring_drops
            + self.wasted_drops()
            + self.screend_denied
            + self.app_delivered
            + self.arp_handled
            + self.bystander_drops
            + self.transmitted;
        (self.arrived + self.replies_created + self.icmp_errors_sent + self.arp_replies)
            .checked_sub(gone)
            .expect("packet conservation violated")
    }
}

impl Default for KernelStats {
    fn default() -> Self {
        KernelStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_sim::Nanos;

    #[test]
    fn window_rates() {
        let freq = Freq::mhz(100);
        let mut s = KernelStats::new();
        s.set_window(Cycles::new(0), freq.cycles_from_secs(1));
        for i in 0..1000u64 {
            s.record_arrival(Cycles::new(i * 100_000));
            s.record_tx(Cycles::new(i * 100_000 + 50));
        }
        // Outside the window: counted in totals, not in rates.
        s.record_tx(freq.cycles_from_secs(2));
        assert_eq!(s.transmitted, 1001);
        assert!((s.delivered_pps(freq) - 1000.0).abs() < 1e-9);
        assert!((s.offered_pps(freq) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn no_window_means_zero_rates() {
        let s = KernelStats::new();
        assert_eq!(s.delivered_pps(Freq::mhz(100)), 0.0);
        assert_eq!(s.offered_pps(Freq::mhz(100)), 0.0);
    }

    #[test]
    fn conservation() {
        let mut s = KernelStats::new();
        for _ in 0..10 {
            s.record_arrival(Cycles::new(1));
        }
        s.rx_ring_drops = 2;
        s.ipintrq_drops = 1;
        s.screend_denied = 1;
        for _ in 0..4 {
            s.record_tx(Cycles::new(2));
        }
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.wasted_drops(), 1);
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn conservation_violation_detected() {
        let mut s = KernelStats::new();
        s.record_tx(Cycles::new(1));
        let _ = s.in_flight();
    }

    #[test]
    fn latency_histogram_integrates() {
        let mut s = KernelStats::new();
        s.latency.record(Nanos::from_micros(200));
        s.latency.record(Nanos::from_micros(400));
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.latency.mean(), Nanos::from_micros(300));
    }
}
