//! The zero-allocation per-flow metrics registry.
//!
//! Livelock is not uniform across traffic: under overload some flows keep
//! a trickle of service while others starve outright, and an aggregate
//! delivered-rate curve cannot show which. [`FlowRegistry`] attributes
//! every wire arrival, drop and delivery to its 5-tuple flow — the same
//! 5-tuple (in the same order) the multiqueue NIC's RSS hash consumes —
//! so a trial can report per-flow goodput, per-flow drop taxonomy and
//! per-flow latency next to the aggregates.
//!
//! The registry is a fixed-size open-addressed table allocated once at
//! build time: recording never allocates, and a run with more flows than
//! slots counts the excess in [`FlowRegistry::overflow_arrivals`] instead
//! of growing. It exists only when
//! [`KernelConfig::observe`](crate::config::KernelConfig::observe) is set;
//! every mutation path goes through [`KernelStats`](crate::stats::KernelStats)
//! hooks that are no-ops when it is absent, so the disabled configuration
//! is bit-identical to a build without the observability layer.

use livelock_machine::nic::rss_hash;
use livelock_net::{FlowKey, TrafficClass};
use livelock_sim::{Cycles, Freq, HdrHistogram};

use crate::stats::{DropReason, DropStats};

/// The RSS hash of a flow key — the registry's bucket function is the
/// same FNV-1a the multiqueue NIC steers by, so a flow's registry slot
/// and its RX queue are derived from one number.
pub fn flow_hash(key: FlowKey) -> u64 {
    rss_hash(
        key.src_ip,
        key.dst_ip,
        key.proto,
        key.src_port,
        key.dst_port,
    )
}

/// Everything one flow did in a trial.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowStats {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// The flow's RSS hash ([`flow_hash`]).
    pub hash: u64,
    /// Wire arrivals attributed to this flow.
    pub arrived: u64,
    /// Packets of this flow delivered (transmitted on an output wire or
    /// consumed by the local application).
    pub delivered: u64,
    /// Per-cause drops attributed to this flow.
    pub drops: DropStats,
    /// Wire-to-delivery latency distribution of this flow's delivered
    /// packets.
    pub latency: HdrHistogram,
    /// Cycle timestamp of the flow's first delivery (`None` until one).
    pub first_delivery: Option<Cycles>,
    /// Cycle timestamp of the flow's most recent delivery.
    pub last_delivery: Option<Cycles>,
    /// The traffic class the classifier assigned this flow (`None` when
    /// classification is off). A deterministic classifier maps a
    /// 5-tuple to exactly one class, so the stamp never flaps.
    pub class: Option<TrafficClass>,
}

impl FlowStats {
    fn new(key: FlowKey, hash: u64) -> Self {
        FlowStats {
            key,
            hash,
            arrived: 0,
            delivered: 0,
            drops: DropStats::new(),
            latency: HdrHistogram::new(),
            first_delivery: None,
            last_delivery: None,
            class: None,
        }
    }

    /// Folds another flow's records into this one (same key;
    /// commutative, for SMP per-CPU merges).
    fn absorb(&mut self, other: &FlowStats) {
        debug_assert_eq!(self.key, other.key, "absorb mixes flows");
        self.arrived = self.arrived.saturating_add(other.arrived);
        self.delivered = self.delivered.saturating_add(other.delivered);
        self.drops.merge(&other.drops);
        self.latency.merge(&other.latency);
        self.first_delivery = match (self.first_delivery, other.first_delivery) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_delivery = self.last_delivery.max(other.last_delivery);
        self.class = self.class.or(other.class);
    }
}

/// Fixed-size per-flow metrics table, keyed by 5-tuple via the NIC's RSS
/// hash with linear probing. All storage is allocated in
/// [`FlowRegistry::new`]; recording never allocates.
#[derive(Clone, Debug)]
pub struct FlowRegistry {
    slots: Vec<Option<FlowStats>>,
    occupied: usize,
    overflow_arrivals: u64,
    unattributed_arrivals: u64,
    /// Last `(key, slot)` resolved — a packet's arrival, drop and
    /// delivery records land back-to-back on the hot path, so one entry
    /// short-circuits the hash + probe for the common repeat lookup.
    last_slot: Option<(FlowKey, usize)>,
}

/// Equality is over the recorded contents; the lookup cache is an
/// implementation detail, not part of the value.
impl PartialEq for FlowRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
            && self.occupied == other.occupied
            && self.overflow_arrivals == other.overflow_arrivals
            && self.unattributed_arrivals == other.unattributed_arrivals
    }
}

impl FlowRegistry {
    /// Creates an empty registry with capacity for `slots` distinct flows
    /// (at least one).
    pub fn new(slots: usize) -> Self {
        FlowRegistry {
            slots: vec![None; slots.max(1)],
            occupied: 0,
            overflow_arrivals: 0,
            unattributed_arrivals: 0,
            last_slot: None,
        }
    }

    /// Finds (or inserts) the slot for `key`: linear probe from the RSS
    /// hash's home bucket. `None` when the table is full and the key is
    /// not already present.
    fn slot_for(&mut self, key: FlowKey) -> Option<usize> {
        if let Some((k, i)) = self.last_slot {
            if k == key {
                return Some(i);
            }
        }
        let cap = self.slots.len();
        let hash = flow_hash(key);
        let home = (hash % cap as u64) as usize;
        for probe in 0..cap {
            let i = (home + probe) % cap;
            match &self.slots[i] {
                Some(s) if s.key == key => {
                    self.last_slot = Some((key, i));
                    return Some(i);
                }
                Some(_) => continue,
                None => {
                    self.slots[i] = Some(FlowStats::new(key, hash));
                    self.occupied += 1;
                    self.last_slot = Some((key, i));
                    return Some(i);
                }
            }
        }
        None
    }

    /// Records one wire arrival. `None` keys (non-IP or malformed frames)
    /// count as unattributed; keys that find the table full count as
    /// overflow — so attributed + unattributed + overflow arrivals always
    /// equals the kernel's total arrival count.
    pub fn record_arrival(&mut self, key: Option<FlowKey>) {
        match key {
            None => self.unattributed_arrivals += 1,
            Some(k) => match self.slot_for(k) {
                Some(i) => {
                    if let Some(s) = &mut self.slots[i] {
                        s.arrived += 1;
                    }
                }
                None => self.overflow_arrivals += 1,
            },
        }
    }

    /// Stamps `key`'s flow with the traffic class the classifier
    /// assigned it (no-op for unattributed or overflowed flows). The
    /// classifier is deterministic over the 5-tuple, so repeated stamps
    /// always agree.
    pub fn note_class(&mut self, key: Option<FlowKey>, class: TrafficClass) {
        if let Some(i) = key.and_then(|k| self.slot_for(k)) {
            if let Some(s) = &mut self.slots[i] {
                s.class = Some(class);
            }
        }
    }

    /// Attributes one drop to `key`'s flow (no-op for unattributed or
    /// overflowed flows — the aggregate [`DropStats`] still counts them).
    pub fn record_drop(&mut self, key: Option<FlowKey>, reason: DropReason) {
        if let Some(i) = key.and_then(|k| self.slot_for(k)) {
            if let Some(s) = &mut self.slots[i] {
                s.drops.record(reason);
            }
        }
    }

    /// Attributes one delivery to `key`'s flow: bumps its delivered
    /// count, records the wire-to-delivery sojourn `[arrived, end)` in
    /// its latency histogram, and advances its first/last delivery
    /// timestamps.
    pub fn record_delivery(
        &mut self,
        key: Option<FlowKey>,
        arrived: Cycles,
        end: Cycles,
        freq: Freq,
    ) {
        if let Some(i) = key.and_then(|k| self.slot_for(k)) {
            if let Some(s) = &mut self.slots[i] {
                s.delivered += 1;
                s.latency.record(freq.nanos_from_cycles(end.saturating_sub(arrived)));
                s.first_delivery = Some(s.first_delivery.map_or(end, |f| f.min(end)));
                s.last_delivery = Some(s.last_delivery.map_or(end, |l| l.max(end)));
            }
        }
    }

    /// Distinct flows currently tracked.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// `true` when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Slot capacity the registry was built with.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Arrivals whose flow found the table full.
    pub fn overflow_arrivals(&self) -> u64 {
        self.overflow_arrivals
    }

    /// Arrivals with no parseable 5-tuple (ARP, malformed, non-IP).
    pub fn unattributed_arrivals(&self) -> u64 {
        self.unattributed_arrivals
    }

    /// Arrivals attributed to some tracked flow.
    pub fn attributed_arrivals(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.arrived)
            .sum()
    }

    /// Conservation view: attributed + unattributed + overflow — always
    /// equal to the number of [`FlowRegistry::record_arrival`] calls.
    pub fn total_arrivals(&self) -> u64 {
        self.attributed_arrivals() + self.unattributed_arrivals + self.overflow_arrivals
    }

    /// The stats slot at table index `i` (detector iteration: slot
    /// indices are stable for the registry's lifetime — flows are never
    /// evicted).
    pub fn slot(&self, i: usize) -> Option<&FlowStats> {
        self.slots.get(i).and_then(|s| s.as_ref())
    }

    /// The tracked stats for `key`, if present.
    pub fn get(&self, key: FlowKey) -> Option<&FlowStats> {
        let cap = self.slots.len();
        let home = (flow_hash(key) % cap as u64) as usize;
        for probe in 0..cap {
            match &self.slots[(home + probe) % cap] {
                Some(s) if s.key == key => return Some(s),
                Some(_) => continue,
                None => return None,
            }
        }
        None
    }

    /// Every tracked flow, sorted by 5-tuple — a canonical order
    /// independent of hash placement, so merged registries compare and
    /// print identically regardless of merge order.
    pub fn per_flow(&self) -> Vec<&FlowStats> {
        let mut out: Vec<&FlowStats> = self.slots.iter().flatten().collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// Folds another registry into this one, key by key (SMP
    /// aggregation). Commutative up to [`FlowRegistry::per_flow`] order:
    /// merging A into B and B into A yield the same sorted flow list.
    /// Flows that cannot be placed (table full) surrender their arrivals
    /// to the overflow count, preserving arrival conservation.
    pub fn merge(&mut self, other: &FlowRegistry) {
        for s in other.slots.iter().flatten() {
            match self.slot_for(s.key) {
                Some(i) => {
                    if let Some(mine) = &mut self.slots[i] {
                        mine.absorb(s);
                    }
                }
                None => self.overflow_arrivals += s.arrived,
            }
        }
        self.overflow_arrivals += other.overflow_arrivals;
        self.unattributed_arrivals += other.unattributed_arrivals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_sim::Nanos;

    fn key(port: u16) -> FlowKey {
        FlowKey {
            src_ip: 0x0a000002,
            dst_ip: 0x0a010063,
            proto: 17,
            src_port: port,
            dst_port: 9,
        }
    }

    #[test]
    fn arrivals_conserve_across_attribution_classes() {
        let mut r = FlowRegistry::new(2);
        r.record_arrival(Some(key(1)));
        r.record_arrival(Some(key(1)));
        r.record_arrival(Some(key(2)));
        r.record_arrival(Some(key(3))); // table full -> overflow
        r.record_arrival(None); // ARP -> unattributed
        assert_eq!(r.len(), 2);
        assert_eq!(r.attributed_arrivals(), 3);
        assert_eq!(r.overflow_arrivals(), 1);
        assert_eq!(r.unattributed_arrivals(), 1);
        assert_eq!(r.total_arrivals(), 5);
        assert_eq!(r.get(key(1)).unwrap().arrived, 2);
    }

    #[test]
    fn delivery_records_latency_and_first_last() {
        let freq = Freq::mhz(1_000); // 1 cycle == 1 ns
        let mut r = FlowRegistry::new(8);
        r.record_arrival(Some(key(7)));
        r.record_delivery(Some(key(7)), Cycles::new(100), Cycles::new(400), freq);
        r.record_delivery(Some(key(7)), Cycles::new(500), Cycles::new(600), freq);
        let s = r.get(key(7)).unwrap();
        assert_eq!(s.delivered, 2);
        assert_eq!(s.first_delivery, Some(Cycles::new(400)));
        assert_eq!(s.last_delivery, Some(Cycles::new(600)));
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.latency.min(), Nanos::new(100));
    }

    #[test]
    fn drops_attribute_per_flow() {
        let mut r = FlowRegistry::new(8);
        r.record_arrival(Some(key(4)));
        r.record_drop(Some(key(4)), DropReason::IpintrqFull);
        r.record_drop(None, DropReason::RxRingFull); // silently unattributed
        let s = r.get(key(4)).unwrap();
        assert_eq!(s.drops.get(DropReason::IpintrqFull), 1);
        assert_eq!(s.drops.total(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let freq = Freq::mhz(1_000);
        let build = |ports: &[u16]| {
            let mut r = FlowRegistry::new(16);
            for (n, &p) in ports.iter().enumerate() {
                r.record_arrival(Some(key(p)));
                r.record_delivery(
                    Some(key(p)),
                    Cycles::new(10),
                    Cycles::new(20 + n as u64 * 10),
                    freq,
                );
            }
            r.record_arrival(None);
            r
        };
        let a = build(&[3, 1, 2]);
        let b = build(&[2, 5, 1]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Hash placement may differ; the canonical sorted view must not.
        let fa: Vec<FlowStats> = ab.per_flow().into_iter().cloned().collect();
        let fb: Vec<FlowStats> = ba.per_flow().into_iter().cloned().collect();
        assert_eq!(fa, fb);
        assert_eq!(ab.total_arrivals(), ba.total_arrivals());
        assert_eq!(ab.unattributed_arrivals(), 2);
    }

    #[test]
    fn merge_overflow_preserves_arrival_conservation() {
        let mut a = FlowRegistry::new(1);
        a.record_arrival(Some(key(1)));
        let mut b = FlowRegistry::new(1);
        b.record_arrival(Some(key(2)));
        let total = a.total_arrivals() + b.total_arrivals();
        a.merge(&b);
        assert_eq!(a.total_arrivals(), total, "arrivals survive a full merge");
        assert_eq!(a.overflow_arrivals(), 1);
    }

    #[test]
    fn per_flow_sorts_by_key() {
        let mut r = FlowRegistry::new(32);
        for p in [9, 2, 77, 4] {
            r.record_arrival(Some(key(p)));
        }
        let ports: Vec<u16> = r.per_flow().iter().map(|s| s.key.src_port).collect();
        assert_eq!(ports, [2, 4, 9, 77]);
    }
}
