//! Priority-aware flow classification in the kernel (DESIGN.md §14).
//!
//! The pipeline: the deterministic [`Classifier`] maps each arriving
//! frame's 5-tuple to a [`TrafficClass`] at the NIC boundary; the class
//! picks the per-priority receive ring DMA lands in; the polling thread
//! drains the rings in strict-priority order under per-class burst
//! budgets ([`ClassEngine::pick_ring`]); and a class-aware admission
//! gate ([`RouterKernel::class_admit`]) sheds low classes first —
//! `Bulk`, then `Realtime`, never `Control` — when the downstream
//! bottleneck queue or the online livelock detector signals overload.
//! Shedding happens *before* the ring, so a shed packet costs nothing:
//! it is the §6.4 "drop early, drop cheap" discipline made
//! class-selective.
//!
//! The shed controller is hysteretic and asymmetric: escalation is
//! event-driven — every admission checks the instantaneous bottleneck
//! fill against [`ShedConfig::shed_hi_frac`] and raises the level the
//! moment it crosses (the §6.5 discipline: feedback acts when the
//! screend queue fills, not when a timer fires), and the clock tick
//! escalates too when the online detector reports livelock —  while
//! de-escalation is tick-driven only, requires the fill below
//! [`ShedConfig::restore_lo_frac`] with the detector quiet, and holds
//! every level for at least [`ShedConfig::min_hold_ticks`] clock ticks.
//! The asymmetry is deliberate: raising the gate early costs a few
//! shed `Bulk` packets, raising it late costs a queue full of them in
//! front of every `Control` packet for milliseconds.
//!
//! This module is the *only* place allowed to stamp a packet's class or
//! record a [`DropReason::ClassShed`] (simlint's `class-discipline`
//! rule, exit 19, enforces both): classification policy lives here, and
//! everything downstream — queues, quotas, per-class accounting — just
//! reads the stamp.

use super::*;
use crate::config::{ClassifyConfig, ShedConfig};
use livelock_net::classify::{Classifier, TrafficClass};

/// The hysteretic shed controller: a small state machine over shed
/// levels 0 (admit everything), 1 (shed `Bulk`) and 2 (shed `Bulk` and
/// `Realtime`). `Control` is never shed — protecting it is the point.
#[derive(Clone, Debug)]
pub(crate) struct ShedController {
    cfg: ShedConfig,
    level: u8,
    ticks: u64,
    level_since: u64,
}

impl ShedController {
    pub(crate) fn new(cfg: ShedConfig) -> Self {
        ShedController {
            cfg,
            level: 0,
            ticks: 0,
            level_since: 0,
        }
    }

    /// The current shed level (0 = admit everything).
    pub(crate) fn level(&self) -> u8 {
        self.level
    }

    /// Whether class `c` is shed at the current level.
    pub(crate) fn sheds(&self, c: TrafficClass) -> bool {
        match c {
            TrafficClass::Control => false,
            TrafficClass::Realtime => self.level >= 2,
            TrafficClass::Bulk => self.level >= 1,
        }
    }

    /// Event-driven escalation, called on every admission with the
    /// instantaneous bottleneck fill. Raising the gate is always safe,
    /// so it bypasses the minimum-hold window — without this, a line-rate
    /// burst admits a whole bottleneck queue of low-class packets in the
    /// gap before the first clock tick, and every `Control` packet for
    /// the next several milliseconds waits behind them.
    pub(crate) fn note_pressure(&mut self, fill_frac: f64) {
        if fill_frac >= self.cfg.shed_hi_frac && self.level < 2 {
            self.level += 1;
            self.level_since = self.ticks;
        }
    }

    /// One clock tick: `fill_frac` is the downstream bottleneck queue's
    /// fill fraction, `livelocked` the online detector's verdict. Moves
    /// at most one level per call, and only after the current level has
    /// been held for the minimum-hold window.
    pub(crate) fn on_tick(&mut self, fill_frac: f64, livelocked: bool) {
        self.ticks += 1;
        if self.ticks - self.level_since < self.cfg.min_hold_ticks.max(1) {
            return;
        }
        let pressure = livelocked || fill_frac >= self.cfg.shed_hi_frac;
        let calm = !livelocked && fill_frac <= self.cfg.restore_lo_frac;
        if pressure && self.level < 2 {
            self.level += 1;
            self.level_since = self.ticks;
        } else if calm && self.level > 0 {
            self.level -= 1;
            self.level_since = self.ticks;
        }
    }
}

/// Per-kernel classification state: the rule engine, the strict-priority
/// drain's round-robin budgets, and the shed controller.
#[derive(Clone, Debug)]
pub(crate) struct ClassEngine {
    classifier: Classifier,
    burst: [u32; TrafficClass::COUNT],
    taken_in_round: [u32; TrafficClass::COUNT],
    pub(crate) shed: ShedController,
    /// The Control class's p99 latency SLO, for the cross-class
    /// priority-inversion detector.
    pub(crate) slo_p99_us: f64,
}

impl ClassEngine {
    pub(crate) fn new(cfg: &ClassifyConfig) -> Self {
        ClassEngine {
            classifier: Classifier::new(cfg.rules.clone(), cfg.default_class),
            burst: cfg.burst.map(|b| b.max(1)),
            taken_in_round: [0; TrafficClass::COUNT],
            shed: ShedController::new(cfg.shed),
            slo_p99_us: cfg.slo_p99_us,
        }
    }

    pub(crate) fn classify(&self, key: Option<&livelock_net::FlowKey>) -> TrafficClass {
        self.classifier.classify_opt(key)
    }

    /// Picks the class ring the polling thread drains next, given each
    /// ring's pending count: strict priority (`Control` before
    /// `Realtime` before `Bulk`), except that a class which has consumed
    /// its burst budget this round yields to lower classes until the
    /// round resets — so sustained `Control` load bounds, rather than
    /// forbids, lower-class service. Consumes one budget unit of the
    /// returned class.
    pub(crate) fn pick_ring(&mut self, pending: [usize; TrafficClass::COUNT]) -> Option<usize> {
        if pending.iter().all(|&p| p == 0) {
            return None;
        }
        for round in 0..2 {
            for c in 0..TrafficClass::COUNT {
                if pending[c] > 0 && self.taken_in_round[c] < self.burst[c] {
                    self.taken_in_round[c] += 1;
                    return Some(c);
                }
            }
            // Every pending class exhausted its budget: new round.
            debug_assert_eq!(round, 0, "fresh round always has budget");
            self.taken_in_round = [0; TrafficClass::COUNT];
        }
        None
    }
}

impl RouterKernel {
    /// The class-aware admission gate, run once per wire arrival before
    /// the frame reaches a receive ring. Classifies the frame, stamps
    /// the class on the packet and in the per-class/per-flow books, and
    /// — on a polled kernel under an active shed level — drops the
    /// frame for zero cycles, recording a typed
    /// [`DropReason::ClassShed`]. Returns `false` when the frame was
    /// shed. On an unmodified kernel only the accounting half runs:
    /// classes are observed, never enforced, which is exactly the
    /// contrast the `chaos --priority` scenario measures.
    pub(super) fn class_admit(&mut self, pkt: &mut Packet) -> bool {
        let polled = self.is_polled();
        let fill = self.bottleneck_fill();
        let Some(ce) = &mut self.classes else {
            return true;
        };
        if polled {
            ce.shed.note_pressure(fill);
        }
        let key = pkt.flow.or_else(|| pkt.flow_key());
        let class = ce.classify(key.as_ref());
        let shed = polled && ce.shed.sheds(class);
        pkt.set_class(class);
        self.stats.class_arrival(Some(class));
        if let Some(reg) = &mut self.stats.flows {
            reg.note_class(key, class);
        }
        if shed {
            self.stats
                .record_drop_for(DropReason::ClassShed { class }, key);
            return false;
        }
        true
    }

    /// Clock-tick hook for the shed controller: feeds it the downstream
    /// bottleneck's fill fraction (screend's input queue when screening
    /// is configured — the paper's slow consumer — otherwise the fullest
    /// output queue) and the online livelock detector's verdict. Only a
    /// polled kernel sheds; on an unmodified kernel the controller never
    /// runs and the admission gate stays open.
    pub(super) fn class_tick(&mut self) {
        if self.classes.is_none() || !self.is_polled() {
            return;
        }
        let fill = self.bottleneck_fill();
        let livelocked = self.detector.as_ref().is_some_and(|d| d.is_livelocked());
        if let Some(ce) = &mut self.classes {
            ce.shed.on_tick(fill, livelocked);
        }
    }

    /// The downstream bottleneck queue's fill fraction: screend's input
    /// queue when screening is configured — the paper's slow consumer —
    /// otherwise the fullest output queue. A stalled or crash-restarting
    /// screend reads as a full queue: its queue may be empty (a crash
    /// flushes it) precisely *because* the consumer is dead, and
    /// reopening the gate then would park a queue of low-class packets
    /// in front of the first post-restart `Control` packet.
    fn bottleneck_fill(&self) -> f64 {
        if self.cfg.screend.is_some() {
            if self.screend_stalled() {
                return 1.0;
            }
            let cap = self.screend_q.capacity().max(1);
            self.screend_q.len() as f64 / cap as f64
        } else {
            self.ifaces
                .iter()
                .map(|i| i.out_q.len() as f64 / i.out_q.capacity().max(1) as f64)
                .fold(0.0, f64::max)
        }
    }

    /// The admission gate's current shed level (0 = admit everything,
    /// also when classification is off).
    pub fn shed_level(&self) -> u8 {
        self.classes.as_ref().map_or(0, |ce| ce.shed.level())
    }

    /// The classed receive drain's ring choice for the next poll chunk:
    /// `None` when classification is off (the classless single-ring
    /// path) or nothing is pending.
    pub(super) fn class_pick_ring(&mut self, i: usize) -> Option<usize> {
        let pending = {
            let nic = &self.ifaces[i].nic;
            std::array::from_fn(|c| nic.rx_pending_class(c))
        };
        self.classes.as_mut()?.pick_ring(pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(min_hold: u64) -> ShedController {
        ShedController::new(ShedConfig {
            shed_hi_frac: 0.75,
            restore_lo_frac: 0.25,
            min_hold_ticks: min_hold,
        })
    }

    #[test]
    fn shed_controller_escalates_one_level_at_a_time() {
        let mut s = controller(1);
        assert_eq!(s.level(), 0);
        s.on_tick(0.9, false);
        assert_eq!(s.level(), 1, "first pressure tick sheds Bulk only");
        assert!(s.sheds(TrafficClass::Bulk));
        assert!(!s.sheds(TrafficClass::Realtime));
        s.on_tick(0.9, false);
        assert_eq!(s.level(), 2);
        assert!(s.sheds(TrafficClass::Realtime));
        assert!(!s.sheds(TrafficClass::Control), "Control is never shed");
        s.on_tick(0.9, false);
        assert_eq!(s.level(), 2, "level 2 is the ceiling");
    }

    #[test]
    fn shed_controller_hysteresis_band_holds_level() {
        let mut s = controller(1);
        s.on_tick(0.9, false);
        assert_eq!(s.level(), 1);
        // Mid-band fill: neither pressure nor calm — the level holds.
        for _ in 0..10 {
            s.on_tick(0.5, false);
        }
        assert_eq!(s.level(), 1);
        s.on_tick(0.1, false);
        assert_eq!(s.level(), 0, "calm below the restore threshold");
    }

    #[test]
    fn shed_controller_min_hold_blocks_flapping() {
        let mut s = controller(4);
        for _ in 0..3 {
            s.on_tick(0.9, false);
            assert_eq!(s.level(), 0, "held until the minimum-hold window");
        }
        s.on_tick(0.9, false);
        assert_eq!(s.level(), 1);
        // Immediately calm: the new level must also be held.
        for _ in 0..3 {
            s.on_tick(0.0, false);
            assert_eq!(s.level(), 1);
        }
        s.on_tick(0.0, false);
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn note_pressure_escalates_immediately_but_never_de_escalates() {
        let mut s = controller(4);
        // No ticks have elapsed: the tick path would hold level 0, but
        // the admission-time path reacts to instantaneous fill at once.
        s.note_pressure(0.9);
        assert_eq!(s.level(), 1);
        s.note_pressure(0.9);
        assert_eq!(s.level(), 2);
        s.note_pressure(0.9);
        assert_eq!(s.level(), 2, "level 2 is the ceiling");
        // Calm fill at admission time does nothing: de-escalation is
        // tick-driven only, and still honours the minimum hold.
        s.note_pressure(0.0);
        assert_eq!(s.level(), 2);
        for _ in 0..3 {
            s.on_tick(0.0, false);
            assert_eq!(s.level(), 2);
        }
        s.on_tick(0.0, false);
        assert_eq!(s.level(), 1);
    }

    #[test]
    fn detector_verdict_is_pressure_regardless_of_fill() {
        let mut s = controller(1);
        s.on_tick(0.0, true);
        assert_eq!(s.level(), 1, "livelock verdict alone escalates");
        s.on_tick(0.0, false);
        assert_eq!(s.level(), 0);
    }

    #[test]
    fn pick_ring_is_strict_priority_with_burst_rotation() {
        let mut ce = ClassEngine::new(&ClassifyConfig {
            burst: [2, 2, 2],
            ..ClassifyConfig::default()
        });
        // All three rings loaded: Control twice, then Realtime twice,
        // then Bulk twice, then the round resets back to Control.
        let picks: Vec<usize> = (0..7)
            .map(|_| ce.pick_ring([10, 10, 10]).unwrap())
            .collect();
        assert_eq!(picks, [0, 0, 1, 1, 2, 2, 0]);
    }

    #[test]
    fn pick_ring_skips_empty_rings_and_idle_is_none() {
        let mut ce = ClassEngine::new(&ClassifyConfig::default());
        assert_eq!(ce.pick_ring([0, 0, 0]), None);
        assert_eq!(ce.pick_ring([0, 0, 3]), Some(2));
        assert_eq!(ce.pick_ring([0, 1, 2]), Some(1));
    }

    #[test]
    fn sole_pending_class_keeps_draining_across_rounds() {
        let mut ce = ClassEngine::new(&ClassifyConfig {
            burst: [2, 8, 8],
            ..ClassifyConfig::default()
        });
        for _ in 0..10 {
            assert_eq!(ce.pick_ring([5, 0, 0]), Some(0));
        }
    }
}
