//! The unmodified 4.2BSD path: batched receive interrupts, `ipintrq`,
//! the softnet IP layer, transmit-completion handlers.

use super::*;

impl RouterKernel {
    pub(super) fn unmod_rx_next(&mut self, env: &mut Env<'_, Event>, i: usize) -> Option<Chunk> {
        let extra = self.emulation_overhead();
        let burstable = self.burstable();
        let iface = &mut self.ifaces[i];
        if !iface.rx_in_handler {
            iface.rx_in_handler = true;
            return Some(Chunk::new(
                self.cost.intr_dispatch + extra,
                tag::RX_DISPATCH,
            ));
        }
        if iface.nic.rx_pending() > 0 {
            // The driver starts on the head frame now; it leaves the ring
            // when this chunk completes.
            if let Some(p) = iface.nic.rx_peek_mut() {
                p.stamps.ring_deq = env.now();
            }
            // Interrupt batching: keep consuming the ring before returning.
            // Burst: the handler runs at SPLIMP until the ring drains, and
            // the backlog only grows from here (DMA appends, only this
            // handler consumes), so every frame already in the ring is a
            // promised repetition.
            let reps = if burstable {
                (iface.nic.rx_pending() as u32).saturating_sub(1)
            } else {
                0
            };
            return Some(Chunk::new(
                self.cost.rx_device_per_pkt + self.cost.queue_op + extra,
                tag::RX_PKT,
            )
            .with_reps(reps));
        }
        iface.rx_in_handler = false;
        env.intr_ack(iface.rx_src);
        None
    }

    pub(super) fn unmod_rx_done(&mut self, env: &mut Env<'_, Event>, i: usize) {
        let Some(pkt) = self.ifaces[i].nic.rx_take() else {
            return;
        };
        if self.try_handle_arp(env, i, &pkt) {
            return;
        }
        // SMP: every CPU's receive handler feeds the one shared ipintrq
        // (the classic single-IP-layer bottleneck); only CPU 0 runs the
        // softnet drain, so siblings raise a coalesced IPI instead.
        let flow = pkt.flow;
        if let Some(ctx) = &self.smp {
            let mut sh = ctx.shared.borrow_mut();
            if sh.ipintrq.enqueue(pkt).is_ok() {
                if ctx.cpu.0 == 0 {
                    drop(sh);
                    env.post_intr(self.softnet_src);
                } else {
                    sh.ipi_pending[0] = true;
                }
            } else {
                drop(sh);
                self.stats.record_drop_for(DropReason::IpintrqFull, flow);
            }
            return;
        }
        if self.ipintrq.enqueue(pkt).is_ok() {
            env.post_intr(self.softnet_src);
        } else {
            // "the IP code never runs ... [ipintrq] fills up, and all
            // subsequent received packets are dropped" — after device-level
            // work was already invested.
            self.stats.record_drop_for(DropReason::IpintrqFull, flow);
        }
    }

    pub(super) fn softnet_next(&mut self, env: &mut Env<'_, Event>) -> Option<Chunk> {
        let extra = self.emulation_overhead();
        if !self.softnet_in_handler {
            self.softnet_in_handler = true;
            return Some(Chunk::new(
                self.cost.softnet_dispatch + extra,
                tag::SOFTNET_DISPATCH,
            ));
        }
        // SMP: CPU 0 drains the shared ipintrq, paying a per-packet
        // lock-acquisition cost for every contending sibling — the term
        // that keeps the shared-queue MLFRR flat as CPUs are added. No
        // bursting: siblings refill the queue at every slice boundary.
        if let Some(ctx) = &self.smp {
            let contenders = ctx.ncpus as u64 - 1;
            let mut sh = ctx.shared.borrow_mut();
            if let Some(p) = sh.ipintrq.peek_mut() {
                p.stamps.fwd_start = env.now();
                let mut cost = self.cost.ip_forward_per_pkt
                    + self.cost.queue_op
                    + self.cost.smp_queue_lock * contenders
                    + extra;
                if self.cfg.screend.is_none() {
                    cost += self.cost.tx_start_per_pkt;
                }
                return Some(Chunk::new(cost, tag::SOFTNET_PKT));
            }
            self.softnet_in_handler = false;
            env.intr_ack(self.softnet_src);
            return None;
        }
        if self.ipintrq.peek().is_some() {
            // IP forwarding of the head packet starts now (the dequeue
            // happens when the chunk completes).
            if let Some(p) = self.ipintrq.peek_mut() {
                p.stamps.fwd_start = env.now();
            }
            // IP processing of one packet, including the ipintrq dequeue
            // and (when it will go straight out) the if_start work.
            let mut cost = self.cost.ip_forward_per_pkt + self.cost.queue_op + extra;
            if self.cfg.screend.is_none() {
                cost += self.cost.tx_start_per_pkt;
            }
            // Burst: preempting receive interrupts only *add* to ipintrq
            // (and a full queue drops, never shrinks it), so every packet
            // already queued is a promised repetition.
            let reps = if self.burstable() {
                (self.ipintrq.len() as u32).saturating_sub(1)
            } else {
                0
            };
            return Some(Chunk::new(cost, tag::SOFTNET_PKT).with_reps(reps));
        }
        self.softnet_in_handler = false;
        env.intr_ack(self.softnet_src);
        None
    }

    pub(super) fn softnet_done(&mut self, env: &mut Env<'_, Event>) {
        let next = match &self.smp {
            Some(ctx) => ctx.shared.borrow_mut().ipintrq.dequeue(),
            None => self.ipintrq.dequeue(),
        };
        let Some(mut pkt) = next else {
            return;
        };
        pkt.stamps.fwd_done = env.now();
        if let Some(routed) = self.route_packet(pkt, env.now()) {
            self.dispatch(env, routed);
        }
        self.flush_icmp(env);
    }

    pub(super) fn unmod_tx_next(&mut self, env: &mut Env<'_, Event>, i: usize) -> Option<Chunk> {
        let iface = &mut self.ifaces[i];
        if !iface.tx_in_handler {
            iface.tx_in_handler = true;
            return Some(Chunk::new(self.cost.intr_dispatch, tag::TX_DISPATCH));
        }
        if iface.nic.tx_unreclaimed() > 0 {
            return Some(Chunk::new(self.cost.tx_done_per_pkt, tag::TX_RECLAIM));
        }
        if !iface.out_q.is_empty() && iface.nic.tx_slots_free() > 0 {
            return Some(Chunk::new(self.cost.tx_start_per_pkt, tag::TX_START));
        }
        iface.tx_in_handler = false;
        env.intr_ack(iface.tx_src);
        None
    }

    // --- Modified-path handlers ---
}
