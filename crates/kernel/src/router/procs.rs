//! Schedulable processes: screend, the local application, and clock
//! tick bookkeeping.

use super::*;

impl RouterKernel {
    pub(super) fn screend_next(&mut self, env: &mut Env<'_, Event>) -> Option<Chunk> {
        // An injected stall or crash backoff: the process exists but
        // refuses to run until fault_tick restarts it.
        if self.screend_stalled() {
            if let Some(tid) = self.screend_tid {
                env.sleep(tid);
            }
            return None;
        }
        if self.screend_q.is_empty() {
            if let Some(tid) = self.screend_tid {
                env.sleep(tid);
            }
            return None;
        }
        Some(Chunk::new(
            self.cost.screend_per_pkt + self.cost.tx_start_per_pkt,
            tag::SCREEND_PKT,
        ))
    }

    pub(super) fn screend_done(&mut self, env: &mut Env<'_, Event>) {
        let Some((out_iface, mut pkt)) = self.screend_q.dequeue() else {
            return;
        };
        pkt.stamps.sq_deq = env.now();
        let depth = self.screend_q.len();
        self.feedback_depth(env, depth);
        let verdict = match pkt.ip_datagram() {
            Ok(dgram) => {
                // Borrow dance: evaluate needs &mut filter while dgram
                // borrows pkt, so copy the verdict out.
                let d = dgram.to_vec();
                self.filter.evaluate(&d)
            }
            Err(_) => Action::Deny,
        };
        match verdict {
            Action::Accept => self.output_enqueue(env, out_iface, pkt),
            Action::Deny => self
                .stats
                .record_drop_for(DropReason::ScreendDenied, pkt.flow),
        }
    }

    // --- Local application (end-system mode) ---

    pub(super) fn app_next(&mut self, env: &mut Env<'_, Event>) -> Option<Chunk> {
        if self.socket_q.is_empty() {
            if let Some(tid) = self.app_tid {
                env.sleep(tid);
            }
            return None;
        }
        let reply = self.cfg.local.is_some_and(|l| l.reply);
        let mut cost = self.cost.app_per_pkt;
        if reply {
            cost += self.cost.tx_start_per_pkt;
        }
        Some(Chunk::new(cost, tag::APP_PKT))
    }

    pub(super) fn app_done(&mut self, env: &mut Env<'_, Event>) {
        let Some(mut pkt) = self.socket_q.dequeue() else {
            return;
        };
        pkt.stamps.sq_deq = env.now();
        self.stats.record_app_delivery(env.now());
        // The application consuming the datagram ends its sojourn.
        if pkt.arrived_at != Cycles::MAX {
            if self.cfg.latency_tracking {
                self.stats.latency.record_delivery(
                    pkt.arrived_at,
                    &pkt.stamps,
                    env.now(),
                    self.cost.freq,
                );
            }
            self.stats
                .flow_delivery(pkt.flow, pkt.arrived_at, env.now(), self.cost.freq);
            self.stats
                .class_delivery(pkt.class, pkt.arrived_at, env.now(), self.cost.freq);
        }
        let depth = self.socket_q.len();
        if let Some(fb) = &mut self.socket_feedback {
            match fb.on_depth(depth) {
                Some(FeedbackSignal::Inhibit) => {
                    self.inhibit_input(env, InhibitReason::SocketFeedback)
                }
                Some(FeedbackSignal::Resume) => {
                    self.resume_input(env, InhibitReason::SocketFeedback)
                }
                None => {}
            }
        }
        if self.cfg.local.is_some_and(|l| l.reply) {
            self.send_reply(env, &pkt);
        }
    }

    /// Builds and transmits the RPC-style reply to a delivered request:
    /// source and destination addresses and ports swapped, same-size
    /// payload, routed like any locally originated datagram.
    pub(super) fn send_reply(&mut self, env: &mut Env<'_, Event>, request: &Packet) {
        let Ok(ip) = request.ipv4() else {
            return;
        };
        let Ok(dgram) = request.ip_datagram() else {
            return;
        };
        let Ok(udp) =
            livelock_net::udp::UdpHeader::parse(&dgram[livelock_net::ipv4::IPV4_HEADER_LEN..])
        else {
            return;
        };
        self.reply_seq += 1;
        let id = livelock_net::packet::PacketId(u64::MAX / 2 + self.reply_seq);
        // MACs are zero here; route_packet rewrites them.
        let reply = match &self.pool {
            Some(pool) => Packet::udp_ipv4_in(
                pool,
                id,
                MacAddr::ZERO,
                MacAddr::ZERO,
                ip.dst,
                ip.src,
                udp.dst_port,
                udp.src_port,
                32,
                &[0u8; 4],
            ),
            None => Packet::udp_ipv4(
                id,
                MacAddr::ZERO,
                MacAddr::ZERO,
                ip.dst,
                ip.src,
                udp.dst_port,
                udp.src_port,
                32,
                &[0u8; 4],
            ),
        };
        self.stats.replies_created += 1;
        if let Some(Routed::Forward(out_iface, pkt)) = self.route_output(reply, env.now()) {
            // Locally originated traffic bypasses screend.
            self.output_enqueue(env, out_iface, pkt);
        }
        self.flush_icmp(env);
    }

    // --- Clock ---

    pub(super) fn clock_done(&mut self, env: &mut Env<'_, Event>) {
        self.stats.ticks += 1;
        self.sync_pool_stats();
        self.sample_telemetry(env);
        self.observe_tick(env);
        self.class_tick();
        env.post_intr(self.softclock_src);
        if let Some(fb) = &mut self.feedback {
            if fb.on_tick() == Some(FeedbackSignal::Resume) {
                self.resume_input(env, InhibitReason::QueueFeedback);
            }
        }
        if let Some(fb) = &mut self.socket_feedback {
            if fb.on_tick() == Some(FeedbackSignal::Resume) {
                self.resume_input(env, InhibitReason::SocketFeedback);
            }
        }
        if let Some(lim) = &mut self.limiter {
            if self.stats.ticks % u64::from(self.cost.cycle_limit_period_ticks) == 0
                && lim.on_period_start()
            {
                self.resume_input(env, InhibitReason::CycleLimit);
            }
        }
        self.fault_tick(env);
    }
}
