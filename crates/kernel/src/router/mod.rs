//! The router kernel: a [`Workload`] implementing both the unmodified
//! 4.2BSD forwarding path and the paper's modified polling path.
//!
//! ## Unmodified path (paper Figure 6-2)
//!
//! ```text
//! wire -> NIC rx ring --(rx intr @SPLIMP, batched)--> ipintrq
//!      --(softnet @SPLNET: IP forward)--> [screend queue -> screend proc]
//!      --> output ifqueue --(if_start / tx intr @SPLIMP)--> tx ring -> wire
//! ```
//!
//! ## Modified path (paper §6.4)
//!
//! ```text
//! wire -> NIC rx ring --(stub intr: mark + wake)--> polling thread
//!      --(rx callback, quota: device + IP, process-to-completion)-->
//!      [screend queue (watermark feedback) -> screend proc] -->
//!      output ifqueue --(inline if_start / tx callback)--> tx ring -> wire
//! ```
//!
//! The forwarding work is real: every packet's Ethernet and IPv4 headers
//! are parsed from wire bytes, the header checksum verified, the TTL
//! decremented with an RFC 1624 incremental checksum fix, the route found
//! by longest-prefix match and the next hop resolved through the ARP cache
//! (with the paper's phantom entry for the nonexistent destination host).

use std::net::Ipv4Addr;

use livelock_core::cycle_limit::{CycleLimiter, LimiterDecision};
use livelock_core::feedback::{FeedbackSignal, WatermarkFeedback};
use livelock_core::gate::{GateChange, InhibitReason, IntrGate};
use livelock_core::poller::{PollAction, PollDirection, Poller, Quota, SourceId};
use livelock_core::rate_limit::IntrRateLimiter;
use livelock_machine::cost::CostModel;
use livelock_machine::cpu::{Chunk, CpuId, CtxKind, Env, EnvState, Workload};
use livelock_machine::fault::FaultKind;
use livelock_machine::ledger::CpuClass;
use livelock_machine::intr::IntrSrc;
use livelock_machine::ipl::Ipl;
use livelock_machine::nic::Nic;
use livelock_machine::thread::{Priority, ThreadId};
use livelock_machine::wire::Wire;
use livelock_net::arp::{ArpCache, ArpOp, ArpPacket, ARP_PACKET_LEN};
use livelock_net::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use livelock_net::filter::{Action, Filter};
use livelock_net::icmp::IcmpMessage;
use livelock_net::ipv4::decrement_ttl;
use livelock_net::ipv4::proto;
use livelock_net::packet::Packet;
use livelock_net::pool::{FrameBuf, FramePool};
use livelock_net::queue::DropTailQueue;
use livelock_net::red::{Admission, Red};
use livelock_net::route::{NextHop, RouteTable};
use livelock_sim::Cycles;

mod classify;
mod faults;
mod forwarding;
mod gating;
mod polled;
mod procs;
pub(crate) mod smp;
mod unmodified;

use classify::ClassEngine;
use faults::FaultState;
use livelock_net::classify::TrafficClass;
use smp::{SmpCtx, STEAL_BUF_CAP};

use crate::config::{KernelConfig, Mode};
use crate::flows::FlowRegistry;
use crate::stats::{DropReason, KernelStats};
use crate::telemetry::{LivelockDetector, ObsEvent, QueueDepths, Timeline};

use livelock_machine::ledger::CycleLedger;

/// External events the router kernel reacts to.
#[derive(Debug)]
pub enum Event {
    /// A frame finished arriving on an input wire; DMA places it in the
    /// interface's receive ring.
    RxArrive {
        /// Receiving interface index.
        iface: usize,
        /// The frame. Boxed so the event payload stays pointer-sized:
        /// every pending event (including the packet-less kinds) is
        /// stored, copied and resized at `size_of::<Event>` inside the
        /// scheduler, and an inline `Packet` would multiply that traffic
        /// by ~6x for the entire queue.
        pkt: Box<Packet>,
    },
    /// The output wire finished serializing the interface's in-flight
    /// frame.
    TxWireDone {
        /// Transmitting interface index.
        iface: usize,
    },
    /// The periodic hardware clock (self-rescheduling).
    ClockPulse,
    /// A receive interrupt deferred by the §5.1 rate limiter comes due.
    DeferredRxIntr {
        /// The interface whose interrupt was deferred.
        iface: usize,
    },
    /// A scheduled fault from the configured [`FaultPlan`] fires.
    ///
    /// [`FaultPlan`]: livelock_machine::fault::FaultPlan
    Fault(FaultKind),
    /// A cross-CPU wakeup from a sibling CPU in an SMP cluster, injected
    /// by the interleaver's slice hook when this CPU's coalesced IPI
    /// flag is set. Never scheduled on a uniprocessor.
    Ipi,
}

/// Chunk tags.
mod tag {
    pub const RX_DISPATCH: u64 = 1;
    pub const RX_PKT: u64 = 2;
    pub const SOFTNET_DISPATCH: u64 = 3;
    pub const SOFTNET_PKT: u64 = 4;
    pub const TX_DISPATCH: u64 = 5;
    pub const TX_RECLAIM: u64 = 6;
    pub const TX_START: u64 = 7;
    pub const RX_STUB: u64 = 8;
    pub const TX_STUB: u64 = 9;
    pub const POLL_CB_START: u64 = 10;
    pub const POLL_RX_PKT: u64 = 11;
    pub const POLL_TX_PKT: u64 = 12;
    pub const POLL_TX_START: u64 = 13;
    pub const SCREEND_PKT: u64 = 14;
    pub const USER: u64 = 15;
    pub const CLOCK: u64 = 16;
    pub const HOUSEKEEPING: u64 = 17;
    pub const APP_PKT: u64 = 18;
    pub const IPI: u64 = 19;
    /// Per-class polled receive chunks (classified kernels): the class
    /// rides the tag so the cycle ledger's fold and the chunk hooks see
    /// which priority the polling thread is serving.
    pub const POLL_RX_PKT_P0: u64 = 20;
    pub const POLL_RX_PKT_P1: u64 = 21;
    pub const POLL_RX_PKT_P2: u64 = 22;
}

/// The class ring a per-class polled receive tag drains, `None` for
/// every other tag.
fn tag_class(t: u64) -> Option<usize> {
    match t {
        tag::POLL_RX_PKT_P0 => Some(0),
        tag::POLL_RX_PKT_P1 => Some(1),
        tag::POLL_RX_PKT_P2 => Some(2),
        _ => None,
    }
}

/// The per-class polled receive tag for a class ring index.
fn class_tag(c: usize) -> u64 {
    match c {
        0 => tag::POLL_RX_PKT_P0,
        1 => tag::POLL_RX_PKT_P1,
        _ => tag::POLL_RX_PKT_P2,
    }
}

/// The human-readable stage label for a kernel chunk tag — the `stage`
/// leg of the machine's `cpu;class;stage` flamegraph fold. Tag 0 is the
/// machine's own scheduling/idle charge.
pub fn tag_label(t: u64) -> &'static str {
    match t {
        0 => "(exec)",
        tag::RX_DISPATCH => "rx_dispatch",
        tag::RX_PKT => "rx_pkt",
        tag::SOFTNET_DISPATCH => "softnet_dispatch",
        tag::SOFTNET_PKT => "softnet_pkt",
        tag::TX_DISPATCH => "tx_dispatch",
        tag::TX_RECLAIM => "tx_reclaim",
        tag::TX_START => "tx_start",
        tag::RX_STUB => "rx_stub",
        tag::TX_STUB => "tx_stub",
        tag::POLL_CB_START => "poll_cb_start",
        tag::POLL_RX_PKT => "poll_rx_pkt",
        tag::POLL_TX_PKT => "poll_tx_pkt",
        tag::POLL_TX_START => "poll_tx_start",
        tag::SCREEND_PKT => "screend_pkt",
        tag::USER => "user_chunk",
        tag::CLOCK => "clock_tick",
        tag::HOUSEKEEPING => "housekeeping",
        tag::APP_PKT => "app_pkt",
        tag::IPI => "ipi",
        tag::POLL_RX_PKT_P0 => "poll_rx_pkt_p0",
        tag::POLL_RX_PKT_P1 => "poll_rx_pkt_p1",
        tag::POLL_RX_PKT_P2 => "poll_rx_pkt_p2",
        _ => "(unknown)",
    }
}

/// What an interrupt source belongs to.
#[derive(Clone, Copy, Debug)]
enum SrcRole {
    Rx(usize),
    Tx(usize),
    Softnet,
    Clock,
    Softclock,
    Ipi,
}

struct Iface {
    nic: Nic,
    ip: Ipv4Addr,
    out_q: DropTailQueue<Packet>,
    out_red: Option<Red>,
    wire: Wire,
    inflight: Option<Packet>,
    rx_src: IntrSrc,
    tx_src: IntrSrc,
    mac: MacAddr,
    poll_sid: SourceId,
    /// Handler state: the dispatch chunk has run for the current
    /// activation.
    rx_in_handler: bool,
    tx_in_handler: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct PollState {
    action: Option<PollAction>,
    done_in_cb: u32,
    cb_started_at: Cycles,
}

/// Which ICMP error an undeliverable packet triggers.
#[derive(Clone, Copy, Debug)]
enum IcmpErrorKind {
    TimeExceeded,
    NetUnreachable,
    HostUnreachable,
}

/// Where a routed packet goes next.
enum Routed {
    /// Out through this interface.
    Forward(usize, Packet),
    /// Addressed to the host itself: local (end-system) delivery.
    Local(Packet),
}

/// The router kernel (a [`Workload`] for the machine engine).
pub struct RouterKernel {
    cfg: KernelConfig,
    cost: CostModel,
    ifaces: Vec<Iface>,
    src_roles: Vec<SrcRole>,
    softnet_src: IntrSrc,
    clock_src: IntrSrc,
    softclock_src: IntrSrc,
    softnet_in_handler: bool,
    clock_in_handler: bool,
    softclock_in_handler: bool,
    /// `ipintrq`: packets awaiting IP-layer processing (unmodified mode).
    ipintrq: DropTailQueue<Packet>,
    /// Queue to the user-mode screend process: already-routed packets with
    /// their output interface.
    screend_q: DropTailQueue<(usize, Packet)>,
    /// Local socket receive buffer (end-system mode).
    socket_q: DropTailQueue<Packet>,
    socket_feedback: Option<WatermarkFeedback>,
    reply_seq: u64,
    rx_rate_limiter: Option<IntrRateLimiter>,
    /// Per-interface flag: a deferred receive interrupt is scheduled.
    rx_intr_deferred: Vec<bool>,
    /// ICMP errors awaiting transmission (drained right after routing).
    pending_icmp: Vec<Packet>,
    icmp_pace: IntrRateLimiter,
    routes: RouteTable,
    arp: ArpCache,
    filter: Filter,
    poller: Poller,
    gate: IntrGate,
    feedback: Option<WatermarkFeedback>,
    limiter: Option<CycleLimiter>,
    poll: PollState,
    poll_tid: Option<ThreadId>,
    screend_tid: Option<ThreadId>,
    app_tid: Option<ThreadId>,
    user_tid: Option<ThreadId>,
    /// Frame pool for kernel-originated packets (ARP/ICMP/UDP replies).
    /// `None` falls back to per-packet heap allocation.
    pool: Option<FramePool>,
    /// Live fault-injection state; `None` when no fault plan is
    /// configured, in which case every fault hook is dead code.
    fault: Option<FaultState>,
    /// This kernel's view of the SMP cluster; `None` on a uniprocessor,
    /// in which case every cross-CPU hook is dead code and the kernel is
    /// byte-identical to one built before the SMP layer existed.
    smp: Option<SmpCtx>,
    /// The per-CPU IPI interrupt source, registered by
    /// [`RouterKernel::attach_smp`].
    ipi_src: Option<IntrSrc>,
    ipi_in_handler: bool,
    /// The online livelock detector; `None` unless
    /// [`KernelConfig::observe`] is set, in which case the clock tick
    /// pays nothing for it.
    detector: Option<LivelockDetector>,
    /// Priority-aware flow classification; `None` unless
    /// [`KernelConfig::classes`] is set, in which case every class hook
    /// is dead code and the run is byte-identical to a classless build.
    classes: Option<ClassEngine>,
    stats: KernelStats,
}

impl RouterKernel {
    /// Builds the machine state and kernel for a configuration, with the
    /// paper's two-interface topology: interface `i` owns subnet
    /// `10.<i>.0.0/16` and a phantom ARP entry exists for the test
    /// destination `10.1.0.99`.
    pub fn build(cfg: KernelConfig) -> (EnvState<Event>, RouterKernel) {
        Self::build_inner(cfg, None)
    }

    /// Like [`RouterKernel::build`], but every kernel-originated packet
    /// (ARP replies, ICMP errors, application replies) draws its frame
    /// buffer from `pool`, and [`KernelStats::pool`] reports the pool's
    /// occupancy counters.
    pub fn build_with_pool(cfg: KernelConfig, pool: FramePool) -> (EnvState<Event>, RouterKernel) {
        Self::build_inner(cfg, Some(pool))
    }

    fn build_inner(cfg: KernelConfig, pool: Option<FramePool>) -> (EnvState<Event>, RouterKernel) {
        let cost = cfg.cost;
        let mut st = EnvState::with_scheduler(cost.quantum(), cfg.scheduler);

        let clock_src = st.intr.register("clock", Ipl::CLOCK);
        let softclock_src = st.intr.register("softclock", Ipl::SOFTCLOCK);
        let softnet_src = st.intr.register("softnet", Ipl::SOFTNET);
        let mut src_roles = vec![SrcRole::Clock, SrcRole::Softclock, SrcRole::Softnet];

        let polled = cfg.polled_config().copied();
        let mut poller = Poller::new(
            polled.map_or(Quota::Unlimited, |p| p.rx_quota),
            polled.map_or(Quota::Unlimited, |p| p.tx_quota),
        );

        let mut ifaces = Vec::with_capacity(cfg.num_ifaces);
        let mut routes = RouteTable::new();
        for i in 0..cfg.num_ifaces {
            // Interrupt sources are registered rx-before-tx so the
            // controller's deterministic tie-break services receives first,
            // the §4.4 condition for transmit starvation.
            let rx_src = st.intr.register("nic-rx", Ipl::IMP);
            src_roles.push(SrcRole::Rx(i));
            let tx_src = st.intr.register("nic-tx", Ipl::IMP);
            src_roles.push(SrcRole::Tx(i));
            let poll_sid = poller.register();
            routes.insert(
                Ipv4Addr::new(10, i as u8, 0, 0),
                16,
                NextHop {
                    iface: i,
                    gateway: None,
                },
            );
            ifaces.push(Iface {
                nic: Nic::new("ln", cfg.nic),
                ip: Ipv4Addr::new(10, i as u8, 0, 1),
                out_q: DropTailQueue::new("ifqueue", cfg.ifq_cap),
                out_red: cfg
                    .ifq_red
                    .then(|| Red::for_capacity(cfg.ifq_cap, 0x5EED + i as u64)),
                wire: Wire::ethernet_10m(cost.freq),
                inflight: None,
                rx_src,
                tx_src,
                mac: MacAddr::local(i as u32 + 1),
                poll_sid,
                rx_in_handler: false,
                tx_in_handler: false,
            });
        }

        let mut arp = ArpCache::new();
        // The paper's trick: "we fooled the router by inserting a phantom
        // entry into its ARP table" for the nonexistent destination.
        arp.insert_phantom(Ipv4Addr::new(10, 1, 0, 99), MacAddr::local(0x99));
        // The source host, so an end-system application can send replies.
        arp.insert_phantom(Ipv4Addr::new(10, 0, 0, 2), MacAddr::local(0x100));

        let poll_tid = polled
            .is_some()
            .then(|| st.sched.spawn("netpoll", Priority::KERNEL));
        let screend_tid = cfg
            .screend
            .is_some()
            .then(|| st.sched.spawn("screend", Priority::USER));
        let app_tid = cfg
            .local
            .is_some()
            .then(|| st.sched.spawn("udpserver", Priority::USER));
        let user_tid = cfg
            .user_process
            .then(|| st.sched.spawn("compute", Priority::USER));
        if let Some(tid) = user_tid {
            st.sched.wake(tid);
        }

        // Attribute every execution context to its CPU class so the
        // machine's conserved cycle ledger can decompose "where did the
        // CPU go" (softclock counts as kernel housekeeping, not the
        // network soft interrupt).
        st.set_intr_class(clock_src, CpuClass::ClockIntr);
        st.set_intr_class(softclock_src, CpuClass::KernelOther);
        st.set_intr_class(softnet_src, CpuClass::SoftIntNet);
        for iface in &ifaces {
            st.set_intr_class(iface.rx_src, CpuClass::RxIntr);
            st.set_intr_class(iface.tx_src, CpuClass::TxIntr);
        }
        if let Some(tid) = poll_tid {
            st.set_thread_class(tid, CpuClass::PollThread);
        }
        if let Some(tid) = screend_tid {
            st.set_thread_class(tid, CpuClass::Screend);
        }
        if let Some(tid) = app_tid {
            st.set_thread_class(tid, CpuClass::UserProc);
        }
        if let Some(tid) = user_tid {
            st.set_thread_class(tid, CpuClass::UserProc);
        }

        let feedback = polled.and_then(|p| p.feedback).map(|f| {
            WatermarkFeedback::new(
                cfg.screend.as_ref().map_or(32, |s| s.queue_cap),
                f.hi_frac,
                f.lo_frac,
                f.timeout_ticks,
            )
        });
        let limiter = polled
            .and_then(|p| p.cycle_limit_frac)
            .map(|frac| CycleLimiter::new(cost.cycle_limit_period().raw(), frac));
        let socket_feedback = match (&polled, &cfg.local) {
            (Some(_), Some(l)) => l.feedback.map(|f| {
                WatermarkFeedback::new(l.socket_cap, f.hi_frac, f.lo_frac, f.timeout_ticks)
            }),
            _ => None,
        };
        let socket_cap = cfg.local.map_or(1, |l| l.socket_cap);
        let rx_rate_limiter = cfg
            .intr_rate_limit
            .map(|r| IntrRateLimiter::per_second(r.max_rate_hz, cost.freq.as_hz(), r.burst));
        let rx_intr_deferred = vec![false; cfg.num_ifaces];

        let screend_cap = cfg.screend.as_ref().map_or(1, |s| s.queue_cap);
        let filter = cfg
            .screend
            .as_ref()
            .map_or_else(Filter::accept_all, |s| s.rules.clone());

        // First clock tick.
        st.schedule_at(cost.clock_tick_interval, Event::ClockPulse);

        // Scheduled fault injections. An absent or empty plan schedules
        // no events and allocates no state, so a fault-free run is
        // bit-for-bit identical to a build without the fault layer.
        let fault = match &cfg.faults {
            Some(plan) if !plan.is_empty() => {
                for ev in plan.events() {
                    st.schedule_at(ev.at, Event::Fault(ev.kind));
                }
                Some(FaultState::new(cfg.num_ifaces))
            }
            _ => None,
        };

        // Priority-aware classification: on a polled kernel the class
        // picks one of three per-priority receive rings; an unmodified
        // kernel keeps its single ring (classes are observed, not
        // enforced — the chaos --priority contrast).
        let classes = cfg.classes.as_ref().map(ClassEngine::new);
        if classes.is_some() && matches!(cfg.mode, Mode::Polled(_)) {
            for iface in &mut ifaces {
                iface.nic.enable_class_rings(TrafficClass::COUNT);
            }
        }

        let mut stats = KernelStats::new();
        stats.class = classes.is_some().then(crate::stats::ClassStats::new);
        stats.timeline = cfg.telemetry.map(Timeline::new);
        // The observability layer: per-flow registry, online livelock
        // detector, and the machine's (cpu, class, stage) cycle fold.
        // All three are pure bookkeeping — when absent nothing is
        // allocated and the run is bit-identical; when present the run
        // is *still* bit-identical, just observed.
        stats.flows = cfg.observe.map(|o| FlowRegistry::new(o.flow_slots));
        let detector = cfg.observe.map(LivelockDetector::new);
        if cfg.observe.is_some() {
            st.enable_fold();
        }

        let kernel = RouterKernel {
            ipintrq: DropTailQueue::new("ipintrq", cfg.ipintrq_cap),
            screend_q: DropTailQueue::new("screendq", screend_cap),
            socket_q: DropTailQueue::new("socketq", socket_cap),
            socket_feedback,
            reply_seq: 0,
            rx_rate_limiter,
            rx_intr_deferred,
            pending_icmp: Vec::new(),
            // Standard ICMP-error pacing: ~1000/s with small bursts.
            icmp_pace: IntrRateLimiter::new(cost.clock_tick_interval.raw(), 8),
            cfg,
            cost,
            ifaces,
            src_roles,
            softnet_src,
            clock_src,
            softclock_src,
            softnet_in_handler: false,
            clock_in_handler: false,
            softclock_in_handler: false,
            routes,
            arp,
            filter,
            poller,
            gate: IntrGate::new(),
            feedback,
            limiter,
            poll: PollState::default(),
            poll_tid,
            screend_tid,
            app_tid,
            user_tid,
            pool,
            fault,
            smp: None,
            ipi_src: None,
            ipi_in_handler: false,
            detector,
            classes,
            stats,
        };
        (st, kernel)
    }

    /// Joins this kernel to an SMP cluster: registers the per-CPU IPI
    /// interrupt source (device priority — a cross-CPU wakeup preempts
    /// threads and software interrupts like any device interrupt) and
    /// installs the shared-state handle. Must be called before the
    /// engine runs; a kernel without it is a plain uniprocessor.
    pub(crate) fn attach_smp(&mut self, st: &mut EnvState<Event>, ctx: SmpCtx) {
        let src = st.intr.register("ipi", Ipl::IMP);
        st.set_intr_class(src, CpuClass::KernelOther);
        self.src_roles.push(SrcRole::Ipi);
        self.ipi_src = Some(src);
        self.smp = Some(ctx);
    }

    /// Frames the interface's NIC accepted into its receive ring
    /// (`netstat -i` `Ipkts`), for NIC-boundary conservation checks.
    pub fn ipkts(&self, iface: usize) -> u64 {
        self.ifaces[iface].nic.ipkts()
    }

    /// The kernel's frame pool, when built with one.
    pub fn pool(&self) -> Option<&FramePool> {
        self.pool.as_ref()
    }

    /// Refreshes [`KernelStats::pool`] from the live pool counters.
    pub fn sync_pool_stats(&mut self) {
        if let Some(pool) = &self.pool {
            self.stats.pool = Some(pool.stats());
        }
    }

    /// A zero-filled frame buffer: pooled when the kernel has a pool,
    /// heap-allocated otherwise.
    fn alloc_frame(&self, len: usize) -> FrameBuf {
        match &self.pool {
            Some(pool) => pool.take(len),
            None => FrameBuf::from(vec![0u8; len]),
        }
    }

    /// Clock-tick telemetry hook: when the sampler is enabled and a sample
    /// is due, records per-class CPU shares (from the machine's conserved
    /// cycle ledger), every queue depth along the forwarding path, the
    /// interrupt gate's inhibit bitmask, and the interrupt rate.
    fn sample_telemetry(&mut self, env: &mut Env<'_, Event>) {
        let depths = self.queue_depths();
        let class_delivered = self.class_delivered_cum();
        let Some(tl) = &mut self.stats.timeline else {
            return;
        };
        if !tl.on_tick() {
            return;
        }
        tl.sample(
            env.now(),
            env.ledger(),
            env.intr_total_taken(),
            depths,
            self.gate.bits(),
            class_delivered,
            self.cost.freq,
        );
    }

    /// Cumulative per-traffic-class delivery counters for the timeline
    /// (all-zero when classification is off).
    fn class_delivered_cum(&self) -> [u64; 3] {
        match &self.stats.class {
            Some(cs) => {
                let mut out = [0u64; 3];
                for c in TrafficClass::ALL {
                    out[c.index()] = cs.get(c).delivered;
                }
                out
            }
            None => [0; 3],
        }
    }

    /// Every queue depth along the forwarding path, as sampled by both
    /// the timeline and the drain-time fallback sample. On an unmodified
    /// SMP kernel the IP input queue is the shared one; the local
    /// ipintrq never fills.
    fn queue_depths(&self) -> QueueDepths {
        let ipintrq_depth = match &self.smp {
            Some(ctx) if !self.is_polled() => ctx.shared.borrow().ipintrq.len(),
            _ => self.ipintrq.len(),
        };
        QueueDepths {
            rx_ring: self.ifaces.iter().map(|i| i.nic.rx_pending()).sum(),
            ipintrq: ipintrq_depth,
            screend_q: self.screend_q.len(),
            out_ifq: self.ifaces.iter().map(|i| i.out_q.len()).sum(),
            socket_q: self.socket_q.len(),
        }
    }

    /// Drain-time fallback: a trial shorter than one sampling interval
    /// would otherwise return an *empty* time series even though
    /// telemetry was requested. When the timeline is enabled and never
    /// got a tick-aligned sample, record one final sample at drain so
    /// the series always has at least one point.
    pub(crate) fn finalize_timeline(&mut self, now: Cycles, ledger: CycleLedger, taken: u64) {
        let depths = self.queue_depths();
        let gate = self.gate.bits();
        let freq = self.cost.freq;
        let class_delivered = self.class_delivered_cum();
        let Some(tl) = &mut self.stats.timeline else {
            return;
        };
        if !tl.is_empty() {
            return;
        }
        tl.sample(now, ledger, taken, depths, gate, class_delivered, freq);
    }

    /// Clock-tick observability hook: feeds the windowed livelock
    /// detector with the kernel's monotone counters and the per-flow
    /// registry. Runs after `sample_telemetry` and mutates nothing the
    /// simulation reads back — the detector is an observer, not a
    /// controller.
    fn observe_tick(&mut self, env: &mut Env<'_, Event>) {
        let Some(det) = &mut self.detector else {
            return;
        };
        let delivered = self.stats.transmitted + self.stats.app_delivered;
        let window_closed = det.on_tick(
            env.now(),
            self.stats.arrived,
            delivered,
            self.stats.user_chunks,
            self.cfg.user_process,
            self.stats.flows.as_ref(),
        );
        // Window-aligned cross-class SLO judge: fires the upgraded
        // PriorityInversion on real inversion — Control blowing its p99
        // SLO (or starving outright) while Bulk is still served.
        if !window_closed {
            return;
        }
        let Some(ce) = &self.classes else {
            return;
        };
        let slo = livelock_sim::Nanos::new((ce.slo_p99_us * 1_000.0) as u64);
        let Some(cs) = &mut self.stats.class else {
            return;
        };
        let (_, p99) = cs.take_window_p99(TrafficClass::Control);
        det.judge_classes(
            env.now(),
            cs.get(TrafficClass::Control).arrived,
            cs.get(TrafficClass::Control).delivered,
            cs.get(TrafficClass::Bulk).delivered,
            p99,
            slo,
        );
    }

    /// Drains the livelock detector's typed event stream (empty when
    /// observability is off).
    pub(crate) fn take_obs_events(&mut self) -> Vec<ObsEvent> {
        match &mut self.detector {
            Some(det) => det.take_events(),
            None => Vec::new(),
        }
    }

    /// Stamps the detector with the CPU it observes (SMP trials).
    pub(crate) fn set_observe_cpu(&mut self, cpu: CpuId) {
        if let Some(det) = &mut self.detector {
            det.set_cpu(cpu);
        }
    }

    /// The kernel's statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Mutable statistics access (to install measurement windows).
    pub fn stats_mut(&mut self) -> &mut KernelStats {
        &mut self.stats
    }

    /// The configuration the kernel was built with.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// The compute-bound user thread, when configured.
    pub fn user_tid(&self) -> Option<ThreadId> {
        self.user_tid
    }

    /// The polling thread, in polled mode.
    pub fn poll_tid(&self) -> Option<ThreadId> {
        self.poll_tid
    }

    /// Adds a route (for non-default topologies).
    pub fn add_route(&mut self, prefix: Ipv4Addr, len: u8, hop: NextHop) {
        self.routes.insert(prefix, len, hop);
    }

    /// Adds a permanent ARP entry (for non-default topologies).
    pub fn add_phantom_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert_phantom(ip, mac);
    }

    /// Interface-level drop count (receive ring overflows).
    pub fn rx_ring_drops(&self) -> u64 {
        self.ifaces.iter().map(|i| i.nic.rx_ring_drops()).sum()
    }

    /// Total interrupts taken is tracked by the controller; expose the
    /// per-interface `Opkts` for `netstat`-style sampling.
    pub fn opkts(&self, iface: usize) -> u64 {
        self.ifaces[iface].nic.opkts()
    }

    /// A frame finished arriving on interface `i`: DMA into the receive
    /// ring, then (maybe) a receive interrupt. Shared by wire arrivals
    /// and fault-injected overrun storms so both obey the same
    /// accounting.
    fn rx_arrive(&mut self, env: &mut Env<'_, Event>, i: usize, pkt: Packet) {
        let mut pkt = pkt;
        if let Some(f) = &mut self.fault {
            // A flapped link loses the frame on the wire, before the NIC
            // (and the arrival counter) ever sees it.
            if env.now() < f.link_down_until[i] {
                self.stats.fault.link_down_losses += 1;
                return;
            }
            // An armed mutation corrupts the frame in place; the IPv4
            // header checksum (or length checks) catch it downstream.
            if let Some(m) = f.pending_mutation[i].take() {
                m.apply(&mut pkt);
                self.stats.fault.mutated_frames += 1;
            }
        }
        // Flow attribution is parsed once at the NIC boundary and rides
        // the packet from here on; the parse only runs when the per-flow
        // registry exists, so unobserved runs touch no extra bytes.
        if self.stats.flows.is_some() {
            pkt.flow = pkt.flow_key();
        }
        self.stats.record_arrival(env.now());
        self.stats.flow_arrival(pkt.flow);
        pkt.arrived_at = env.now();
        // The class-aware admission gate: classify, stamp, and — on a
        // polled kernel under an active shed level — drop low-priority
        // traffic here, before it costs a ring slot or a cycle of
        // kernel work.
        if !self.class_admit(&mut pkt) {
            return;
        }
        // A ring overflow while the gate is closed is the drop the
        // feedback deliberately asked for (§6.4); attribute it so.
        let inhibited = self.is_polled() && !self.gate.is_open();
        // Work stealing: a frame that would overflow this CPU's ring is
        // published for an idle sibling instead — unless feedback closed
        // the gate, in which case the drop is the point.
        if !inhibited {
            pkt = match self.steal_publish(pkt, i) {
                Some(p) => p,
                None => return,
            };
        }
        let flow = pkt.flow;
        let class = pkt.class;
        let iface = &mut self.ifaces[i];
        // A classified kernel lands the frame in its class's priority
        // ring; `rx_arrive_classed` falls back to the single legacy
        // ring when class rings are off (unmodified mode).
        let accepted = match class {
            Some(c) => iface.nic.rx_arrive_classed(pkt, c.index()).is_ok(),
            None => iface.nic.rx_arrive(pkt).is_ok(),
        };
        if accepted {
            if iface.nic.rx_intr_enabled() {
                self.post_rx_intr(env, i);
            }
        } else if inhibited {
            self.stats.record_drop_for(DropReason::FeedbackInhibit, flow);
        } else {
            self.stats.record_drop_for(DropReason::RxRingFull, flow);
        }
    }

    /// If stealing is on and the ring is full, parks the frame in this
    /// CPU's steal buffer (or drops it when that is full too) and
    /// signals idle siblings. Returns the frame when it did neither and
    /// normal DMA should proceed.
    fn steal_publish(&mut self, pkt: Packet, i: usize) -> Option<Packet> {
        let Some(ctx) = &self.smp else {
            return Some(pkt);
        };
        if !ctx.steal || !self.ifaces[i].nic.rx_ring_is_full() {
            return Some(pkt);
        }
        let me = ctx.cpu.0;
        let mut sh = ctx.shared.borrow_mut();
        if sh.steal_bufs[me].len() >= STEAL_BUF_CAP {
            drop(sh);
            self.stats.record_drop_for(DropReason::RxRingFull, pkt.flow);
            return None;
        }
        sh.steal_bufs[me].push_back(pkt);
        sh.steals_published[me] += 1;
        // Coalesced "steal work available" signal to every sibling; the
        // interleaver turns each flag into at most one IPI per slice.
        let ncpus = ctx.ncpus;
        for j in 0..ncpus {
            if j != me {
                sh.ipi_pending[j] = true;
            }
        }
        None
    }

    /// The unmodified SMP wakeup-and-drain: runs on CPU 0 when a
    /// sibling's IPI lands (polled kernels instead wake their poller to
    /// go stealing).
    fn ipi_done(&mut self, env: &mut Env<'_, Event>) {
        let Some(ctx) = &self.smp else {
            return;
        };
        if self.is_polled() {
            if let Some(tid) = self.poll_tid {
                env.wake(tid);
            }
        } else if !ctx.shared.borrow().ipintrq.is_empty() {
            env.post_intr(self.softnet_src);
        }
    }

    /// The interrupt gate's inhibit bitmask (zero = open).
    pub fn gate_bits(&self) -> u8 {
        self.gate.bits()
    }

    /// Whether the interrupt gate is open (no inhibit reason active).
    pub fn gate_is_open(&self) -> bool {
        self.gate.is_open()
    }

    /// Current depth of the screend input queue.
    pub fn screend_q_len(&self) -> usize {
        self.screend_q.len()
    }

    /// Times the watermark feedback's timeout safety net re-enabled
    /// input (zero when feedback is not configured).
    pub fn feedback_timeout_resumes(&self) -> u64 {
        self.feedback.as_ref().map_or(0, |f| f.timeout_resumes())
    }

    /// Drains the accumulated fault/recovery markers for trace export
    /// (empty when no fault plan is configured).
    pub fn take_fault_markers(&mut self) -> Vec<(Cycles, String)> {
        self.fault
            .as_mut()
            .map_or_else(Vec::new, |f| std::mem::take(&mut f.markers))
    }

    fn is_polled(&self) -> bool {
        matches!(self.cfg.mode, Mode::Polled(_))
    }

    /// May per-packet handler chunks be issued as bursts
    /// ([`Chunk::with_reps`])? Fault injection can change arbitrary state
    /// between packets (lost interrupts, ring corruption, stalls), so any
    /// configured plan disables bursting outright.
    fn burstable(&self) -> bool {
        self.fault.is_none()
    }

    /// May the *polling thread's* per-packet chunks be issued as bursts?
    /// A burst promises that none of `poll_next`'s stop conditions can
    /// fire between repetitions. The quota is accounted for in the rep
    /// count and the ring/reclaim backlogs only grow from outside, but the
    /// interrupt gate must provably stay open: queue feedback, socket
    /// feedback and the cycle limiter can all close it from a preempting
    /// context, so bursting requires all three to be unconfigured.
    /// Classification adds a fourth condition: the strict-priority drain
    /// re-picks its ring (and spends a burst budget unit) per packet, so
    /// a multi-packet promise cannot hold — a higher-priority frame may
    /// land between repetitions and must preempt the round.
    fn poll_burstable(&self) -> bool {
        self.burstable()
            && self.feedback.is_none()
            && self.socket_feedback.is_none()
            && self.limiter.is_none()
            && self.classes.is_none()
    }

    fn emulation_overhead(&self) -> Cycles {
        match self.cfg.mode {
            Mode::Unmodified {
                emulate_modified_structure: true,
            } => self.cost.poll_loop_check,
            _ => Cycles::ZERO,
        }
    }
}

impl Workload for RouterKernel {
    type Event = Event;

    fn next_chunk(&mut self, env: &mut Env<'_, Event>, ctx: CtxKind) -> Option<Chunk> {
        match ctx {
            CtxKind::Intr(src) => match self.src_roles[src.0] {
                SrcRole::Clock => {
                    if self.clock_in_handler {
                        self.clock_in_handler = false;
                        return None;
                    }
                    self.clock_in_handler = true;
                    Some(Chunk::new(self.cost.clock_tick_handler, tag::CLOCK))
                }
                SrcRole::Softclock => {
                    if self.softclock_in_handler {
                        self.softclock_in_handler = false;
                        return None;
                    }
                    self.softclock_in_handler = true;
                    Some(Chunk::new(
                        self.cost.housekeeping_per_tick,
                        tag::HOUSEKEEPING,
                    ))
                }
                SrcRole::Softnet => self.softnet_next(env),
                SrcRole::Rx(i) => {
                    if self.is_polled() {
                        self.stub_next(i, true)
                    } else {
                        self.unmod_rx_next(env, i)
                    }
                }
                SrcRole::Tx(i) => {
                    if self.is_polled() {
                        self.stub_next(i, false)
                    } else {
                        self.unmod_tx_next(env, i)
                    }
                }
                SrcRole::Ipi => {
                    if self.ipi_in_handler {
                        self.ipi_in_handler = false;
                        if let Some(src) = self.ipi_src {
                            env.intr_ack(src);
                        }
                        return None;
                    }
                    self.ipi_in_handler = true;
                    Some(Chunk::new(
                        self.cost.intr_dispatch + self.cost.ipi,
                        tag::IPI,
                    ))
                }
            },
            CtxKind::Thread(tid) => {
                if Some(tid) == self.poll_tid {
                    self.poll_next(env)
                } else if Some(tid) == self.screend_tid {
                    self.screend_next(env)
                } else if Some(tid) == self.app_tid {
                    self.app_next(env)
                } else if Some(tid) == self.user_tid {
                    Some(Chunk::new(self.cost.user_chunk, tag::USER))
                } else {
                    None
                }
            }
        }
    }

    fn chunk_start(&mut self, env: &mut Env<'_, Event>, ctx: CtxKind, tag_id: u64) {
        // Issue-time work for burst repetitions: exactly what the
        // corresponding `next_chunk` arm would have done before returning
        // the chunk — stamping the head packet it is about to process.
        // Observationally pure per the `Workload::chunk_start` contract:
        // no interrupt posts/acks, no wake/sleep, no event scheduling.
        match (ctx, tag_id) {
            (CtxKind::Intr(src), tag::RX_PKT) => {
                if let SrcRole::Rx(i) = self.src_roles[src.0] {
                    if let Some(p) = self.ifaces[i].nic.rx_peek_mut() {
                        p.stamps.ring_deq = env.now();
                    }
                }
            }
            (CtxKind::Intr(_), tag::SOFTNET_PKT) => {
                if let Some(p) = self.ipintrq.peek_mut() {
                    p.stamps.fwd_start = env.now();
                }
            }
            (CtxKind::Thread(_), tag::POLL_RX_PKT) => {
                if let Some(action) = self.poll.action {
                    if let Some(p) = self.ifaces[action.source.0].nic.rx_peek_mut() {
                        p.stamps.ring_deq = env.now();
                        p.stamps.fwd_start = env.now();
                    }
                }
            }
            (CtxKind::Thread(_), t) if tag_class(t).is_some() => {
                if let (Some(action), Some(c)) = (self.poll.action, tag_class(t)) {
                    if let Some(p) = self.ifaces[action.source.0].nic.rx_peek_class_mut(c) {
                        p.stamps.ring_deq = env.now();
                        p.stamps.fwd_start = env.now();
                    }
                }
            }
            _ => {}
        }
    }

    fn chunk_done(&mut self, env: &mut Env<'_, Event>, ctx: CtxKind, tag_id: u64) {
        match (ctx, tag_id) {
            (CtxKind::Intr(src), tag::RX_PKT) => {
                if let SrcRole::Rx(i) = self.src_roles[src.0] {
                    self.unmod_rx_done(env, i);
                }
            }
            (CtxKind::Intr(src), tag::RX_STUB) => {
                if let SrcRole::Rx(i) = self.src_roles[src.0] {
                    self.stub_done(env, i, true);
                }
            }
            (CtxKind::Intr(src), tag::TX_STUB) => {
                if let SrcRole::Tx(i) = self.src_roles[src.0] {
                    self.stub_done(env, i, false);
                }
            }
            (CtxKind::Intr(_), tag::SOFTNET_PKT) => self.softnet_done(env),
            (CtxKind::Intr(src), tag::TX_RECLAIM) => {
                if let SrcRole::Tx(i) = self.src_roles[src.0] {
                    self.ifaces[i].nic.tx_reclaim_one();
                }
            }
            (CtxKind::Intr(src), tag::TX_START) => {
                if let SrcRole::Tx(i) = self.src_roles[src.0] {
                    self.try_tx_start(env, i);
                }
            }
            (CtxKind::Intr(_), tag::CLOCK) => self.clock_done(env),
            (CtxKind::Intr(_), tag::IPI) => self.ipi_done(env),
            (CtxKind::Thread(_), tag::POLL_RX_PKT) => self.poll_rx_done(env, None),
            (CtxKind::Thread(_), t) if tag_class(t).is_some() => {
                self.poll_rx_done(env, tag_class(t))
            }
            (CtxKind::Thread(_), tag::POLL_TX_PKT) => self.poll_tx_done(env, true),
            (CtxKind::Thread(_), tag::POLL_TX_START) => self.poll_tx_done(env, false),
            (CtxKind::Thread(_), tag::SCREEND_PKT) => self.screend_done(env),
            (CtxKind::Thread(_), tag::APP_PKT) => self.app_done(env),
            (CtxKind::Thread(_), tag::USER) => self.stats.user_chunks += 1,
            _ => {}
        }
    }

    fn on_event(&mut self, env: &mut Env<'_, Event>, event: Event) {
        match event {
            Event::RxArrive { iface: i, pkt } => self.rx_arrive(env, i, *pkt),
            Event::TxWireDone { iface: i } => {
                let now = env.now();
                let (latency_src, post_tx) = {
                    let iface = &mut self.ifaces[i];
                    iface.nic.tx_complete();
                    let pkt = iface.inflight.take();
                    Self::kick_wire(env, iface, i);
                    (pkt, iface.nic.tx_intr_enabled())
                };
                self.stats.record_tx(now);
                if let Some(pkt) = latency_src {
                    // Kernel-originated packets (ARP/ICMP/replies) never
                    // arrived on a wire and are not latency samples.
                    if pkt.arrived_at != Cycles::MAX {
                        if self.cfg.latency_tracking {
                            self.stats.latency.record_delivery(
                                pkt.arrived_at,
                                &pkt.stamps,
                                now,
                                self.cost.freq,
                            );
                        }
                        self.stats
                            .flow_delivery(pkt.flow, pkt.arrived_at, now, self.cost.freq);
                        self.stats
                            .class_delivery(pkt.class, pkt.arrived_at, now, self.cost.freq);
                    }
                }
                if post_tx && !self.consume_lost_tx_intr(i) {
                    env.post_intr(self.ifaces[i].tx_src);
                }
            }
            Event::ClockPulse => {
                env.post_intr(self.clock_src);
                let mut interval = self.cost.clock_tick_interval;
                if let Some(f) = &mut self.fault {
                    // Injected clock jitter: one reschedule is skewed
                    // (never below one cycle), then the pulse returns to
                    // its nominal period.
                    if f.pending_clock_skew != 0 {
                        let skewed = (interval.raw() as i64 + f.pending_clock_skew).max(1);
                        interval = Cycles::new(skewed as u64);
                        f.pending_clock_skew = 0;
                    }
                }
                env.schedule_in(interval, Event::ClockPulse);
            }
            Event::DeferredRxIntr { iface: i } => {
                self.rx_intr_deferred[i] = false;
                // Deliver only if there is still work and interrupts are
                // allowed; the bucket is consulted again (and may defer
                // again), so the receive-interrupt rate is strictly
                // bounded.
                if self.ifaces[i].nic.rx_intr_enabled() && self.ifaces[i].nic.rx_pending() > 0 {
                    self.post_rx_intr(env, i);
                }
            }
            Event::Fault(kind) => self.apply_fault(env, kind),
            Event::Ipi => {
                if let Some(src) = self.ipi_src {
                    env.post_intr(src);
                }
            }
        }
    }

    fn on_idle(&mut self, env: &mut Env<'_, Event>) {
        if !self.is_polled() {
            return;
        }
        // "Execution of the system's idle thread also re-enables input
        // interrupts and clears the running total."
        if let Some(lim) = &mut self.limiter {
            if lim.on_idle() {
                self.resume_input(env, InhibitReason::CycleLimit);
            }
        }
        if self.poll.action.is_none()
            && self.poll_tid.map(|t| env.thread_state(t))
                != Some(livelock_machine::thread::ThreadState::Running)
        {
            self.sync_intrs(env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_machine::cpu::Engine;
    use livelock_net::gen::PacketFactory;

    fn engine_for(cfg: KernelConfig) -> Engine<RouterKernel> {
        let ctx_switch = cfg.cost.ctx_switch;
        let (st, kernel) = RouterKernel::build(cfg);
        Engine::new(st, kernel, ctx_switch)
    }

    fn inject(engine: &mut Engine<RouterKernel>, at_us: u64, n: usize, spacing_us: u64) {
        let mut factory = PacketFactory::paper_testbed();
        let freq = engine.workload().cost.freq;
        for k in 0..n {
            let t = freq.cycles_from_micros(at_us + k as u64 * spacing_us);
            let pkt = factory.next_packet();
            // Bypass EnvState privacy through the public scheduling API.
            engine_schedule(engine, t, pkt);
        }
    }

    fn engine_schedule(engine: &mut Engine<RouterKernel>, t: Cycles, pkt: Packet) {
        // EnvState::schedule_at is public on the state; reach it via a
        // 1-cycle run? Simpler: expose through a helper on the engine.
        engine.state_schedule(t, Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
    }

    #[test]
    fn unmodified_forwards_a_single_packet() {
        let mut e = engine_for(KernelConfig::builder().build());
        inject(&mut e, 100, 1, 0);
        e.run_until(Cycles::new(100_000_000));
        let s = e.workload().stats();
        assert_eq!(s.arrived, 1);
        assert_eq!(s.transmitted, 1, "drops: {s:?}");
        assert_eq!(s.wasted_drops(), 0);
        assert_eq!(e.workload().opkts(1), 1, "went out interface 1");
        assert_eq!(e.workload().opkts(0), 0);
    }

    #[test]
    fn polled_forwards_a_single_packet() {
        let mut e = engine_for(KernelConfig::builder().polled(Quota::Limited(5)).build());
        inject(&mut e, 100, 1, 0);
        e.run_until(Cycles::new(100_000_000));
        let s = e.workload().stats();
        assert_eq!(s.transmitted, 1, "stats: {s:?}");
        assert!(s.latency.count() == 1);
    }

    #[test]
    fn screend_path_forwards() {
        for cfg in [
            KernelConfig::builder().screend(Default::default()).build(),
            KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).feedback(Default::default()).build(),
        ] {
            let mut e = engine_for(cfg);
            inject(&mut e, 100, 20, 1000);
            e.run_until(Cycles::new(200_000_000));
            let s = e.workload().stats();
            assert_eq!(s.transmitted, 20, "stats: {s:?}");
            assert_eq!(s.screend_denied(), 0);
        }
    }

    #[test]
    fn deny_rules_drop_packets() {
        let mut cfg = KernelConfig::builder().screend(Default::default()).build();
        cfg.screend.as_mut().unwrap().rules =
            Filter::parse("deny udp from any to any port 9\naccept ip from any to any").unwrap();
        let mut e = engine_for(cfg);
        inject(&mut e, 100, 5, 1000);
        e.run_until(Cycles::new(100_000_000));
        let s = e.workload().stats();
        assert_eq!(s.screend_denied(), 5, "the testbed traffic targets port 9");
        assert_eq!(s.transmitted, 0);
    }

    #[test]
    fn burst_larger_than_ring_drops_at_interface() {
        let mut e = engine_for(KernelConfig::builder().build());
        // 100 packets back-to-back at wire speed (67.2us apart is feasible;
        // use 0 spacing to slam the ring before the CPU can drain).
        inject(&mut e, 100, 100, 0);
        e.run_until(Cycles::new(1_000_000_000));
        let s = e.workload().stats();
        assert!(s.rx_ring_drops() > 0, "ring must overflow: {s:?}");
        assert_eq!(
            s.arrived,
            s.transmitted + s.rx_ring_drops() + s.wasted_drops() + s.in_flight(),
        );
        assert_eq!(s.in_flight(), 0, "everything drained by quiescence");
    }

    #[test]
    fn user_process_makes_progress_when_idle() {
        let mut cfg = KernelConfig::builder().build();
        cfg.user_process = true;
        let mut e = engine_for(cfg);
        e.run_until(Cycles::new(10_000_000)); // 100 ms
        let s = e.workload().stats();
        assert!(s.user_chunks > 150, "user got {} chunks", s.user_chunks);
        assert!(s.ticks >= 99, "clock ran: {}", s.ticks);
    }

    #[test]
    fn ttl_expiry_is_counted() {
        let mut e = engine_for(KernelConfig::builder().build());
        let mut factory = PacketFactory::paper_testbed();
        factory.ttl = 1;
        let pkt = factory.next_packet();
        e.state_schedule(Cycles::new(1000), Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
        e.run_until(Cycles::new(10_000_000));
        let s = e.workload().stats();
        assert_eq!(s.fwd_errors(), 1);
        assert_eq!(s.transmitted, 0);
    }

    #[test]
    fn unroutable_destination_is_counted() {
        let mut e = engine_for(KernelConfig::builder().build());
        let mut factory = PacketFactory::paper_testbed();
        factory.dst_ip = Ipv4Addr::new(192, 168, 55, 1);
        let pkt = factory.next_packet();
        e.state_schedule(Cycles::new(1000), Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
        e.run_until(Cycles::new(10_000_000));
        assert_eq!(e.workload().stats().fwd_errors(), 1);
    }
}
