//! The forwarding plane: routing, ARP, ICMP errors, local delivery,
//! output queues and the wire.

use super::*;

impl RouterKernel {
    // --- Forwarding (the real per-packet work) ---

    /// Routes and rewrites a packet; returns where it goes next or counts
    /// a forwarding error. Packets addressed to one of the host's own
    /// interface addresses are classified for local delivery.
    pub(super) fn route_packet(&mut self, pkt: Packet, now: Cycles) -> Option<Routed> {
        self.route_inner(pkt, now, false)
    }

    /// Routes a packet the host itself originated (replies, ICMP errors):
    /// the end-system no-forwarding guard does not apply to its own output.
    pub(super) fn route_output(&mut self, pkt: Packet, now: Cycles) -> Option<Routed> {
        self.route_inner(pkt, now, true)
    }

    fn route_inner(
        &mut self,
        mut pkt: Packet,
        now: Cycles,
        locally_originated: bool,
    ) -> Option<Routed> {
        let flow = pkt.flow;
        let ip = match pkt.ipv4() {
            Ok(ip) => ip,
            Err(_) => {
                self.stats.record_drop_for(DropReason::BadHeader, flow);
                return None;
            }
        };
        if self.ifaces.iter().any(|f| f.ip == ip.dst) {
            return Some(Routed::Local(pkt));
        }
        if !self.cfg.ip_forwarding && !locally_originated {
            // An end-system is no gateway: traffic for others is discarded
            // here — after the input work was already spent on it, which is
            // exactly the innocent-bystander overhead of 1.
            self.stats.record_drop_for(DropReason::Bystander, flow);
            return None;
        }
        let Some(hop) = self.routes.lookup(ip.dst) else {
            self.stats.record_drop_for(DropReason::NoRoute, flow);
            self.queue_icmp_error(&pkt, IcmpErrorKind::NetUnreachable, now);
            return None;
        };
        let arp_target = hop.gateway.unwrap_or(ip.dst);
        let Some(dst_mac) = self.arp.lookup(arp_target, Cycles::MAX) else {
            self.stats.record_drop_for(DropReason::NoArp, flow);
            self.queue_icmp_error(&pkt, IcmpErrorKind::HostUnreachable, now);
            return None;
        };
        let hdr = match pkt.ip_header_bytes_mut() {
            Ok(h) => h,
            Err(_) => {
                self.stats.record_drop_for(DropReason::BadHeader, flow);
                return None;
            }
        };
        if decrement_ttl(hdr).is_err() {
            self.stats.record_drop_for(DropReason::TtlExpired, flow);
            self.queue_icmp_error(&pkt, IcmpErrorKind::TimeExceeded, now);
            return None;
        }
        let src_mac = self.ifaces[hop.iface].mac;
        if pkt.set_link_addrs(src_mac, dst_mac).is_err() {
            self.stats.record_drop_for(DropReason::BadHeader, flow);
            return None;
        }
        Some(Routed::Forward(hop.iface, pkt))
    }

    /// Consumes ARP frames: learns the sender's mapping, answers requests
    /// for our own addresses. Returns `true` when the frame was ARP (and
    /// is therefore fully handled).
    pub(super) fn try_handle_arp(
        &mut self,
        env: &mut Env<'_, Event>,
        in_iface: usize,
        pkt: &Packet,
    ) -> bool {
        let Ok(eth) = pkt.ethernet() else {
            return false;
        };
        if eth.ethertype != EtherType::Arp {
            return false;
        }
        self.stats.arp_handled += 1;
        let Ok(arp) = ArpPacket::parse(&pkt.frame[ETHERNET_HEADER_LEN..]) else {
            return true; // Malformed ARP: consumed and ignored.
        };
        // Learn the sender (dynamic entry, 20-minute lifetime as in BSD).
        let lifetime = self.cost.freq.cycles_from_secs(1200);
        self.arp
            .insert(arp.sender_ip, arp.sender_mac, env.now() + lifetime);
        if arp.op == ArpOp::Request && self.ifaces[in_iface].ip == arp.target_ip {
            let our_mac = self.ifaces[in_iface].mac;
            let reply = ArpPacket {
                op: ArpOp::Reply,
                sender_mac: our_mac,
                sender_ip: arp.target_ip,
                target_mac: arp.sender_mac,
                target_ip: arp.sender_ip,
            };
            let mut frame = self.alloc_frame(ETHERNET_HEADER_LEN + ARP_PACKET_LEN);
            let hdr = EthernetHeader {
                dst: arp.sender_mac,
                src: our_mac,
                ethertype: EtherType::Arp,
            };
            // The frame was allocated exactly header + ARP sized above;
            // if either encode still refuses, drop the reply (the
            // requester retries) rather than panic the trial.
            if hdr.encode(&mut frame).is_err()
                || reply.encode(&mut frame[ETHERNET_HEADER_LEN..]).is_err()
            {
                return true;
            }
            self.reply_seq += 1;
            let out = Packet::from_frame(
                livelock_net::packet::PacketId(u64::MAX / 8 + self.reply_seq),
                frame,
            );
            self.stats.arp_replies += 1;
            self.output_enqueue(env, in_iface, out);
        }
        true
    }

    /// Builds a paced ICMP error quoting the undeliverable packet and
    /// stashes it for [`RouterKernel::flush_icmp`].
    pub(super) fn queue_icmp_error(&mut self, orig: &Packet, kind: IcmpErrorKind, now: Cycles) {
        if !self.cfg.icmp_errors {
            return;
        }
        let Ok(ip) = orig.ipv4() else {
            return;
        };
        // Never generate errors about ICMP (RFC 1122 anti-storm rule).
        if ip.protocol == proto::ICMP {
            return;
        }
        if !self.icmp_pace.allow(now.raw()) {
            self.stats.icmp_suppressed += 1;
            return;
        }
        let Ok(dgram) = orig.ip_datagram() else {
            return;
        };
        let msg = match kind {
            IcmpErrorKind::TimeExceeded => IcmpMessage::time_exceeded(dgram),
            IcmpErrorKind::NetUnreachable => IcmpMessage::dest_unreachable(0, dgram),
            IcmpErrorKind::HostUnreachable => IcmpMessage::dest_unreachable(1, dgram),
        };
        // Source the error from our interface facing the offender.
        let src_ip = self
            .routes
            .lookup(ip.src)
            .map_or(self.ifaces[0].ip, |hop| self.ifaces[hop.iface].ip);
        self.reply_seq += 1;
        let id = livelock_net::packet::PacketId(u64::MAX / 4 + self.reply_seq);
        // MACs are zero here; route_packet rewrites them.
        let err = match &self.pool {
            Some(pool) => Packet::icmp_ipv4_in(
                pool,
                id,
                MacAddr::ZERO,
                MacAddr::ZERO,
                src_ip,
                ip.src,
                32,
                &msg,
            ),
            None => Packet::icmp_ipv4(id, MacAddr::ZERO, MacAddr::ZERO, src_ip, ip.src, 32, &msg),
        };
        self.pending_icmp.push(err);
    }

    /// Routes and transmits any queued ICMP errors. Called right after
    /// every `route_packet` batch, in packet-processing context, so the
    /// errors are charged to the same CPU budget as the packets that
    /// caused them.
    pub(super) fn flush_icmp(&mut self, env: &mut Env<'_, Event>) {
        while let Some(err) = self.pending_icmp.pop() {
            self.stats.icmp_errors_sent += 1;
            if let Some(Routed::Forward(out_iface, pkt)) = self.route_output(err, env.now()) {
                self.output_enqueue(env, out_iface, pkt);
            }
        }
    }

    /// Sends a routed packet on its way: toward an output interface (via
    /// screend when configured) or into the local socket buffer.
    pub(super) fn dispatch(&mut self, env: &mut Env<'_, Event>, routed: Routed) {
        match routed {
            Routed::Forward(out_iface, pkt) => self.deliver(env, out_iface, pkt),
            Routed::Local(pkt) => self.deliver_local(env, pkt),
        }
    }

    /// End-system delivery: queue on the socket buffer and wake the
    /// application, with optional queue-state feedback on the buffer.
    pub(super) fn deliver_local(&mut self, env: &mut Env<'_, Event>, mut pkt: Packet) {
        let flow = pkt.flow;
        if self.cfg.local.is_none() {
            // Addressed to us but nobody is listening.
            self.stats.record_drop_for(DropReason::NoListener, flow);
            return;
        }
        pkt.stamps.sq_enq = env.now();
        if self.socket_q.enqueue(pkt).is_ok() {
            if let Some(tid) = self.app_tid {
                env.wake(tid);
            }
        } else {
            self.stats.record_drop_for(DropReason::SocketQueueFull, flow);
        }
        let depth = self.socket_q.len();
        if let Some(fb) = &mut self.socket_feedback {
            match fb.on_depth(depth) {
                Some(FeedbackSignal::Inhibit) => {
                    self.inhibit_input(env, InhibitReason::SocketFeedback)
                }
                Some(FeedbackSignal::Resume) => {
                    self.resume_input(env, InhibitReason::SocketFeedback)
                }
                None => {}
            }
        }
    }

    /// Delivers a routed packet toward the output interface: through the
    /// screend queue when screening is configured, else straight to the
    /// output queue.
    pub(super) fn deliver(&mut self, env: &mut Env<'_, Event>, out_iface: usize, mut pkt: Packet) {
        if self.cfg.screend.is_some() {
            let flow = pkt.flow;
            pkt.stamps.sq_enq = env.now();
            if self.screend_q.enqueue((out_iface, pkt)).is_ok() {
                if let Some(tid) = self.screend_tid {
                    env.wake(tid);
                }
            } else {
                self.stats.record_drop_for(DropReason::ScreendQueueFull, flow);
            }
            let depth = self.screend_q.len();
            self.feedback_depth(env, depth);
        } else {
            self.output_enqueue(env, out_iface, pkt);
        }
    }

    /// Enqueues on the output ifqueue and opportunistically starts
    /// transmission (`if_start`).
    pub(super) fn output_enqueue(
        &mut self,
        env: &mut Env<'_, Event>,
        out_iface: usize,
        mut pkt: Packet,
    ) {
        let flow = pkt.flow;
        let iface = &mut self.ifaces[out_iface];
        if let Some(red) = &mut iface.out_red {
            if red.admit(iface.out_q.len()) == Admission::EarlyDrop {
                self.stats.record_drop_for(DropReason::RedEarlyDrop, flow);
                return;
            }
        }
        pkt.stamps.out_enq = env.now();
        if iface.out_q.enqueue(pkt).is_ok() {
            self.try_tx_start(env, out_iface);
        } else {
            self.stats.record_drop_for(DropReason::OutputQueueFull, flow);
        }
    }

    /// Moves one packet from the ifqueue into the transmit ring if a
    /// descriptor is free, and kicks the wire.
    pub(super) fn try_tx_start(&mut self, env: &mut Env<'_, Event>, out_iface: usize) -> bool {
        let iface = &mut self.ifaces[out_iface];
        if iface.nic.tx_slots_free() == 0 {
            return false;
        }
        let Some(pkt) = iface.out_q.dequeue() else {
            return false;
        };
        let accepted = iface.nic.tx_submit(pkt);
        debug_assert!(accepted.is_ok(), "slot availability was checked");
        Self::kick_wire(env, iface, out_iface);
        true
    }

    /// Starts serializing the next ring frame if the wire is free.
    pub(super) fn kick_wire(env: &mut Env<'_, Event>, iface: &mut Iface, idx: usize) {
        if iface.inflight.is_some() {
            return;
        }
        if let Some(mut pkt) = iface.nic.tx_begin() {
            pkt.stamps.tx_start = env.now();
            let done = iface.wire.begin_tx(env.now(), pkt.len());
            iface.inflight = Some(pkt);
            env.schedule_at(done, Event::TxWireDone { iface: idx });
        }
    }

    // --- Input gating (modified kernel) ---
}
