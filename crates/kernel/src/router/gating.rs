//! Input gating: queue-state feedback, inhibit/resume edges, and the
//! interrupt-enable invariant.

use super::*;

impl RouterKernel {
    pub(super) fn feedback_depth(&mut self, env: &mut Env<'_, Event>, depth: usize) {
        let Some(fb) = &mut self.feedback else {
            return;
        };
        match fb.on_depth(depth) {
            Some(FeedbackSignal::Inhibit) => self.inhibit_input(env, InhibitReason::QueueFeedback),
            Some(FeedbackSignal::Resume) => self.resume_input(env, InhibitReason::QueueFeedback),
            None => {}
        }
    }

    pub(super) fn inhibit_input(&mut self, env: &mut Env<'_, Event>, reason: InhibitReason) {
        if self.gate.inhibit(reason) == GateChange::Closed {
            self.poller.set_rx_inhibited(true);
            for i in 0..self.ifaces.len() {
                let iface = &mut self.ifaces[i];
                iface.nic.set_rx_intr_enabled(false);
                env.set_intr_enabled(iface.rx_src, false);
            }
        }
    }

    pub(super) fn resume_input(&mut self, env: &mut Env<'_, Event>, reason: InhibitReason) {
        if self.gate.allow(reason) == GateChange::Opened {
            self.poller.set_rx_inhibited(false);
            self.sync_intrs(env);
            if self.poller.any_serviceable() {
                if let Some(tid) = self.poll_tid {
                    env.wake(tid);
                }
            }
        }
    }

    /// Re-establishes the interrupt-enable invariant for every interface:
    /// receive interrupts on iff the gate is open and the device has no
    /// pending poll work; transmit interrupts on iff no pending transmit
    /// work. Posts the interrupt when enabling with work already latched in
    /// the device, so no wakeup is lost.
    pub(super) fn sync_intrs(&mut self, env: &mut Env<'_, Event>) {
        for i in 0..self.ifaces.len() {
            let gate_open = self.gate.is_open();
            let rx_pending = self
                .poller
                .is_pending(self.ifaces[i].poll_sid, PollDirection::Receive);
            let tx_pending = self
                .poller
                .is_pending(self.ifaces[i].poll_sid, PollDirection::Transmit);
            let iface = &mut self.ifaces[i];

            let want_rx = gate_open && !rx_pending;
            iface.nic.set_rx_intr_enabled(want_rx);
            env.set_intr_enabled(iface.rx_src, want_rx);
            if want_rx {
                if iface.nic.rx_pending() > 0 {
                    env.post_intr(iface.rx_src);
                } else {
                    env.intr_ack(iface.rx_src);
                }
            }

            let want_tx = !tx_pending;
            iface.nic.set_tx_intr_enabled(want_tx);
            env.set_intr_enabled(iface.tx_src, want_tx);
            if want_tx {
                let tx_work = iface.nic.tx_unreclaimed() > 0
                    || (!iface.out_q.is_empty() && iface.nic.tx_slots_free() > 0);
                if tx_work {
                    env.post_intr(iface.tx_src);
                } else {
                    env.intr_ack(iface.tx_src);
                }
            }
        }
    }

    // --- Unmodified-path handlers ---
}
