//! The modified path (paper 6.4): interrupt stubs and the polling
//! thread's round-robin, quota-bounded callbacks.

use super::*;

impl RouterKernel {
    pub(super) fn stub_next(&mut self, i: usize, rx: bool) -> Option<Chunk> {
        let iface = &mut self.ifaces[i];
        let in_handler = if rx {
            &mut iface.rx_in_handler
        } else {
            &mut iface.tx_in_handler
        };
        if *in_handler {
            *in_handler = false;
            return None;
        }
        *in_handler = true;
        Some(Chunk::new(
            self.cost.intr_dispatch + self.cost.intr_stub + self.cost.poll_wakeup,
            if rx { tag::RX_STUB } else { tag::TX_STUB },
        ))
    }

    pub(super) fn stub_done(&mut self, env: &mut Env<'_, Event>, i: usize, rx: bool) {
        // "it simply schedules the polling thread ..., recording its need
        // for packet processing, and then returns from the interrupt. It
        // does not set the device's interrupt-enable flag."
        let sid = self.ifaces[i].poll_sid;
        let iface = &mut self.ifaces[i];
        if rx {
            iface.nic.set_rx_intr_enabled(false);
            env.set_intr_enabled(iface.rx_src, false);
            self.poller.request(sid, PollDirection::Receive);
        } else {
            iface.nic.set_tx_intr_enabled(false);
            env.set_intr_enabled(iface.tx_src, false);
            self.poller.request(sid, PollDirection::Transmit);
        }
        if let Some(tid) = self.poll_tid {
            env.wake(tid);
        }
    }

    /// The poll thread's chunk generator: continue the current callback,
    /// pick the next action, or re-enable interrupts and sleep.
    pub(super) fn poll_next(&mut self, env: &mut Env<'_, Event>) -> Option<Chunk> {
        loop {
            if let Some(action) = self.poll.action {
                let i = action.source.0;
                match action.dir {
                    PollDirection::Receive => {
                        let stop = !self.gate.is_open()
                            || action.quota.exhausted_by(self.poll.done_in_cb)
                            || self.ifaces[i].nic.rx_pending() == 0;
                        if !stop && self.classes.is_some() {
                            // Classified drain: strict priority across
                            // the per-class rings under per-class burst
                            // budgets. The chosen ring rides the chunk
                            // tag, so stamping (chunk_start) and the
                            // take (poll_rx_done) agree on the ring even
                            // if a higher-priority frame lands mid-chunk.
                            let Some(c) = self.class_pick_ring(i) else {
                                // Rings report pending but the engine is
                                // gone — unreachable; fall through to
                                // callback completion.
                                let more = self.ifaces[i].nic.rx_pending() > 0;
                                self.finish_callback(env, action, more);
                                continue;
                            };
                            if let Some(p) = self.ifaces[i].nic.rx_peek_class_mut(c) {
                                p.stamps.ring_deq = env.now();
                                p.stamps.fwd_start = env.now();
                            }
                            let mut cost =
                                self.cost.rx_device_per_pkt + self.cost.ip_forward_per_pkt;
                            if self.cfg.screend.is_none() {
                                cost += self.cost.tx_start_per_pkt;
                            }
                            return Some(Chunk::new(cost, class_tag(c)));
                        }
                        if !stop {
                            // Process-to-completion starts on the head
                            // frame now: it leaves the ring and is routed
                            // in one go, so ring dequeue and forward start
                            // coincide (the ipq stage is zero by design).
                            if let Some(p) = self.ifaces[i].nic.rx_peek_mut() {
                                p.stamps.ring_deq = env.now();
                                p.stamps.fwd_start = env.now();
                            }
                            let mut cost =
                                self.cost.rx_device_per_pkt + self.cost.ip_forward_per_pkt;
                            if self.cfg.screend.is_none() {
                                cost += self.cost.tx_start_per_pkt;
                            }
                            // Burst: every packet already in the ring (the
                            // backlog only grows from here) up to the quota
                            // is a promised repetition; each `poll_rx_done`
                            // consumes exactly one.
                            let reps = if self.poll_burstable() {
                                let avail = self.ifaces[i].nic.rx_pending() as u32;
                                let room = match action.quota {
                                    Quota::Limited(n) => {
                                        (n - self.poll.done_in_cb).min(avail)
                                    }
                                    Quota::Unlimited => avail,
                                };
                                room.saturating_sub(1)
                            } else {
                                0
                            };
                            return Some(Chunk::new(cost, tag::POLL_RX_PKT).with_reps(reps));
                        }
                        let more = self.ifaces[i].nic.rx_pending() > 0;
                        self.finish_callback(env, action, more);
                    }
                    PollDirection::Transmit => {
                        let iface = &self.ifaces[i];
                        if !action.quota.exhausted_by(self.poll.done_in_cb) {
                            if iface.nic.tx_unreclaimed() > 0 {
                                // Burst: completed-but-unreclaimed
                                // descriptors only accumulate from here
                                // (wire completions add, only this thread
                                // reclaims), so each one up to the quota is
                                // a promised repetition.
                                let reps = if self.poll_burstable() {
                                    let avail = iface.nic.tx_unreclaimed() as u32;
                                    let room = match action.quota {
                                        Quota::Limited(n) => {
                                            (n - self.poll.done_in_cb).min(avail)
                                        }
                                        Quota::Unlimited => avail,
                                    };
                                    room.saturating_sub(1)
                                } else {
                                    0
                                };
                                return Some(Chunk::new(
                                    self.cost.tx_done_per_pkt + self.cost.tx_start_per_pkt,
                                    tag::POLL_TX_PKT,
                                )
                                .with_reps(reps));
                            }
                            if !iface.out_q.is_empty() && iface.nic.tx_slots_free() > 0 {
                                return Some(Chunk::new(
                                    self.cost.tx_start_per_pkt,
                                    tag::POLL_TX_START,
                                ));
                            }
                        }
                        let iface = &self.ifaces[i];
                        let more = iface.nic.tx_unreclaimed() > 0
                            || (!iface.out_q.is_empty() && iface.nic.tx_slots_free() > 0);
                        self.finish_callback(env, action, more);
                    }
                }
                continue;
            }
            match self.poller.next_action() {
                Some(action) => {
                    self.poll.action = Some(action);
                    self.poll.done_in_cb = 0;
                    self.poll.cb_started_at = env.now();
                    return Some(Chunk::new(
                        self.cost.poll_callback + self.cost.poll_loop_check,
                        tag::POLL_CB_START,
                    ));
                }
                None => {
                    // Out of local work: before re-enabling interrupts and
                    // sleeping, an idle SMP poller pulls frames a sibling
                    // parked when its own ring overflowed.
                    if self.try_steal() {
                        continue;
                    }
                    // "Once all the packets pending at an interface have
                    // been handled, the polling thread also invokes the
                    // driver's interrupt-enable callback."
                    self.sync_intrs(env);
                    if let Some(tid) = self.poll_tid {
                        env.sleep(tid);
                    }
                    return None;
                }
            }
        }
    }

    /// Work stealing: an otherwise-idle poll thread drains frames its
    /// siblings parked when their own receive rings overflowed, feeding
    /// them into this CPU's ring as if they had arrived here. Returns
    /// true when anything was stolen (the poller now has a pending
    /// receive request to process).
    pub(super) fn try_steal(&mut self) -> bool {
        let Some(ctx) = &self.smp else {
            return false;
        };
        if !ctx.steal {
            return false;
        }
        let me = ctx.cpu.0;
        let ncpus = ctx.ncpus;
        let shared = std::rc::Rc::clone(&ctx.shared);
        let mut stole = false;
        let mut sh = shared.borrow_mut();
        'victims: for d in 1..ncpus {
            let victim = (me + d) % ncpus;
            while !sh.steal_bufs[victim].is_empty() {
                if self.ifaces[0].nic.rx_ring_is_full() {
                    break 'victims;
                }
                if let Some(pkt) = sh.steal_bufs[victim].pop_front() {
                    // A stolen frame keeps the class its home CPU
                    // stamped at admission, landing in this CPU's
                    // matching priority ring.
                    match pkt.class {
                        Some(c) => {
                            let idx = c.index();
                            self.ifaces[0].nic.rx_arrive_classed(pkt, idx)
                        }
                        None => self.ifaces[0].nic.rx_arrive(pkt),
                    };
                    sh.steals_taken[me] += 1;
                    stole = true;
                }
            }
        }
        drop(sh);
        if stole {
            let sid = self.ifaces[0].poll_sid;
            self.poller.request(sid, PollDirection::Receive);
        }
        stole
    }

    pub(super) fn finish_callback(
        &mut self,
        env: &mut Env<'_, Event>,
        action: PollAction,
        more: bool,
    ) {
        self.poller
            .complete(action.source, action.dir, self.poll.done_in_cb, more);
        self.poll.action = None;
        // "Once all the packets pending at an interface have been handled,
        // the polling thread also invokes the driver's interrupt-enable
        // callback" — per interface and direction, immediately, so a
        // subsequent packet event causes an interrupt even while the
        // polling thread is still busy with other interfaces.
        if !more {
            self.enable_dir_intr(env, action.source.0, action.dir);
        }
        // The §7 cycle accounting: read the cycle counter at loop start and
        // end; the delta (preempting interrupts included) is charged to the
        // packet-processing budget.
        let used = (env.now() - self.poll.cb_started_at).raw();
        if let Some(lim) = &mut self.limiter {
            if lim.record(used) == LimiterDecision::Inhibit {
                self.inhibit_input(env, InhibitReason::CycleLimit);
            }
        }
    }

    /// Posts (or defers, under §5.1 rate limiting) a receive interrupt.
    pub(super) fn post_rx_intr(&mut self, env: &mut Env<'_, Event>, i: usize) {
        if self.consume_lost_rx_intr(i) {
            return;
        }
        match &mut self.rx_rate_limiter {
            None => env.post_intr(self.ifaces[i].rx_src),
            Some(rl) => {
                let now = env.now().raw();
                if rl.allow(now) {
                    env.post_intr(self.ifaces[i].rx_src);
                } else if !self.rx_intr_deferred[i] {
                    self.rx_intr_deferred[i] = true;
                    let at = Cycles::new(rl.next_allowed(now));
                    env.schedule_at(at, Event::DeferredRxIntr { iface: i });
                }
            }
        }
    }

    /// Re-enables one interface's interrupt in one direction, posting the
    /// interrupt instead when the device already has latched work so no
    /// wakeup is lost (drivers re-check device status after enabling).
    pub(super) fn enable_dir_intr(
        &mut self,
        env: &mut Env<'_, Event>,
        i: usize,
        dir: PollDirection,
    ) {
        let iface = &mut self.ifaces[i];
        match dir {
            PollDirection::Receive => {
                if !self.gate.is_open() {
                    return;
                }
                iface.nic.set_rx_intr_enabled(true);
                env.set_intr_enabled(iface.rx_src, true);
                if iface.nic.rx_pending() > 0 {
                    env.post_intr(iface.rx_src);
                } else {
                    env.intr_ack(iface.rx_src);
                }
            }
            PollDirection::Transmit => {
                iface.nic.set_tx_intr_enabled(true);
                env.set_intr_enabled(iface.tx_src, true);
                let tx_work = iface.nic.tx_unreclaimed() > 0
                    || (!iface.out_q.is_empty() && iface.nic.tx_slots_free() > 0);
                if tx_work {
                    env.post_intr(iface.tx_src);
                } else {
                    env.intr_ack(iface.tx_src);
                }
            }
        }
    }

    pub(super) fn poll_rx_done(&mut self, env: &mut Env<'_, Event>, class_ring: Option<usize>) {
        let Some(action) = self.poll.action else {
            return;
        };
        self.poll.done_in_cb += 1;
        let i = action.source.0;
        let taken = match class_ring {
            Some(c) => self.ifaces[i].nic.rx_take_class(c),
            None => self.ifaces[i].nic.rx_take(),
        };
        let Some(mut pkt) = taken else {
            return;
        };
        if self.try_handle_arp(env, i, &pkt) {
            return;
        }
        pkt.stamps.fwd_done = env.now();
        // Process-to-completion: device work and IP forwarding in one go,
        // no ipintrq.
        if let Some(routed) = self.route_packet(pkt, env.now()) {
            self.dispatch(env, routed);
        }
        self.flush_icmp(env);
    }

    pub(super) fn poll_tx_done(&mut self, env: &mut Env<'_, Event>, reclaim: bool) {
        let Some(action) = self.poll.action else {
            return;
        };
        self.poll.done_in_cb += 1;
        let i = action.source.0;
        if reclaim {
            self.ifaces[i].nic.tx_reclaim_one();
        }
        self.try_tx_start(env, i);
    }

    // --- screend ---
}
