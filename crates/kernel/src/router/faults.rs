//! Deterministic fault injection: the kernel-side state armed by
//! scheduled [`FaultKind`] events, and the recovery machinery the
//! faults exercise.
//!
//! Everything in this module is gated on `RouterKernel::fault` being
//! `Some`, which only happens when the configuration carries a
//! non-empty [`FaultPlan`]. A fault-free run takes none of these paths
//! and is bit-for-bit identical to a build without the module.
//!
//! [`FaultPlan`]: livelock_machine::fault::FaultPlan

use livelock_core::watchdog::GateWatchdog;
use livelock_net::mutate::Mutation;
use livelock_net::packet::PacketId;

use super::*;

/// Synthesized overrun-storm frames draw ids from this reserved range
/// (distinct from the reply, ICMP, and ARP ranges).
const STORM_ID_BASE: u64 = u64::MAX / 3;

/// Ticks a nonzero gate bitmask may persist unchanged before the
/// recovery watchdog force-clears it. Large enough that the feedback
/// timeout (one tick) and cycle-limit period always get there first on
/// a healthy system.
const GATE_WATCHDOG_BOUND: u32 = 16;

/// Live fault-injection state: one-shot flags armed by scheduled
/// [`FaultKind`]s and consumed by the normal event path, plus the
/// recovery watchdog and the trace markers.
pub(super) struct FaultState {
    /// One-shot per interface: swallow the next receive-interrupt post.
    pub(super) lost_rx: Vec<bool>,
    /// One-shot per interface: swallow the next transmit-interrupt post.
    pub(super) lost_tx: Vec<bool>,
    /// Armed mutation applied to the next frame arriving on the
    /// interface.
    pub(super) pending_mutation: Vec<Option<Mutation>>,
    /// Frames arriving on the interface before this instant are lost on
    /// the wire (link flap), before the NIC sees them.
    pub(super) link_down_until: Vec<Cycles>,
    /// Signed skew applied once to the next clock-pulse reschedule.
    pub(super) pending_clock_skew: i64,
    /// screend refuses to run until this clock-tick count (stall, or
    /// post-crash restart backoff).
    pub(super) screend_stalled_until: Option<u64>,
    /// Detects an inhibit bitmask stuck unchanged across ticks.
    pub(super) gate_watchdog: GateWatchdog,
    /// Sequence counter for synthesized storm-frame packet ids.
    pub(super) storm_seq: u64,
    /// Chrome-trace instant markers: every injection and recovery.
    pub(super) markers: Vec<(Cycles, String)>,
}

impl FaultState {
    pub(super) fn new(num_ifaces: usize) -> Self {
        // The polling thread legitimately holds PollingActive for the
        // length of a callback; the watchdog may clear everything else.
        let clearable = !(1u8 << InhibitReason::PollingActive.bit_index());
        FaultState {
            lost_rx: vec![false; num_ifaces],
            lost_tx: vec![false; num_ifaces],
            pending_mutation: vec![None; num_ifaces],
            link_down_until: vec![Cycles::ZERO; num_ifaces],
            pending_clock_skew: 0,
            screend_stalled_until: None,
            gate_watchdog: GateWatchdog::new(GATE_WATCHDOG_BOUND, clearable),
            storm_seq: 0,
            markers: Vec::new(),
        }
    }
}

impl RouterKernel {
    /// Executes one scheduled fault. Either the fault arms a one-shot
    /// flag that the normal event path consumes, or it acts
    /// immediately; every injection is counted and leaves a trace
    /// marker.
    pub(super) fn apply_fault(&mut self, env: &mut Env<'_, Event>, kind: FaultKind) {
        if self.fault.is_none() {
            return;
        }
        let now = env.now();
        let nif = self.ifaces.len();
        self.stats.fault.injected += 1;
        if let Some(f) = self.fault.as_mut() {
            f.markers.push((now, format!("fault: {}", kind.label())));
        }
        match kind {
            FaultKind::LostRxIntr { iface } => {
                if let Some(f) = self.fault.as_mut() {
                    f.lost_rx[iface % nif] = true;
                }
            }
            FaultKind::LostTxIntr { iface } => {
                if let Some(f) = self.fault.as_mut() {
                    f.lost_tx[iface % nif] = true;
                }
            }
            FaultKind::SpuriousRxIntr { iface } => {
                self.stats.fault.spurious_intrs += 1;
                env.post_intr(self.ifaces[iface % nif].rx_src);
            }
            FaultKind::SpuriousTxIntr { iface } => {
                self.stats.fault.spurious_intrs += 1;
                env.post_intr(self.ifaces[iface % nif].tx_src);
            }
            FaultKind::RxDescriptorCorrupt { iface } => {
                self.arm_mutation(iface % nif, Mutation::Scribble);
            }
            FaultKind::PacketBitFlip { iface } => {
                self.arm_mutation(iface % nif, Mutation::BitFlip);
            }
            FaultKind::PacketTruncate { iface } => {
                self.arm_mutation(iface % nif, Mutation::Truncate);
            }
            FaultKind::PacketMalformHeader { iface } => {
                self.arm_mutation(iface % nif, Mutation::MalformHeader);
            }
            FaultKind::RxOverrunStorm { iface, frames } => {
                let i = iface % nif;
                let base = self.fault.as_mut().map_or(0, |f| {
                    let b = f.storm_seq;
                    f.storm_seq += u64::from(frames);
                    b
                });
                // Garbage frames delivered through the normal arrival
                // path: they are counted as arrivals and end as ring
                // overflows or header-checksum drops, so the
                // conservation ledger still balances.
                for k in 0..u64::from(frames) {
                    let frame = self.alloc_frame(60);
                    let pkt = Packet::from_frame(PacketId(STORM_ID_BASE + base + k), frame);
                    self.stats.fault.storm_frames += 1;
                    self.rx_arrive(env, i, pkt);
                }
            }
            FaultKind::ClockJitter { skew_cycles } => {
                self.stats.fault.clock_jitters += 1;
                if let Some(f) = self.fault.as_mut() {
                    f.pending_clock_skew = skew_cycles;
                }
            }
            FaultKind::LinkFlap { iface, down_cycles } => {
                let i = iface % nif;
                let until = Cycles::new(now.raw().saturating_add(down_cycles));
                self.stats.fault.link_flaps += 1;
                if let Some(f) = self.fault.as_mut() {
                    f.link_down_until[i] = f.link_down_until[i].max(until);
                }
                // The transmit side of the same flap: the wire refuses
                // to finish serializing until the carrier returns.
                self.ifaces[i].wire.force_carrier_loss(until);
            }
            FaultKind::ScreendStall { ticks } => {
                self.stats.fault.screend_stalls += 1;
                let until = self.stats.ticks + u64::from(ticks);
                if let Some(f) = self.fault.as_mut() {
                    f.screend_stalled_until =
                        Some(f.screend_stalled_until.map_or(until, |u| u.max(until)));
                }
            }
            FaultKind::ScreendCrash { restart_ticks } => {
                self.stats.fault.screend_crashes += 1;
                // The crash loses every queued packet...
                while let Some((_, pkt)) = self.screend_q.dequeue() {
                    self.stats.fault.crash_flushed += 1;
                    self.stats
                        .record_drop_for(DropReason::ScreendQueueFull, pkt.flow);
                }
                // ...and the restart backoff leaves the consumer dead
                // while the feedback gate may still be inhibited at the
                // high-water mark — exactly the wedge the timeout
                // safety net exists for.
                let until = self.stats.ticks + u64::from(restart_ticks);
                if let Some(f) = self.fault.as_mut() {
                    f.screend_stalled_until =
                        Some(f.screend_stalled_until.map_or(until, |u| u.max(until)));
                }
            }
        }
    }

    fn arm_mutation(&mut self, i: usize, m: Mutation) {
        if let Some(f) = self.fault.as_mut() {
            f.pending_mutation[i] = Some(m);
        }
    }

    /// True (once) when an armed lost-receive-interrupt fault swallows
    /// the interrupt post for interface `i`.
    pub(super) fn consume_lost_rx_intr(&mut self, i: usize) -> bool {
        if let Some(f) = &mut self.fault {
            if f.lost_rx[i] {
                f.lost_rx[i] = false;
                self.stats.fault.lost_intrs += 1;
                return true;
            }
        }
        false
    }

    /// Transmit-side twin of [`Self::consume_lost_rx_intr`].
    pub(super) fn consume_lost_tx_intr(&mut self, i: usize) -> bool {
        if let Some(f) = &mut self.fault {
            if f.lost_tx[i] {
                f.lost_tx[i] = false;
                self.stats.fault.lost_intrs += 1;
                return true;
            }
        }
        false
    }

    /// Whether screend is currently stalled or crash-restarting.
    pub(super) fn screend_stalled(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.screend_stalled_until.is_some())
    }

    /// Per-tick recovery work, run from the clock handler only in fault
    /// mode: screend restart after a stall/crash backoff, the gate
    /// watchdog that force-clears a stuck inhibit mask, and the driver
    /// watchdog that reposts interrupts for latched-but-unserviced
    /// device work (the repair for lost interrupts).
    pub(super) fn fault_tick(&mut self, env: &mut Env<'_, Event>) {
        if self.fault.is_none() {
            return;
        }
        let now = env.now();
        let (mut restarted, mut stuck) = (false, 0u8);
        if let Some(f) = self.fault.as_mut() {
            if let Some(until) = f.screend_stalled_until {
                if self.stats.ticks >= until {
                    f.screend_stalled_until = None;
                    restarted = true;
                }
            }
            if let Some(bits) = f.gate_watchdog.on_tick(self.gate.bits()) {
                stuck = bits;
            }
        }
        if restarted {
            self.stats.fault.stall_recoveries += 1;
            if let Some(f) = self.fault.as_mut() {
                f.markers.push((now, "recover: screend-restart".to_string()));
            }
            if !self.screend_q.is_empty() {
                if let Some(tid) = self.screend_tid {
                    env.wake(tid);
                }
            }
        }
        if stuck != 0 {
            self.stats.fault.watchdog_unwedges += 1;
            if let Some(f) = self.fault.as_mut() {
                f.markers.push((now, format!("recover: gate-unwedge bits={stuck:#04x}")));
            }
            for &r in InhibitReason::ALL.iter() {
                if r != InhibitReason::PollingActive && stuck & (1 << r.bit_index()) != 0 {
                    self.resume_input(env, r);
                }
            }
        }
        for i in 0..self.ifaces.len() {
            let nic = &self.ifaces[i].nic;
            if nic.rx_intr_enabled() && nic.rx_pending() > 0 && !self.rx_intr_deferred[i] {
                self.stats.fault.intr_reposts += 1;
                env.post_intr(self.ifaces[i].rx_src);
            }
            let nic = &self.ifaces[i].nic;
            if nic.tx_intr_enabled() && nic.tx_unreclaimed() > 0 {
                self.stats.fault.intr_reposts += 1;
                env.post_intr(self.ifaces[i].tx_src);
            }
        }
    }
}
