//! Cross-CPU state for SMP trials: the shared `ipintrq`, coalesced
//! IPI-wakeup flags, and per-CPU steal buffers.
//!
//! Each CPU in a cluster runs its own complete [`RouterKernel`]; this
//! module holds the only state those kernels share. The `ipintrq` models
//! the classic single-IP-layer SMP bottleneck: every CPU's unmodified
//! receive handler feeds it, only CPU 0 drains it, and CPU 0 pays a
//! per-packet lock-contention cost scaled by the number of contending
//! siblings. The steal buffers model the opposite design point: a CPU
//! whose receive ring overflows parks the frame in its own bounded
//! buffer, and an *idle* sibling poller pulls it instead of letting it
//! drop.
//!
//! Mutation discipline: kernels touch [`SmpShared`] only inside their own
//! interleaver slice (the cluster never runs two engines concurrently),
//! and cross-CPU *signals* travel exclusively through the coalesced
//! `ipi_pending` flags, drained at slice boundaries by the experiment
//! harness's `before_slice` hook — so an SMP run is a pure function of
//! the configuration and seed, bit-identical at any host job count.
//!
//! [`RouterKernel`]: super::RouterKernel

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use livelock_machine::cpu::CpuId;
use livelock_net::packet::Packet;
use livelock_net::queue::DropTailQueue;

/// Capacity of each CPU's steal buffer, in frames. Deliberately ring-
/// sized: stealing absorbs short imbalance between siblings, it is not
/// extra queueing capacity (an unbounded buffer would just move the
/// livelock drop point).
pub(crate) const STEAL_BUF_CAP: usize = 64;

/// State shared by every CPU of one SMP trial.
pub(crate) struct SmpShared {
    /// The single shared IP input queue of the unmodified path. All CPUs
    /// enqueue; CPU 0 alone drains it under contention cost.
    pub(crate) ipintrq: DropTailQueue<Packet>,
    /// Coalesced IPI flags, one per CPU: "you have cross-CPU work". Set
    /// by any sibling, cleared by the interleaver's slice hook when it
    /// injects the corresponding `Event::Ipi` — at most one IPI per CPU
    /// per slice, and never a lost wakeup because every enqueue sets the
    /// flag again.
    pub(crate) ipi_pending: Vec<bool>,
    /// Per-CPU steal buffers: `steal_bufs[k]` holds frames CPU `k`
    /// published when its own receive ring was full.
    pub(crate) steal_bufs: Vec<VecDeque<Packet>>,
    /// Frames each CPU published to its steal buffer.
    pub(crate) steals_published: Vec<u64>,
    /// Frames each CPU pulled from a sibling's steal buffer.
    pub(crate) steals_taken: Vec<u64>,
}

impl SmpShared {
    /// Shared state for `ncpus` CPUs with the configured `ipintrq`
    /// capacity, behind the `Rc<RefCell>` every per-CPU kernel clones.
    pub(crate) fn new(ncpus: usize, ipintrq_cap: usize) -> Rc<RefCell<SmpShared>> {
        Rc::new(RefCell::new(SmpShared {
            ipintrq: DropTailQueue::new("smp-ipintrq", ipintrq_cap),
            ipi_pending: vec![false; ncpus],
            steal_bufs: (0..ncpus)
                .map(|_| VecDeque::with_capacity(STEAL_BUF_CAP))
                .collect(),
            steals_published: vec![0; ncpus],
            steals_taken: vec![0; ncpus],
        }))
    }

    /// Frames still parked in steal buffers (the conservation residual).
    pub(crate) fn steal_residual(&self) -> usize {
        self.steal_bufs.iter().map(VecDeque::len).sum()
    }
}

/// One CPU's view of the cluster, attached to its kernel by
/// [`RouterKernel::attach_smp`](super::RouterKernel::attach_smp).
#[derive(Clone)]
pub(crate) struct SmpCtx {
    /// This kernel's CPU.
    pub(crate) cpu: CpuId,
    /// Total CPUs in the cluster.
    pub(crate) ncpus: usize,
    /// Work stealing enabled?
    pub(crate) steal: bool,
    /// The cluster-shared state.
    pub(crate) shared: Rc<RefCell<SmpShared>>,
}
