//! A zero-dependency parallel work queue for independent trials.
//!
//! Every simulated trial is a self-contained, seeded, single-threaded
//! event loop, so a rate sweep is embarrassingly parallel: [`par_map`]
//! fans items out to scoped worker threads that claim work off a shared
//! atomic index, then reassembles the results **in input order**. Because
//! each call of the mapped function builds its own engine, pool and RNG
//! from the item alone, the output is bit-for-bit identical to a serial
//! map — parallelism changes wall-clock time and nothing else.
//!
//! The simulation crates stay single-threaded by charter (`livelock-sim`
//! has "no threads"); this module is the only place worker threads exist,
//! and only `std::thread::scope` is used — no external dependency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads to use when the caller does not say:
/// the host's available parallelism, or 1 when that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How much parallelism an experiment-layer entry point may use.
///
/// Every trial is an independent seeded simulation and results always come
/// back in input order, so this choice changes wall-clock time and nothing
/// else — outputs are bit-for-bit identical across all three variants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Run every trial inline on the calling thread.
    Serial,
    /// Fan out across up to this many worker threads (0 is treated as 1).
    Jobs(usize),
    /// Use the host's available parallelism ([`default_jobs`]).
    #[default]
    Auto,
}

impl Parallelism {
    /// The worker-thread count this policy resolves to (always >= 1).
    pub fn jobs(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Jobs(n) => n.max(1),
            Parallelism::Auto => default_jobs(),
        }
    }

    /// A policy from an optional `--jobs` style argument: `None` means
    /// [`Auto`](Parallelism::Auto).
    pub fn from_jobs_arg(jobs: Option<usize>) -> Self {
        match jobs {
            None => Parallelism::Auto,
            Some(n) => Parallelism::Jobs(n),
        }
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in input order.
///
/// `jobs` is clamped to `[1, items.len()]`. With `jobs == 1` the map runs
/// inline on the calling thread — the parallel path produces the same
/// results, in the same order.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| match w.join() {
                Ok(local) => local,
                // Re-raise the worker's own panic payload.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = par_map(&items, jobs, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map(&[] as &[u64], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Later items finish first; order must still be the input's.
        let items: Vec<u64> = (0..20).collect();
        let out = par_map(&items, 4, |&x| {
            std::thread::sleep(std::time::Duration::from_micros(200 * (20 - x)));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn parallelism_resolves_to_positive_job_counts() {
        assert_eq!(Parallelism::Serial.jobs(), 1);
        assert_eq!(Parallelism::Jobs(6).jobs(), 6);
        assert_eq!(Parallelism::Jobs(0).jobs(), 1, "zero clamps to one");
        assert_eq!(Parallelism::Auto.jobs(), default_jobs());
        assert_eq!(Parallelism::from_jobs_arg(None), Parallelism::Auto);
        assert_eq!(Parallelism::from_jobs_arg(Some(3)), Parallelism::Jobs(3));
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items = vec![1u64, 2, 3, 4];
        let _ = par_map(&items, 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
