//! The paper's measurement methodology (§6.1) as a harness.
//!
//! "A source host generated IP/UDP packets at a variety of rates, and sent
//! them via the router to a destination address. ... In all the trials
//! reported on here, the packet generator sent 10000 UDP packets carrying 4
//! bytes of data. ... We calculated the delivered packet rate by using the
//! 'netstat' program to sample the output interface count ('Opkts') before
//! and after each trial."
//!
//! [`run_trial`] reproduces one such trial: generate a jittered
//! constant-rate schedule, pace it to Ethernet feasibility, inject the
//! frames on interface 0, run the simulated router, and report rates
//! averaged over the steady-state measurement window. [`sweep`] runs a
//! trial per input rate, producing the `(input rate, output rate)` series
//! every figure in the paper plots.

use livelock_core::analysis::SweepPoint;
use livelock_machine::chrome_trace_json_with_markers;
use livelock_machine::cpu::Engine;
use livelock_machine::ledger::CpuClass;
use livelock_machine::trace::TraceRecord;
use livelock_machine::wire::Wire;
use livelock_net::gen::{PacketFactory, TrafficGen};
use livelock_net::packet::MIN_FRAME_LEN;
use livelock_net::pool::{FramePool, PoolStats};
use livelock_sim::{Cycles, Nanos};

use crate::config::KernelConfig;
use crate::par::Parallelism;
use crate::router::{Event, RouterKernel};
use crate::stats::{DropStats, FaultStats, LatencyStats};
use crate::telemetry::Timeline;

/// One trial's parameters.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Nominal offered rate in packets/second.
    pub rate_pps: f64,
    /// Packets to generate (the paper used 10000).
    pub n_packets: usize,
    /// RNG seed for arrival jitter.
    pub seed: u64,
    /// Fraction of the trial treated as warm-up and excluded from the
    /// measurement window.
    pub warmup_frac: f64,
    /// The kernel under test.
    pub config: KernelConfig,
}

impl TrialSpec {
    /// A paper-like trial: 10000 packets, 10% warm-up, seed 1.
    pub fn new(config: KernelConfig) -> Self {
        TrialSpec {
            rate_pps: 1000.0,
            n_packets: 10_000,
            seed: 1,
            warmup_frac: 0.1,
            config,
        }
    }
}

/// What one trial measured.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialResult {
    /// Offered rate actually achieved inside the window (pkts/s).
    pub offered_pps: f64,
    /// Delivered (transmitted) rate inside the window (pkts/s).
    pub delivered_pps: f64,
    /// Total frames transmitted over the whole trial.
    pub transmitted: u64,
    /// Frames dropped at the receive ring (free drops).
    pub rx_ring_drops: u64,
    /// Packets dropped at `ipintrq`.
    pub ipintrq_drops: u64,
    /// Packets dropped at the screend queue.
    pub screend_q_drops: u64,
    /// Packets denied (consumed) by the screening rules.
    pub screend_denied: u64,
    /// Packets dropped at the local socket buffer (end-system mode).
    pub socket_q_drops: u64,
    /// Packets consumed by the local application over the whole trial.
    pub app_delivered: u64,
    /// Local application goodput inside the window (pkts/s).
    pub app_delivered_pps: f64,
    /// Packets dropped at output interface queues.
    pub ifq_drops: u64,
    /// Mean forwarding latency of delivered packets.
    pub latency_mean: Nanos,
    /// 99th-percentile forwarding latency (bucketed upper bound).
    pub latency_p99: Nanos,
    /// Standard deviation of forwarding latency — the jitter the paper's
    /// §3 requires scheduling to keep low.
    pub latency_jitter: Nanos,
    /// Full latency distributions: total sojourn plus per-stage residency
    /// histograms (empty when `config.latency_tracking` is off).
    pub latency: LatencyStats,
    /// Every drop in the trial, attributed to a
    /// [`DropReason`](crate::stats::DropReason).
    pub drops: DropStats,
    /// Fraction of window CPU time the compute-bound user process got
    /// (0 when no user process was configured).
    pub user_cpu_frac: f64,
    /// Fraction of window CPU cycles per [`CpuClass`], indexed by
    /// [`CpuClass::index`] in [`CpuClass::ALL`] order. The machine's
    /// conserved cycle ledger restricted to the measurement window: the
    /// nine entries sum to 1.
    pub cpu_share: [f64; CpuClass::COUNT],
    /// Hardware interrupts taken during the trial.
    pub interrupts_taken: u64,
    /// The telemetry timeline, when the spec's
    /// [`KernelConfig::telemetry`](crate::config::KernelConfig::telemetry)
    /// enabled the periodic sampler (`None` otherwise).
    pub timeline: Option<Timeline>,
    /// Frame-pool counters at trial end: every packet buffer in the trial
    /// came from one [`FramePool`], so `pool.misses` is the number of
    /// per-packet heap allocations (0 in steady state).
    pub pool: PoolStats,
    /// Fault-injection and recovery counters (all zero when the config
    /// carries no fault plan).
    pub fault: FaultStats,
    /// Events the engine's scheduler dispatched over the whole trial
    /// (arrivals, wire completions, clock pulses, deferred interrupts,
    /// faults). With wall-clock time this yields the engine's events/sec
    /// throughput figure.
    pub events_dispatched: u64,
}

impl TrialResult {
    /// This trial as a sweep point.
    pub fn point(&self) -> SweepPoint {
        SweepPoint::new(self.offered_pps, self.delivered_pps)
    }
}

/// Runs one trial.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero packets or non-positive rate).
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    run_trial_engine(spec, None, Cycles::ZERO).0
}

/// Runs one trial with machine-level scheduling-event tracing enabled
/// (ring of `trace_capacity` records), returning the result plus the
/// trace rendered as Chrome-trace / Perfetto JSON (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>). Tracing perturbs
/// nothing: the measured numbers are identical to [`run_trial`]'s.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero packets or non-positive rate).
pub fn run_trial_traced(spec: &TrialSpec, trace_capacity: usize) -> (TrialResult, String) {
    let (result, json, _) = run_trial_engine(spec, Some(trace_capacity), Cycles::ZERO);
    (result, json.expect("tracing was enabled"))
}

/// The trial engine behind [`run_trial`] and [`run_chaos_trial`]:
/// optionally traces, and optionally keeps simulating for `drain` cycles
/// past the measurement window (measured numbers are unaffected — the
/// window is closed first — but queues get a chance to empty, which the
/// chaos invariants assert on). Returns the finished engine for
/// end-state inspection.
fn run_trial_engine(
    spec: &TrialSpec,
    trace_capacity: Option<usize>,
    drain: Cycles,
) -> (TrialResult, Option<String>, Engine<RouterKernel>) {
    assert!(spec.n_packets > 0, "trial needs packets");
    assert!(spec.rate_pps > 0.0, "trial needs a positive rate");

    let cfg = spec.config.clone();
    let freq = cfg.cost.freq;
    let ctx_switch = cfg.cost.ctx_switch;
    // One frame pool serves the whole trial: the full arrival schedule is
    // materialized up front, so preallocating one buffer per packet (plus
    // headroom for kernel-originated replies) guarantees zero per-packet
    // heap allocations for the rest of the run.
    let pool = FramePool::new(POOL_BUF_CAPACITY, spec.n_packets + POOL_HEADROOM);
    let (st, kernel) = RouterKernel::build_with_pool(cfg, pool.clone());
    let mut engine = Engine::new(st, kernel, ctx_switch);
    if let Some(cap) = trace_capacity {
        engine.enable_trace(cap);
    }

    // Generate, pace and inject the arrival schedule.
    let mut gen = TrafficGen::paper_default(spec.rate_pps, freq, spec.seed);
    let mut times = gen.arrival_times(Cycles::ZERO, spec.n_packets);
    Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
    let mut factory = PacketFactory::paper_testbed().with_pool(pool.clone());
    for &t in &times {
        let pkt = factory.next_packet();
        engine.state_schedule(t, Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
    }

    // Measurement window: after warm-up, until the last arrival.
    let first = times[0];
    let last = *times.last().expect("nonempty schedule");
    let span = last - first;
    let window_start = first + Cycles::new((span.raw() as f64 * spec.warmup_frac) as u64);
    let window_end = last;
    engine
        .workload_mut()
        .stats_mut()
        .set_window(window_start, window_end);

    // User CPU share — and the per-class cycle-ledger decomposition — are
    // measured over the same window.
    let user_tid = engine.workload().user_tid();
    engine.run_until(window_start);
    let user_before = user_tid.map(|t| engine.state().thread_cycles(t));
    let ledger_before = engine.state().ledger();
    engine.run_until(window_end);
    let user_after = user_tid.map(|t| engine.state().thread_cycles(t));
    let ledger_after = engine.state().ledger();
    if !drain.is_zero() {
        engine.run_until(Cycles::new(window_end.raw().saturating_add(drain.raw())));
    }

    let window = window_end - window_start;
    let user_cpu_frac = match (user_before, user_after) {
        (Some(b), Some(a)) if !window.is_zero() => (a - b).fraction_of(window),
        _ => 0.0,
    };
    let cpu_share = ledger_after.since(&ledger_before).shares();

    let interrupts_taken = engine.state().intr.total_taken();
    engine.workload_mut().sync_pool_stats();
    let markers = engine.workload_mut().take_fault_markers();
    let chrome_json = engine.trace().map(|t| {
        let records: Vec<TraceRecord> = t.records().copied().collect();
        let st = engine.state();
        chrome_trace_json_with_markers(
            &records,
            freq,
            |src| format!("{} #{}", st.intr.name_of(src), src.0),
            |tid| st.sched.name(tid).to_string(),
            &markers,
        )
    });
    let stats = engine.workload().stats();
    let result = TrialResult {
        offered_pps: stats.offered_pps(freq),
        delivered_pps: stats.delivered_pps(freq),
        transmitted: stats.transmitted,
        rx_ring_drops: stats.rx_ring_drops(),
        ipintrq_drops: stats.ipintrq_drops(),
        screend_q_drops: stats.screend_q_drops(),
        screend_denied: stats.screend_denied(),
        socket_q_drops: stats.socket_q_drops(),
        app_delivered: stats.app_delivered,
        app_delivered_pps: stats.app_delivered_pps(freq),
        ifq_drops: stats.ifq_drops(),
        latency_mean: stats.latency.mean(),
        latency_p99: stats.latency.quantile(0.99),
        latency_jitter: stats.latency.jitter(),
        latency: stats.latency.clone(),
        drops: stats.drops.clone(),
        user_cpu_frac,
        cpu_share,
        interrupts_taken,
        timeline: stats.timeline.clone(),
        pool: stats.pool.unwrap_or_default(),
        fault: stats.fault,
        events_dispatched: engine.state().events_dispatched(),
    };
    (result, chrome_json, engine)
}

/// End-state invariants measured by [`run_chaos_trial`] after the fault
/// storm and the post-window drain.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The trial's measured numbers (fault counters included).
    pub result: TrialResult,
    /// Whether the interrupt gate ended the run open — a permanently
    /// inhibited gate is the wedge the recovery machinery must prevent.
    pub gate_open_at_end: bool,
    /// The gate's final inhibit bitmask (zero iff open).
    pub gate_bits: u8,
    /// Depth of the screend queue after the drain: it must empty after
    /// every injected crash and restart.
    pub screend_q_len: usize,
    /// Packets still inside the kernel after the drain (computed from
    /// the conserved arrival/delivery/drop ledger, which panics if the
    /// ledger itself does not balance).
    pub in_flight: u64,
    /// Times the watermark feedback's timeout safety net fired.
    pub timeout_resumes: u64,
}

/// Runs one trial like [`run_trial`], then keeps the simulation alive
/// for a 200 ms (simulated) drain with no new arrivals and reports the
/// end-state invariants a gracefully degrading kernel must satisfy.
/// Intended for specs whose config carries a
/// [`FaultPlan`](livelock_machine::fault::FaultPlan), but works (and
/// should be trivially green) without one.
///
/// # Panics
///
/// Panics if the spec is degenerate, or if the kernel's drop ledger
/// fails to conserve packets.
pub fn run_chaos_trial(spec: &TrialSpec) -> ChaosReport {
    let drain = spec.config.cost.freq.cycles_from_millis(200);
    let (result, _, engine) = run_trial_engine(spec, None, drain);
    let kernel = engine.workload();
    ChaosReport {
        gate_open_at_end: kernel.gate_is_open(),
        gate_bits: kernel.gate_bits(),
        screend_q_len: kernel.screend_q_len(),
        in_flight: kernel.stats().in_flight(),
        timeout_resumes: kernel.feedback_timeout_resumes(),
        result,
    }
}

/// Per-buffer capacity of a trial's frame pool. The paper's test frames
/// are minimum-size (60 bytes); ICMP errors quoting them and ARP replies
/// also fit well under this, so pooled buffers never grow.
const POOL_BUF_CAPACITY: usize = 128;

/// Extra pool buffers beyond one-per-packet, covering kernel-originated
/// replies (ARP, ICMP, application echoes) in flight at once.
const POOL_HEADROOM: usize = 64;

/// A labelled rate sweep: the series one figure curve plots.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Curve label (e.g. "quota = 5 packets").
    pub label: String,
    /// One result per requested rate, in order.
    pub trials: Vec<TrialResult>,
}

impl SweepResult {
    /// The `(offered, delivered)` points for analysis and plotting.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.trials.iter().map(TrialResult::point).collect()
    }
}

/// Runs one trial per rate with otherwise identical parameters, fanning
/// trials out according to `par`.
///
/// Each trial is an independent seeded simulation, so the result is
/// bit-for-bit identical across every [`Parallelism`] choice — trials
/// come back in rate order.
pub fn sweep(label: &str, base: &TrialSpec, rates: &[f64], par: Parallelism) -> SweepResult {
    let trials = crate::par::par_map(rates, par.jobs(), |&rate_pps| {
        run_trial(&TrialSpec {
            rate_pps,
            ..base.clone()
        })
    });
    SweepResult {
        label: label.to_string(),
        trials,
    }
}

/// The input rates the paper's figures sweep (0-12,000 pkts/s, capped by
/// the Ethernet maximum of ~14,880).
pub fn paper_rates() -> Vec<f64> {
    vec![
        500.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_core::poller::Quota;

    fn quick(config: KernelConfig, rate: f64, n: usize) -> TrialResult {
        run_trial(&TrialSpec {
            rate_pps: rate,
            n_packets: n,
            ..TrialSpec::new(config)
        })
    }

    fn unmodified() -> KernelConfig {
        KernelConfig::builder().build()
    }

    fn polled(q: Quota) -> KernelConfig {
        KernelConfig::builder().polled(q).build()
    }

    #[test]
    fn heap_and_calendar_backends_produce_identical_trials() {
        use livelock_machine::cpu::SchedulerKind;
        // Overloaded rate: drops, deferred interrupts and queue churn give
        // the schedulers a dense, tie-heavy event stream to disagree on.
        for (name, cfg) in [
            ("unmodified", unmodified()),
            ("polled", polled(Quota::Limited(10))),
        ] {
            let run = |kind| {
                let mut c = cfg.clone();
                c.scheduler = kind;
                quick(c, 9_000.0, 1_200)
            };
            let h = run(SchedulerKind::Heap);
            let c = run(SchedulerKind::Calendar);
            assert_eq!(h.transmitted, c.transmitted, "{name}");
            assert_eq!(
                h.offered_pps.to_bits(),
                c.offered_pps.to_bits(),
                "{name}: offered rate must be bit-identical"
            );
            assert_eq!(
                h.delivered_pps.to_bits(),
                c.delivered_pps.to_bits(),
                "{name}: delivered rate must be bit-identical"
            );
            assert_eq!(h.latency_mean, c.latency_mean, "{name}");
            assert_eq!(h.latency_p99, c.latency_p99, "{name}");
            assert_eq!(h.latency_jitter, c.latency_jitter, "{name}");
            assert_eq!(h.drops, c.drops, "{name}");
            assert_eq!(h.interrupts_taken, c.interrupts_taken, "{name}");
            assert_eq!(h.events_dispatched, c.events_dispatched, "{name}");
            assert!(h.events_dispatched > 0, "{name}: trial dispatched events");
        }
    }

    #[test]
    fn light_load_is_loss_free_on_both_kernels() {
        for cfg in [unmodified(), polled(Quota::Limited(10))] {
            let r = quick(cfg, 1_000.0, 800);
            assert!(
                r.delivered_pps > 0.97 * r.offered_pps,
                "delivered {} of {}",
                r.delivered_pps,
                r.offered_pps
            );
            assert_eq!(r.ipintrq_drops + r.ifq_drops + r.screend_q_drops, 0);
        }
    }

    #[test]
    fn offered_rate_tracks_nominal() {
        let r = quick(polled(Quota::Limited(10)), 3_000.0, 1_500);
        assert!(
            (r.offered_pps - 3_000.0).abs() < 300.0,
            "offered {}",
            r.offered_pps
        );
    }

    #[test]
    fn overload_degrades_unmodified_kernel() {
        let low = quick(unmodified(), 3_000.0, 1_500);
        let high = quick(unmodified(), 11_000.0, 4_000);
        assert!(
            high.delivered_pps < low.delivered_pps,
            "expected degradation: {} !< {}",
            high.delivered_pps,
            low.delivered_pps
        );
        assert!(high.rx_ring_drops + high.ipintrq_drops > 0);
    }

    #[test]
    fn overload_does_not_collapse_polled_kernel() {
        let high = quick(polled(Quota::Limited(10)), 11_000.0, 4_000);
        assert!(
            high.delivered_pps > 3_000.0,
            "polled kernel should sustain its MLFRR, got {}",
            high.delivered_pps
        );
    }

    #[test]
    fn latency_is_sane_at_light_load() {
        let r = quick(polled(Quota::Limited(10)), 500.0, 400);
        // One packet alone in the system: a few hundred microseconds of
        // processing plus 67.2 us of output serialization.
        assert!(
            r.latency_mean >= Nanos::from_micros(200),
            "{}",
            r.latency_mean
        );
        assert!(
            r.latency_mean <= Nanos::from_millis(3),
            "{}",
            r.latency_mean
        );
    }

    #[test]
    fn steady_state_forwarding_never_allocates() {
        let r = quick(unmodified(), 2_000.0, 600);
        assert_eq!(r.pool.misses, 0, "no per-packet heap allocation");
        assert!(r.pool.acquired >= 600, "every frame came from the pool");
        // The trial window ends at the last arrival, so the final packets
        // may still be in flight; everything else has been recycled.
        assert!(r.pool.outstanding <= 8, "only the tail holds buffers");
        assert_eq!(r.pool.recycled + r.pool.outstanding as u64, r.pool.acquired);
    }

    #[test]
    fn determinism_same_seed_same_numbers() {
        let a = quick(unmodified(), 7_000.0, 1_000);
        let b = quick(unmodified(), 7_000.0, 1_000);
        assert_eq!(a.transmitted, b.transmitted);
        assert_eq!(a.delivered_pps, b.delivered_pps);
        assert_eq!(a.interrupts_taken, b.interrupts_taken);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let base = TrialSpec {
            rate_pps: 7_000.0,
            n_packets: 1_000,
            ..TrialSpec::new(unmodified())
        };
        let a = run_trial(&base);
        let b = run_trial(&TrialSpec { seed: 2, ..base });
        assert_ne!(
            (a.transmitted, a.interrupts_taken),
            (b.transmitted, b.interrupts_taken),
            "jitter should differ across seeds"
        );
    }

    #[test]
    fn sweep_produces_labelled_points() {
        let base = TrialSpec {
            n_packets: 300,
            ..TrialSpec::new(polled(Quota::Limited(10)))
        };
        let s = sweep("test", &base, &[500.0, 1_000.0], Parallelism::Serial);
        assert_eq!(s.label, "test");
        assert_eq!(s.trials.len(), 2);
        let pts = s.points();
        assert!(pts[1].offered > pts[0].offered);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let base = TrialSpec {
            n_packets: 400,
            ..TrialSpec::new(polled(Quota::Limited(10)))
        };
        let rates = [500.0, 2_000.0, 6_000.0, 11_000.0];
        let serial = sweep("det", &base, &rates, Parallelism::Serial);
        for jobs in [2, 4] {
            let par = sweep("det", &base, &rates, Parallelism::Jobs(jobs));
            assert_eq!(par.label, serial.label);
            // Every field of every trial, in the same order.
            assert_eq!(par.trials, serial.trials, "jobs = {jobs}");
        }
    }

    #[test]
    fn cpu_share_sums_to_one_and_tracks_load() {
        let light = quick(unmodified(), 500.0, 400);
        let heavy = quick(unmodified(), 11_000.0, 3_000);
        for r in [&light, &heavy] {
            let sum: f64 = r.cpu_share.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        }
        let rx = CpuClass::RxIntr.index();
        let idle = CpuClass::Idle.index();
        assert!(
            heavy.cpu_share[rx] > light.cpu_share[rx],
            "rx share should grow with load: {} !> {}",
            heavy.cpu_share[rx],
            light.cpu_share[rx]
        );
        assert!(
            light.cpu_share[idle] > 0.5,
            "light load is mostly idle, got {}",
            light.cpu_share[idle]
        );
    }

    #[test]
    fn timeline_is_off_by_default_and_on_when_configured() {
        let r = quick(unmodified(), 2_000.0, 500);
        assert!(r.timeline.is_none(), "telemetry must be opt-in");

        let cfg = KernelConfig::builder()
            .telemetry(crate::telemetry::TelemetryConfig::default())
            .build();
        let r = quick(cfg, 2_000.0, 500);
        let tl = r.timeline.expect("sampler enabled");
        assert!(!tl.is_empty(), "clock ticks should have produced samples");
        let csv = tl.to_csv(unmodified().cost.freq);
        assert!(csv.starts_with("time_us,rx_intr,"));
    }

    #[test]
    fn traced_trial_measures_the_same_numbers() {
        let spec = TrialSpec {
            rate_pps: 3_000.0,
            n_packets: 500,
            ..TrialSpec::new(polled(Quota::Limited(10)))
        };
        let plain = run_trial(&spec);
        let (traced, json) = run_trial_traced(&spec, 1 << 16);
        assert_eq!(plain, traced, "tracing must not perturb the trial");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("nic-rx #"), "interrupt track names");
        assert!(json.contains("netpoll"), "thread track names");
    }

    #[test]
    fn paper_rates_are_increasing_and_capped() {
        let r = paper_rates();
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert!(*r.last().unwrap() <= 14_880.0);
    }
}
